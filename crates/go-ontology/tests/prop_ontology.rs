//! Property-based tests for the GO substrate: DAG closure properties,
//! weight monotonicity, similarity bounds and informative-class
//! monotonicity on randomly generated ontologies.

use go_ontology::{
    Annotations, InformativeClasses, InformativeConfig, Namespace, Ontology, OntologyBuilder,
    ProteinId, Relation, TermId, TermSimilarity, TermWeights,
};
use proptest::prelude::*;

/// Strategy: a random DAG of `n` terms where term `i > 0` gets 1–2
/// parents among earlier terms (guarantees acyclicity), plus a random
/// annotation table.
fn world_strategy() -> impl Strategy<Value = (Ontology, Annotations)> {
    (4usize..20, proptest::collection::vec(any::<u32>(), 64), 10usize..80).prop_map(
        |(n, randomness, n_proteins)| {
            let mut rb = randomness.into_iter().cycle();
            let mut take = move || rb.next().unwrap() as usize;
            let mut b = OntologyBuilder::new();
            for i in 0..n {
                b.add_term(format!("GO:{i}"), format!("t{i}"), Namespace::BiologicalProcess);
            }
            for i in 1..n {
                let p1 = take() % i;
                b.add_edge(TermId(i as u32), TermId(p1 as u32), Relation::IsA);
                if take() % 3 == 0 {
                    let p2 = take() % i;
                    if p2 != p1 {
                        b.add_edge(TermId(i as u32), TermId(p2 as u32), Relation::PartOf);
                    }
                }
            }
            let ontology = b.build().expect("construction is acyclic");
            let mut ann = Annotations::new(n_proteins, n);
            for p in 0..n_proteins {
                let count = take() % 4;
                for _ in 0..=count {
                    ann.annotate(ProteinId(p as u32), TermId((take() % n) as u32));
                }
            }
            (ontology, ann)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ancestor_relation_is_transitive_and_irreflexive((o, _) in world_strategy()) {
        for t in o.term_ids() {
            prop_assert!(!o.is_ancestor(t, t));
            for &a in o.ancestors(t) {
                // Every ancestor's ancestor is an ancestor.
                for &aa in o.ancestors(a) {
                    prop_assert!(o.is_ancestor(aa, t), "transitivity");
                }
            }
        }
    }

    #[test]
    fn ancestors_match_parent_closure((o, _) in world_strategy()) {
        for t in o.term_ids() {
            // Recompute by BFS over parents.
            let mut seen = std::collections::BTreeSet::new();
            let mut stack: Vec<TermId> = o.parents(t).iter().map(|&(p, _)| p).collect();
            while let Some(x) = stack.pop() {
                if seen.insert(x) {
                    stack.extend(o.parents(x).iter().map(|&(p, _)| p));
                }
            }
            let expect: Vec<TermId> = seen.into_iter().collect();
            prop_assert_eq!(o.ancestors(t).to_vec(), expect);
        }
    }

    #[test]
    fn descendants_and_ancestors_are_inverse((o, _) in world_strategy()) {
        for t in o.term_ids() {
            for d in o.descendants_or_self(t) {
                prop_assert!(o.is_same_or_ancestor(t, d));
            }
        }
    }

    #[test]
    fn weights_monotone_and_root_is_one((o, ann) in world_strategy()) {
        let w = TermWeights::compute(&o, &ann);
        for t in o.term_ids() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&w.weight(t)));
            for &a in o.ancestors(t) {
                prop_assert!(w.weight(a) >= w.weight(t) - 1e-12);
            }
        }
        if ann.total_occurrences() > 0 {
            prop_assert!((w.weight(TermId(0)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lowest_common_parent_is_a_common_cover((o, ann) in world_strategy()) {
        let w = TermWeights::compute(&o, &ann);
        let sim = TermSimilarity::new(&o, &w);
        let n = o.term_count() as u32;
        for a in 0..n.min(8) {
            for b in 0..n.min(8) {
                let (ta, tb) = (TermId(a), TermId(b));
                if let Some(lcp) = sim.lowest_common_parent(ta, tb) {
                    prop_assert!(o.is_same_or_ancestor(lcp, ta));
                    prop_assert!(o.is_same_or_ancestor(lcp, tb));
                    // No common cover has a strictly smaller weight.
                    for c in o.common_ancestors(ta, tb) {
                        prop_assert!(w.weight(c) >= w.weight(lcp) - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn st_bounds_and_identity((o, ann) in world_strategy()) {
        let w = TermWeights::compute(&o, &ann);
        let sim = TermSimilarity::new(&o, &w);
        let n = o.term_count() as u32;
        for a in 0..n.min(10) {
            prop_assert_eq!(sim.st(TermId(a), TermId(a)), 1.0);
            for b in 0..n.min(10) {
                let v = sim.st(TermId(a), TermId(b));
                prop_assert!((0.0..=1.0).contains(&v), "ST = {}", v);
                prop_assert!((v - sim.st(TermId(b), TermId(a))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn informative_classes_shrink_with_threshold((o, ann) in world_strategy()) {
        let low = InformativeClasses::compute(&o, &ann, InformativeConfig {
            min_direct: 1, ..Default::default()
        });
        let high = InformativeClasses::compute(&o, &ann, InformativeConfig {
            min_direct: 5, ..Default::default()
        });
        for t in o.term_ids() {
            if high.is_informative(t) {
                prop_assert!(low.is_informative(t), "informative sets are nested");
            }
        }
        // Border terms are informative and have no informative ancestor.
        for t in low.border_terms() {
            prop_assert!(low.is_informative(t));
            for &a in o.ancestors(t) {
                prop_assert!(!low.is_informative(a));
            }
        }
        // Vocabulary terms descend from a border term.
        for t in low.vocabulary() {
            let covered = low.is_border(t)
                || o.ancestors(t).iter().any(|&a| low.is_border(a));
            prop_assert!(covered);
        }
    }

    #[test]
    fn obo_roundtrip_preserves_structure((o, _) in world_strategy()) {
        let text = go_ontology::write_obo(&o);
        let o2 = go_ontology::parse_obo(&text).unwrap();
        prop_assert_eq!(o2.term_count(), o.term_count());
        for t in o.term_ids() {
            let acc = &o.term(t).accession;
            let t2 = o2.by_accession(acc).unwrap();
            let p1: Vec<String> = o.parents(t).iter()
                .map(|&(p, r)| format!("{}-{r}", o.term(p).accession)).collect();
            let p2: Vec<String> = o2.parents(t2).iter()
                .map(|&(p, r)| format!("{}-{r}", o2.term(p).accession)).collect();
            prop_assert_eq!(p1, p2);
        }
    }
}
