//! Property-based byte-identity tests: the dense kernels must reproduce
//! the memoized [`TermSimilarity`] oracle bit for bit on random DAGs and
//! random annotation tables — LCP term ids, every ST plane entry, and SV
//! over arbitrary term lists. Random multi-parent DAGs (each term may
//! attach to up to two earlier terms) exercise the common-ancestor scan
//! far beyond the chain fixtures in the unit tests.

use go_ontology::{
    AncestorBitsets, Annotations, DenseSimPlanes, Namespace, Ontology, OntologyBuilder, ProteinId,
    Relation, TermId, TermInterner, TermSimilarity, TermWeights,
};
use par_util::RunContext;
use proptest::prelude::*;

/// Random ontology world: a DAG where term `i > 0` gains one or two
/// parents among earlier terms, plus random protein annotations.
#[derive(Debug, Clone)]
struct World {
    terms: usize,
    parent_seed: Vec<u32>,
    second_parent: Vec<bool>,
    protein_terms: Vec<Vec<u32>>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        4usize..20,
        proptest::collection::vec(any::<u32>(), 24),
        proptest::collection::vec(any::<bool>(), 24),
        proptest::collection::vec(proptest::collection::vec(0u32..20, 0..5), 4..16),
    )
        .prop_map(|(terms, parent_seed, second_parent, protein_terms)| World {
            terms,
            parent_seed,
            second_parent,
            protein_terms,
        })
}

fn build(w: &World) -> (Ontology, Annotations) {
    let mut b = OntologyBuilder::new();
    for i in 0..w.terms {
        b.add_term(format!("GO:{i}"), format!("t{i}"), Namespace::BiologicalProcess);
    }
    for i in 1..w.terms {
        let p = (w.parent_seed[i % w.parent_seed.len()] as usize) % i;
        b.add_edge(TermId(i as u32), TermId(p as u32), Relation::IsA);
        if w.second_parent[i % w.second_parent.len()] && i > 1 {
            let q = (w.parent_seed[(i + 7) % w.parent_seed.len()] as usize) % i;
            if q != p {
                b.add_edge(TermId(i as u32), TermId(q as u32), Relation::PartOf);
            }
        }
    }
    let ontology = b.build().unwrap();
    let mut ann = Annotations::new(w.protein_terms.len(), w.terms);
    for (p, terms) in w.protein_terms.iter().enumerate() {
        for &t in terms {
            ann.annotate(ProteinId(p as u32), TermId(t % w.terms as u32));
        }
    }
    (ontology, ann)
}

fn terms_by_protein(ann: &Annotations) -> Vec<Vec<TermId>> {
    (0..ann.protein_count())
        .map(|p| ann.terms_of(ProteinId(p as u32)).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitset_lcp_matches_oracle_on_all_pairs(w in world_strategy()) {
        let (ontology, ann) = build(&w);
        let weights = TermWeights::compute(&ontology, &ann);
        let sim = TermSimilarity::new(&ontology, &weights);
        let bitsets = AncestorBitsets::build(&ontology);
        for a in 0..w.terms as u32 {
            for b in 0..w.terms as u32 {
                let dense = bitsets.lowest_common_parent(&weights, TermId(a), TermId(b));
                let oracle = sim.lowest_common_parent(TermId(a), TermId(b));
                prop_assert_eq!(dense, oracle, "LCP({}, {})", a, b);
            }
        }
    }

    #[test]
    fn st_plane_matches_oracle_bitwise(w in world_strategy()) {
        let (ontology, ann) = build(&w);
        let weights = TermWeights::compute(&ontology, &ann);
        let sim = TermSimilarity::new(&ontology, &weights);
        let lists = terms_by_protein(&ann);
        let interner = TermInterner::from_term_lists(ontology.term_count(), &lists);
        for threads in [1usize, 2, 4] {
            let planes = DenseSimPlanes::build(
                &ontology, &weights, &lists, threads, &RunContext::unbounded(),
            )
            .expect("no faults injected")
            .expect("passive context never cancels");
            for i in 0..interner.len() as u32 {
                for j in 0..interner.len() as u32 {
                    let dense = planes.st_plane().get(i, j);
                    let oracle = sim.st(interner.term(i), interner.term(j));
                    prop_assert_eq!(
                        dense.to_bits(),
                        oracle.to_bits(),
                        "ST({:?}, {:?}) at {} threads: {} vs {}",
                        interner.term(i), interner.term(j), threads, dense, oracle
                    );
                }
            }
        }
    }

    #[test]
    fn dense_sv_matches_oracle_bitwise(w in world_strategy()) {
        let (ontology, ann) = build(&w);
        let weights = TermWeights::compute(&ontology, &ann);
        let sim = TermSimilarity::new(&ontology, &weights);
        let lists = terms_by_protein(&ann);
        let planes = DenseSimPlanes::build(
            &ontology, &weights, &lists, 1, &RunContext::unbounded(),
        )
        .expect("no faults injected")
        .expect("passive context never cancels");
        for p in 0..lists.len() {
            for q in 0..lists.len() {
                let dense = planes.sv_proteins(p, q);
                let oracle = sim.sv(&lists[p], &lists[q]);
                prop_assert_eq!(
                    dense.to_bits(),
                    oracle.to_bits(),
                    "SV({}, {}): {} vs {}",
                    p, q, dense, oracle
                );
            }
        }
    }
}
