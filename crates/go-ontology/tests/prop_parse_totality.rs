//! Malformed-input totality for the OBO and annotation parsers:
//! arbitrary bytes must never panic, and every rejection must name the
//! line it blames.

use go_ontology::{parse_obo, Annotations, Namespace, OntologyBuilder, ProteinId, Relation, TermId};
use proptest::prelude::*;

fn tiny_ontology() -> go_ontology::Ontology {
    let mut b = OntologyBuilder::new();
    let root = b.add_term("GO:0", "root", Namespace::BiologicalProcess);
    let a = b.add_term("GO:1", "a", Namespace::BiologicalProcess);
    b.add_edge(a, root, Relation::IsA);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_obo_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_obo(&text) {
            let msg = e.to_string();
            prop_assert!(msg.starts_with("line "), "error names a line: {}", msg);
        }
    }

    #[test]
    fn parse_obo_is_total_over_stanza_shaped_text(
        lines in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        // Field-shaped lines reach the assembly and DAG-validation
        // error paths (missing ids, bad namespaces, unknown parents,
        // duplicates, cycles) that raw bytes almost never hit.
        const MENU: [&str; 11] = [
            "[Term]",
            "id: GO:1",
            "id: GO:2",
            "name: x",
            "namespace: biological_process",
            "namespace: bogus",
            "is_a: GO:1",
            "is_a: GO:2",
            "relationship: part_of GO:2",
            "is_obsolete: true",
            "!junk",
        ];
        let text = lines
            .iter()
            .map(|&b| MENU[b as usize % MENU.len()])
            .collect::<Vec<_>>()
            .join("\n");
        if let Err(e) = parse_obo(&text) {
            let msg = e.to_string();
            prop_assert!(msg.starts_with("line "), "error names a line: {}", msg);
        }
    }

    #[test]
    fn annotations_parse_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let o = tiny_ontology();
        let text = String::from_utf8_lossy(&bytes);
        match Annotations::parse(&text, &o, 4, |_| Some(ProteinId(0))) {
            Ok(ann) => {
                // Anything accepted annotated only known terms.
                for t in 0..ann.term_count() {
                    prop_assert!(ann.direct_count(TermId(t as u32)) <= 4);
                }
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.starts_with("line "), "error names a line: {}", msg);
                prop_assert!(msg.contains("column "), "error names a column: {}", msg);
            }
        }
    }
}
