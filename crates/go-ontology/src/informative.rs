//! Informative functional classes and the border informative FC.
//!
//! Following Zhou et al. (cited in Section 2), a GO term is an
//! *informative functional class* (FC) when at least `min_direct`
//! proteins are directly annotated with it (30 in the paper). The
//! *border informative FC* are the informative FC with no informative
//! ancestors — the most general labels LaMoFinder is allowed to emit
//! ("border informative FC are used to avoid the generation of labels
//! that would be too general"). The label vocabulary `T` of the problem
//! definition is the border set plus all descendants of border terms.
//!
//! The paper's prose about the Figure 1 example contradicts its own
//! definition (see DESIGN.md §6); [`BorderRule`] exposes both readings.

use crate::annotations::Annotations;
use crate::ontology::Ontology;
use crate::term::TermId;

/// Which reading of the border definition to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BorderRule {
    /// The formal definition: informative FC with no informative strict
    /// ancestor. This is the default.
    #[default]
    NoInformativeAncestor,
    /// The alternative reading of the paper's example sentence: every
    /// informative FC is a border term.
    AllInformative,
}

/// Configuration for [`InformativeClasses`].
#[derive(Clone, Copy, Debug)]
pub struct InformativeConfig {
    /// Minimum number of directly annotated proteins (paper: 30).
    pub min_direct: usize,
    /// Border definition variant.
    pub border_rule: BorderRule,
}

impl Default for InformativeConfig {
    fn default() -> Self {
        InformativeConfig {
            min_direct: 30,
            border_rule: BorderRule::NoInformativeAncestor,
        }
    }
}

/// The informative / border classification of every term, plus the
/// induced label vocabulary.
#[derive(Clone, Debug)]
pub struct InformativeClasses {
    informative: Vec<bool>,
    border: Vec<bool>,
    in_vocabulary: Vec<bool>,
}

impl InformativeClasses {
    /// Classify all terms of `ontology` under `config`.
    pub fn compute(
        ontology: &Ontology,
        annotations: &Annotations,
        config: InformativeConfig,
    ) -> Self {
        let n = ontology.term_count();
        let informative: Vec<bool> = (0..n)
            .map(|i| annotations.direct_count(TermId(i as u32)) >= config.min_direct)
            .collect();

        let border: Vec<bool> = (0..n)
            .map(|i| {
                let t = TermId(i as u32);
                if !informative[i] {
                    return false;
                }
                match config.border_rule {
                    BorderRule::AllInformative => true,
                    BorderRule::NoInformativeAncestor => ontology
                        .ancestors(t)
                        .iter()
                        .all(|a| !informative[a.index()]),
                }
            })
            .collect();

        // Vocabulary: border terms and their descendants.
        let mut in_vocabulary = vec![false; n];
        // Walk the topological order; a term is in the vocabulary if it is
        // border or has a parent in the vocabulary.
        for &t in ontology.topological_order() {
            if border[t.index()]
                || ontology
                    .parents(t)
                    .iter()
                    .any(|&(p, _)| in_vocabulary[p.index()])
            {
                in_vocabulary[t.index()] = true;
            }
        }

        InformativeClasses {
            informative,
            border,
            in_vocabulary,
        }
    }

    /// Whether `t` is an informative FC.
    pub fn is_informative(&self, t: TermId) -> bool {
        self.informative[t.index()]
    }

    /// Whether `t` is a border informative FC.
    pub fn is_border(&self, t: TermId) -> bool {
        self.border[t.index()]
    }

    /// Whether `t` belongs to the label vocabulary `T` (border term or
    /// descendant of one).
    pub fn in_vocabulary(&self, t: TermId) -> bool {
        self.in_vocabulary[t.index()]
    }

    /// Whether `t` is "at or above the border frontier": `t` is a border
    /// term or an ancestor of one. Labels that generalize past this
    /// frontier would be "too general"; the clustering stop rule counts
    /// vertices whose labels have reached it.
    pub fn at_or_above_border(&self, ontology: &Ontology, t: TermId) -> bool {
        if self.border[t.index()] {
            return true;
        }
        ontology
            .descendants_or_self(t)
            .iter()
            .any(|d| self.border[d.index()])
    }

    /// Sorted list of border terms.
    pub fn border_terms(&self) -> Vec<TermId> {
        self.border
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| TermId(i as u32))
            .collect()
    }

    /// Sorted list of informative terms.
    pub fn informative_terms(&self) -> Vec<TermId> {
        self.informative
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| TermId(i as u32))
            .collect()
    }

    /// Sorted label vocabulary.
    pub fn vocabulary(&self) -> Vec<TermId> {
        self.in_vocabulary
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| TermId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::ProteinId;
    use crate::ontology::OntologyBuilder;
    use crate::term::{Namespace, Relation};

    /// root -> mid -> leaf; annotate: mid 30, leaf 40, root 0.
    fn fixture() -> (Ontology, Annotations) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let mid = ob.add_term("GO:1", "mid", Namespace::BiologicalProcess);
        let leaf = ob.add_term("GO:2", "leaf", Namespace::BiologicalProcess);
        ob.add_edge(mid, root, Relation::IsA);
        ob.add_edge(leaf, mid, Relation::IsA);
        let o = ob.build().unwrap();
        let mut ann = Annotations::new(100, o.term_count());
        for p in 0..30 {
            ann.annotate(ProteinId(p), mid);
        }
        for p in 30..70 {
            ann.annotate(ProteinId(p), leaf);
        }
        (o, ann)
    }

    #[test]
    fn informative_threshold_is_inclusive() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(&o, &ann, InformativeConfig::default());
        assert!(!ic.is_informative(TermId(0)));
        assert!(ic.is_informative(TermId(1)), "30 directs is informative");
        assert!(ic.is_informative(TermId(2)));
    }

    #[test]
    fn border_excludes_terms_with_informative_ancestors() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(&o, &ann, InformativeConfig::default());
        assert!(ic.is_border(TermId(1)));
        assert!(!ic.is_border(TermId(2)), "leaf has informative ancestor mid");
        assert_eq!(ic.border_terms(), vec![TermId(1)]);
    }

    #[test]
    fn all_informative_rule_keeps_descendants() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(
            &o,
            &ann,
            InformativeConfig {
                border_rule: BorderRule::AllInformative,
                ..Default::default()
            },
        );
        assert_eq!(ic.border_terms(), vec![TermId(1), TermId(2)]);
    }

    #[test]
    fn vocabulary_is_border_plus_descendants() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(&o, &ann, InformativeConfig::default());
        assert!(!ic.in_vocabulary(TermId(0)), "root is above the border");
        assert!(ic.in_vocabulary(TermId(1)));
        assert!(ic.in_vocabulary(TermId(2)));
        assert_eq!(ic.vocabulary(), vec![TermId(1), TermId(2)]);
    }

    #[test]
    fn at_or_above_border_frontier() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(&o, &ann, InformativeConfig::default());
        assert!(ic.at_or_above_border(&o, TermId(0)), "root is above border");
        assert!(ic.at_or_above_border(&o, TermId(1)), "border itself");
        assert!(!ic.at_or_above_border(&o, TermId(2)), "below border");
    }

    #[test]
    fn custom_threshold() {
        let (o, ann) = fixture();
        let ic = InformativeClasses::compute(
            &o,
            &ann,
            InformativeConfig {
                min_direct: 35,
                ..Default::default()
            },
        );
        assert!(!ic.is_informative(TermId(1)));
        assert!(ic.is_informative(TermId(2)));
        assert_eq!(ic.border_terms(), vec![TermId(2)]);
    }
}
