//! GO term and term-set similarity (Equations 1 and 2 of the paper).
//!
//! Term similarity is Lin's information-theoretic measure instantiated
//! with the genome-specific weights of Section 2:
//!
//! ```text
//! ST(ta, tb) = 2 · ln w(tab) / (ln w(ta) + ln w(tb))          (Eq. 1)
//! ```
//!
//! where `tab` is the *lowest common parent*: the common ancestor-or-self
//! with the smallest weight (= highest information content; the paper's
//! example picks G05 over G01 for exactly this reason).
//!
//! Vertex (term-set) similarity combines the cross product of two
//! annotation sets:
//!
//! ```text
//! SV(vi, vj) = 1 − Π (1 − ST(ta, tb))                          (Eq. 2)
//! ```
//!
//! so two proteins are similar as soon as *one* good term match exists.

use crate::dense::KernelStats;
use crate::ontology::Ontology;
use crate::sharded::ShardedCache;
use crate::term::TermId;
use crate::weights::TermWeights;

/// The `ST` formula body shared by the memoized oracle and the dense
/// plane build ([`crate::dense`]): given the two terms' weights and a
/// lazily computed lowest common parent, evaluate Eq. 1 with one fixed
/// FP operation order. Keeping both callers on this single function is
/// what makes the dense kernels byte-identical to the oracle.
///
/// `lcp` is only invoked when both weights are positive (the oracle
/// short-circuits the zero-weight cases before its LCP lookup, and the
/// kernels must match).
pub(crate) fn st_value(
    weights: &TermWeights,
    a: TermId,
    b: TermId,
    lcp: impl FnOnce() -> Option<TermId>,
) -> f64 {
    let (wa, wb) = (weights.weight(a), weights.weight(b));
    if wa <= 0.0 || wb <= 0.0 {
        return 0.0;
    }
    let Some(tab) = lcp() else {
        return 0.0;
    };
    let wab = weights.weight(tab);
    let num = 2.0 * wab.ln();
    let den = wa.ln() + wb.ln();
    if den == 0.0 {
        // Both terms are roots (weight 1): distinct roots are maximally
        // dissimilar.
        return 0.0;
    }
    (num / den).clamp(0.0, 1.0)
}

/// Whether two ascending-sorted slices share an element (merge walk).
/// Used by the `SV` fast path: a shared term means `ST = 1`, hence
/// `SV = 1` with no cross product.
pub(crate) fn sorted_intersect<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Pairwise GO term similarity with memoization.
///
/// The labeling pipeline computes `ST` for the same term pairs over and
/// over (every occurrence pair crosses the same annotation sets), so
/// results are cached. The caches are [`ShardedCache`]s: the parallel
/// labeling path hammers them from every worker thread, and a single
/// global lock would serialize cache warm-up. Lowest common parents are
/// memoized separately — each `ST` miss needs one, and `merge_labels`
/// queries them directly per merge.
pub struct TermSimilarity<'a> {
    ontology: &'a Ontology,
    weights: &'a TermWeights,
    st_cache: ShardedCache<(TermId, TermId), f64>,
    lcp_cache: ShardedCache<(TermId, TermId), Option<TermId>>,
}

impl<'a> TermSimilarity<'a> {
    /// New similarity oracle over `ontology` with `weights`.
    pub fn new(ontology: &'a Ontology, weights: &'a TermWeights) -> Self {
        TermSimilarity {
            ontology,
            weights,
            st_cache: ShardedCache::new(),
            lcp_cache: ShardedCache::new(),
        }
    }

    /// The ontology this oracle reads.
    pub fn ontology(&self) -> &'a Ontology {
        self.ontology
    }

    /// The weights this oracle reads.
    pub fn weights(&self) -> &'a TermWeights {
        self.weights
    }

    /// The lowest common parent `tab`: the common ancestor-or-self of
    /// `a` and `b` with minimum weight (ties broken by term id for
    /// determinism). `None` when the terms share no ancestor (different
    /// namespaces). Memoized — `common_ancestors` allocates and walks
    /// the DAG, and the same pairs recur across every scheme merge.
    pub fn lowest_common_parent(&self, a: TermId, b: TermId) -> Option<TermId> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.lcp_cache
            .get_or_insert_with(key, || self.lcp_uncached(key.0, key.1))
    }

    fn lcp_uncached(&self, a: TermId, b: TermId) -> Option<TermId> {
        self.ontology
            .common_ancestors(a, b)
            .into_iter()
            .min_by(|&x, &y| {
                self.weights
                    .weight(x)
                    .partial_cmp(&self.weights.weight(y))
                    .expect("weights are finite")
                    .then(x.cmp(&y))
            })
    }

    /// Lin similarity `ST(ta, tb)` per Equation 1. Ranges over `[0, 1]`.
    ///
    /// Edge cases (all continuous limits of the formula):
    /// * `a == b` → 1;
    /// * no common ancestor (cross-namespace) → 0;
    /// * lowest common parent is a root (`w = 1`) → 0;
    /// * either term has weight 0 (never annotated) → 0.
    pub fn st(&self, a: TermId, b: TermId) -> f64 {
        if a == b {
            return 1.0;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.st_cache
            .get_or_insert_with(key, || self.st_uncached(key.0, key.1))
    }

    fn st_uncached(&self, a: TermId, b: TermId) -> f64 {
        st_value(self.weights, a, b, || self.lowest_common_parent(a, b))
    }

    /// Vertex similarity `SV` per Equation 2 over two annotation sets.
    ///
    /// Close to 1 as soon as one pair of terms matches well ("two
    /// vertices are considered similar if they share at least one
    /// biological feature"). Returns 0 when either set is empty (an
    /// unannotated protein offers no evidence).
    ///
    /// Fast path: annotation lists are sorted (see
    /// `Annotations::terms_of`), so a merge intersection finds any
    /// shared term first — `ST(t, t) = 1` forces `SV = 1` without the
    /// cross product. The full product returns exactly 1 in that case
    /// too (the `1 − ST` factor is an exact zero), so the fast path is
    /// value-identical; unsorted inputs merely skip it.
    pub fn sv(&self, terms_a: &[TermId], terms_b: &[TermId]) -> f64 {
        if terms_a.is_empty() || terms_b.is_empty() {
            return 0.0;
        }
        if sorted_intersect(terms_a, terms_b) {
            return 1.0;
        }
        let mut product = 1.0f64;
        for &ta in terms_a {
            for &tb in terms_b {
                product *= 1.0 - self.st(ta, tb);
                if product == 0.0 {
                    return 1.0;
                }
            }
        }
        1.0 - product
    }

    /// Diagnostics: how many term pairs the memo tables hold. The plane
    /// fields stay zero — merge with [`crate::dense::DenseSimPlanes::stats`]
    /// for the full kernel picture of a labeling run.
    pub fn kernel_stats(&self) -> KernelStats {
        KernelStats {
            st_memo_pairs: self.st_cache.len(),
            lcp_memo_pairs: self.lcp_cache.len(),
            ..KernelStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{Annotations, ProteinId};
    use crate::ontology::OntologyBuilder;
    use crate::term::{Namespace, Relation};

    /// root(1.0) -> a(0.6) -> leaf_x(0.3); a -> leaf_y(0.3); root -> b(0.4).
    fn fixture() -> (Ontology, Annotations) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let x = ob.add_term("GO:3", "x", Namespace::BiologicalProcess);
        let y = ob.add_term("GO:4", "y", Namespace::BiologicalProcess);
        let other = ob.add_term("GO:5", "mf", Namespace::MolecularFunction);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x, a, Relation::IsA);
        ob.add_edge(y, a, Relation::IsA);
        let _ = other;
        let o = ob.build().unwrap();
        // 10 BP annotations: x:3, y:3, a:0, b:4 → w(x)=w(y)=0.3, w(a)=0.6, w(b)=0.4.
        let mut ann = Annotations::new(10, o.term_count());
        for p in 0..3 {
            ann.annotate(ProteinId(p), x);
        }
        for p in 3..6 {
            ann.annotate(ProteinId(p), y);
        }
        for p in 6..10 {
            ann.annotate(ProteinId(p), b);
        }
        (o, ann)
    }

    #[test]
    fn identical_terms_have_similarity_one() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        for t in o.term_ids() {
            assert_eq!(s.st(t, t), 1.0);
        }
    }

    #[test]
    fn siblings_under_specific_parent() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        let (x, y) = (TermId(3), TermId(4));
        assert_eq!(s.lowest_common_parent(x, y), Some(TermId(1)));
        // ST = 2 ln 0.6 / (ln 0.3 + ln 0.3).
        let expected = 2.0 * 0.6f64.ln() / (2.0 * 0.3f64.ln());
        assert!((s.st(x, y) - expected).abs() < 1e-12);
        assert!(s.st(x, y) > 0.0 && s.st(x, y) < 1.0);
    }

    #[test]
    fn lca_through_root_gives_zero() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        // x (under a) vs b: only common ancestor is the root.
        assert_eq!(s.lowest_common_parent(TermId(3), TermId(2)), Some(TermId(0)));
        assert_eq!(s.st(TermId(3), TermId(2)), 0.0);
    }

    #[test]
    fn ancestor_descendant_similarity() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        // a vs x: lowest common parent is a itself.
        assert_eq!(s.lowest_common_parent(TermId(1), TermId(3)), Some(TermId(1)));
        let expected = 2.0 * 0.6f64.ln() / (0.6f64.ln() + 0.3f64.ln());
        assert!((s.st(TermId(1), TermId(3)) - expected).abs() < 1e-12);
    }

    #[test]
    fn cross_namespace_is_zero() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        assert_eq!(s.lowest_common_parent(TermId(3), TermId(5)), None);
        assert_eq!(s.st(TermId(3), TermId(5)), 0.0);
    }

    #[test]
    fn st_is_symmetric_and_cached() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        let v1 = s.st(TermId(3), TermId(4));
        let v2 = s.st(TermId(4), TermId(3));
        assert_eq!(v1, v2);
        let stats = s.kernel_stats();
        assert_eq!(stats.st_memo_pairs, 1);
        assert_eq!(stats.lcp_memo_pairs, 1);
        assert_eq!(stats.st_plane_terms, 0, "the oracle owns no plane");
    }

    #[test]
    fn sorted_intersect_walks_correctly() {
        assert!(sorted_intersect(&[1, 4, 9], &[2, 4]));
        assert!(!sorted_intersect(&[1, 3], &[2, 4]));
        assert!(!sorted_intersect::<u32>(&[], &[1]));
        assert!(!sorted_intersect::<u32>(&[], &[]));
        assert!(sorted_intersect(&[7], &[7]));
    }

    #[test]
    fn sv_fast_path_equals_full_product() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        // Overlapping sorted lists hit the merge-intersection fast path;
        // the full product would hit the exact-zero early exit instead —
        // both return exactly 1.
        assert_eq!(s.sv(&[TermId(2), TermId(3)], &[TermId(3), TermId(4)]), 1.0);
        // Disjoint lists fall through to the product.
        let v = s.sv(&[TermId(3)], &[TermId(2)]);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn sv_shared_term_is_one() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        // Sharing term x: ST(x,x)=1 forces SV = 1 regardless of the rest.
        let sv = s.sv(&[TermId(3), TermId(2)], &[TermId(3)]);
        assert_eq!(sv, 1.0);
    }

    #[test]
    fn sv_combines_evidence() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        let st_xy = s.st(TermId(3), TermId(4));
        // {x} vs {y}: single pair.
        assert!((s.sv(&[TermId(3)], &[TermId(4)]) - st_xy).abs() < 1e-12);
        // {x, b} vs {y}: extra pair with ST 0 leaves SV unchanged.
        assert!((s.sv(&[TermId(3), TermId(2)], &[TermId(4)]) - st_xy).abs() < 1e-12);
    }

    #[test]
    fn sv_empty_sets_are_zero() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let s = TermSimilarity::new(&o, &w);
        assert_eq!(s.sv(&[], &[TermId(3)]), 0.0);
        assert_eq!(s.sv(&[TermId(3)], &[]), 0.0);
        assert_eq!(s.sv(&[], &[]), 0.0);
    }
}
