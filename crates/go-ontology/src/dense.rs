//! Dense similarity kernels for the labeling hot path (DESIGN.md §14).
//!
//! The memoized [`crate::similarity::TermSimilarity`] oracle pays two sharded-hash lookups
//! and (on a miss) an allocating DAG walk per `ST` query. Labeling asks
//! for the same small set of term pairs millions of times, so this
//! module precomputes everything once per namespace:
//!
//! * [`AncestorBitsets`] — one ancestor-or-self bit row per term, so the
//!   lowest common parent is a word-wise `AND` plus a min-weight scan
//!   instead of a merge of two sorted ancestor vectors;
//! * [`TermInterner`] — the GO terms that actually appear in the
//!   network's namespace-filtered annotations, mapped to a compact dense
//!   index (ascending in `TermId`, so interned order is term order);
//! * [`StPlane`] — the lower-triangular `|T_used|²/2` plane of `ST`
//!   values over interned terms, built row-parallel under a
//!   [`RunContext`];
//! * [`DenseSimPlanes`] — the bundle above plus CSR per-protein interned
//!   term lists, which is what `OccurrenceScorer` reads to compute each
//!   protein-pair `SV` with tight loops and zero locking.
//!
//! Every kernel is **byte-identical** to the memoized oracle: the same
//! FP operations in the same order ([`crate::similarity::st_value`] is
//! shared verbatim), the same LCP tie-break (ascending-id scan with a
//! strict `<` equals the oracle's first-minimum `min_by`), and the same
//! shared-term fast path in `SV`. The oracle stays authoritative for the
//! cold paths (`merge_labels`, aligners); [`KernelStats`] reports what
//! each side actually did.

use crate::ontology::Ontology;
use crate::similarity::{sorted_intersect, st_value};
use crate::term::TermId;
use crate::weights::TermWeights;
use par_util::{run_supervised, split_chunks, PoolOutcome, RunContext, WorkQueue, WorkerPanic};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel for "no dense index" in lookup tables.
const ABSENT: u32 = u32::MAX;

/// Set bit `i` in a `u64` word row.
#[inline]
fn set_bit(row: &mut [u64], i: usize) {
    row[i / 64] |= 1u64 << (i % 64);
}

/// Ancestor-or-self bitsets: one bit row per covered term, over the bit
/// space of *all* ontology terms (ancestors of a used term need not be
/// used themselves). Rows can cover a subset of terms so the memory
/// stays `|T_covered| × |T|/8` bits rather than quadratic in the full
/// ontology.
pub struct AncestorBitsets {
    /// Words per row: `⌈term_count / 64⌉`.
    words: usize,
    /// Term index → row index, [`ABSENT`] when the term has no row.
    row_of: Vec<u32>,
    /// Row-major bit storage, `rows × words`.
    bits: Vec<u64>,
}

impl AncestorBitsets {
    /// Bitsets covering every term of `ontology`.
    pub fn build(ontology: &Ontology) -> Self {
        let all: Vec<TermId> = ontology.term_ids().collect();
        Self::for_terms(ontology, &all)
    }

    /// Bitsets covering exactly `terms` (row order = slice order).
    pub fn for_terms(ontology: &Ontology, terms: &[TermId]) -> Self {
        let n = ontology.term_count();
        let words = n.div_ceil(64).max(1);
        let mut row_of = vec![ABSENT; n];
        let mut bits = vec![0u64; terms.len() * words];
        for (r, &t) in terms.iter().enumerate() {
            row_of[t.index()] = r as u32;
            let row = &mut bits[r * words..(r + 1) * words];
            set_bit(row, t.index());
            for &a in ontology.ancestors(t) {
                set_bit(row, a.index());
            }
        }
        AncestorBitsets { words, row_of, bits }
    }

    /// The ancestor-or-self bit row of `t`, if covered.
    fn row(&self, t: TermId) -> Option<&[u64]> {
        let r = self.row_of[t.index()] as usize;
        (r != ABSENT as usize).then(|| &self.bits[r * self.words..(r + 1) * self.words])
    }

    /// Lowest common parent of `a` and `b`: the common ancestor-or-self
    /// with minimum weight. Selection is identical to
    /// [`TermSimilarity::lowest_common_parent`] — the scan runs in
    /// ascending term id with a strict `<`, which keeps the smallest id
    /// among equal-weight minima exactly like the oracle's
    /// first-minimum `min_by`. `None` when the terms share no ancestor
    /// or either term has no row.
    pub fn lowest_common_parent(
        &self,
        weights: &TermWeights,
        a: TermId,
        b: TermId,
    ) -> Option<TermId> {
        let (ra, rb) = (self.row(a)?, self.row(b)?);
        let mut best: Option<(f64, TermId)> = None;
        for (w, (&xa, &xb)) in ra.iter().zip(rb).enumerate() {
            let mut x = xa & xb;
            while x != 0 {
                let bit = x.trailing_zeros() as usize;
                x &= x - 1;
                let t = TermId((w * 64 + bit) as u32);
                let wt = weights.weight(t);
                if best.is_none_or(|(bw, _)| wt < bw) {
                    best = Some((wt, t));
                }
            }
        }
        best.map(|(_, t)| t)
    }
}

/// Compact dense index over the terms that actually occur in the
/// namespace-filtered annotation lists. Dense ids ascend with `TermId`,
/// so interned order equals term order (this is what lets the ST plane
/// normalize pairs by dense index alone).
pub struct TermInterner {
    /// Term index → dense id, [`ABSENT`] for unused terms.
    dense_of: Vec<u32>,
    /// Dense id → term, ascending.
    terms: Vec<TermId>,
}

impl TermInterner {
    /// Intern every term appearing in `lists` (term ids must be
    /// `< term_count`).
    pub fn from_term_lists(term_count: usize, lists: &[Vec<TermId>]) -> Self {
        let mut used = vec![false; term_count];
        for list in lists {
            for &t in list {
                used[t.index()] = true;
            }
        }
        let mut dense_of = vec![ABSENT; term_count];
        let mut terms = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                dense_of[i] = terms.len() as u32;
                terms.push(TermId(i as u32));
            }
        }
        TermInterner { dense_of, terms }
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no term was interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Dense id of `t`, if interned.
    pub fn dense(&self, t: TermId) -> Option<u32> {
        let d = self.dense_of[t.index()];
        (d != ABSENT).then_some(d)
    }

    /// The term behind dense id `d`.
    pub fn term(&self, d: u32) -> TermId {
        self.terms[d as usize]
    }

    /// All interned terms, ascending.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }
}

/// Lower-triangular dense plane of `ST` values over interned terms:
/// cell `(i, j)` with `j ≤ i` lives at `i·(i+1)/2 + j`; the diagonal is
/// 1 by Eq. 1 (`ST(t, t) = 1`).
pub struct StPlane {
    n: usize,
    tri: Vec<f64>,
}

/// One build worker's shard output: `(row, start)` markers into a flat
/// buffer of that shard's row values.
type ShardRows = (Vec<(usize, usize)>, Vec<f64>);

impl StPlane {
    #[inline]
    fn slot(i: usize, j: usize) -> usize {
        i * (i + 1) / 2 + j
    }

    /// `ST` between interned terms `a` and `b` (order-free).
    #[inline]
    pub fn get(&self, a: u32, b: u32) -> f64 {
        let (i, j) = if a >= b {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        self.tri[Self::slot(i, j)]
    }

    /// Number of interned terms covered.
    pub fn terms(&self) -> usize {
        self.n
    }

    /// Plane storage in bytes.
    pub fn bytes(&self) -> usize {
        std::mem::size_of_val(self.tri.as_slice())
    }

    /// Build the plane row-parallel under `run` (each cell costs one
    /// work tick; rows are round-robin chunked so the triangular row
    /// costs balance). Returns `Ok(None)` when the context tripped
    /// mid-build (the partial plane is discarded); a worker panic
    /// surfaces as `Err` like every supervised stage.
    // lamolint::allow(alloc-in-hot-loop): per-worker flat accumulators —
    // one allocation amortized over every row the shard owns; the build
    // runs once per namespace and its output *is* the plane
    pub fn build(
        ontology: &Ontology,
        weights: &TermWeights,
        interner: &TermInterner,
        threads: usize,
        run: &RunContext,
    ) -> Result<Option<StPlane>, WorkerPanic> {
        let n = interner.len();
        let bitsets = AncestorBitsets::for_terms(ontology, interner.terms());
        let threads = threads.clamp(1, n.max(1));
        let rows: Vec<usize> = (0..n).collect();
        let chunks = split_chunks(&rows, threads);
        let queue = WorkQueue::new(chunks.len());
        // Each worker appends every row it owns into one flat buffer and
        // records `(row, start)` markers — no per-row Vec, so the shard
        // does O(1) amortized allocations instead of one per term.
        let PoolOutcome {
            results: parts,
            panic,
        }: PoolOutcome<ShardRows> =
            run_supervised(chunks.len().max(1), "go.st_plane", run, || {
                let mut starts: Vec<(usize, usize)> = Vec::new();
                let mut flat: Vec<f64> = Vec::new();
                while let Some(c) = queue.pull() {
                    for &i in &chunks[c] {
                        if run.should_stop() {
                            return (starts, flat);
                        }
                        let ti = interner.term(i as u32);
                        let start = flat.len();
                        for j in 0..i {
                            let tj = interner.term(j as u32);
                            // `tj < ti` (interned order is term order),
                            // matching the oracle's normalized (min, max)
                            // argument order exactly.
                            flat.push(st_value(weights, tj, ti, || {
                                bitsets.lowest_common_parent(weights, tj, ti)
                            }));
                        }
                        flat.push(1.0);
                        run.tick((i + 1) as u64);
                        starts.push((i, start));
                    }
                }
                (starts, flat)
            });
        if let Some(panic) = panic {
            return Err(panic);
        }
        if run.should_stop() {
            return Ok(None);
        }
        let mut tri = vec![0.0f64; n * (n + 1) / 2];
        for (starts, flat) in parts {
            for (i, start) in starts {
                tri[Self::slot(i, 0)..=Self::slot(i, i)]
                    .copy_from_slice(&flat[start..start + i + 1]);
            }
        }
        Ok(Some(StPlane { n, tri }))
    }
}

/// Unified kernel diagnostics: what the dense planes and the memoized
/// oracle each did during a labeling run. All counters are additive —
/// [`KernelStats::merged`] combines the two sides.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Interned terms covered by the ST plane (`0` = memoized run).
    pub st_plane_terms: usize,
    /// ST plane storage in bytes.
    pub st_plane_bytes: usize,
    /// Work ticks spent building the ST plane (0 under a passive
    /// context, which does not meter).
    pub st_plane_build_ticks: u64,
    /// Per-motif SV planes built.
    pub sv_planes: usize,
    /// Total distinct proteins covered across SV planes.
    pub sv_plane_proteins: usize,
    /// Total protein-pair cells across SV planes.
    pub sv_plane_pairs: usize,
    /// Total SV plane storage in bytes.
    pub sv_plane_bytes: usize,
    /// `SV` queries answered by the memoized oracle instead of a plane
    /// (every query in a memoized run; plane misses in a dense run).
    pub sv_oracle_calls: u64,
    /// Term pairs memoized in the oracle's `ST` cache.
    pub st_memo_pairs: usize,
    /// Term pairs memoized in the oracle's LCP cache.
    pub lcp_memo_pairs: usize,
}

impl KernelStats {
    /// Field-wise sum of two diagnostics records.
    pub fn merged(self, other: &KernelStats) -> KernelStats {
        KernelStats {
            st_plane_terms: self.st_plane_terms + other.st_plane_terms,
            st_plane_bytes: self.st_plane_bytes + other.st_plane_bytes,
            st_plane_build_ticks: self.st_plane_build_ticks + other.st_plane_build_ticks,
            sv_planes: self.sv_planes + other.sv_planes,
            sv_plane_proteins: self.sv_plane_proteins + other.sv_plane_proteins,
            sv_plane_pairs: self.sv_plane_pairs + other.sv_plane_pairs,
            sv_plane_bytes: self.sv_plane_bytes + other.sv_plane_bytes,
            sv_oracle_calls: self.sv_oracle_calls + other.sv_oracle_calls,
            st_memo_pairs: self.st_memo_pairs + other.st_memo_pairs,
            lcp_memo_pairs: self.lcp_memo_pairs + other.lcp_memo_pairs,
        }
    }
}

/// The per-namespace dense kernel bundle: interner + ST plane + CSR
/// per-protein interned term lists, plus atomic counters that the
/// per-motif SV planes report into (they are built concurrently by the
/// motif workers).
pub struct DenseSimPlanes {
    interner: TermInterner,
    plane: StPlane,
    /// CSR offsets: protein `p`'s interned terms are
    /// `term_data[term_offsets[p]..term_offsets[p + 1]]`.
    term_offsets: Vec<u32>,
    /// Interned term ids per protein, in annotation (ascending term)
    /// order — interning is monotone, so these are ascending too.
    term_data: Vec<u32>,
    /// Ticks the ST plane build cost (0 under a passive context).
    build_ticks: u64,
    sv_planes: AtomicU64,
    sv_plane_proteins: AtomicU64,
    sv_plane_pairs: AtomicU64,
    sv_oracle_calls: AtomicU64,
}

impl DenseSimPlanes {
    /// Build the full bundle for one namespace: intern the terms of
    /// `terms_by_protein`, compute the ST plane with `threads` workers
    /// under `run`, and lay the per-protein term lists out in CSR form.
    /// `Ok(None)` when the context tripped mid-build.
    // lamolint::allow(alloc-in-hot-loop): CSR output storage preallocated
    // at exact capacity — pushes never reallocate, and the vectors are
    // the bundle's owned fields, not per-query temporaries
    pub fn build(
        ontology: &Ontology,
        weights: &TermWeights,
        terms_by_protein: &[Vec<TermId>],
        threads: usize,
        run: &RunContext,
    ) -> Result<Option<DenseSimPlanes>, WorkerPanic> {
        let interner = TermInterner::from_term_lists(ontology.term_count(), terms_by_protein);
        let Some(plane) = StPlane::build(ontology, weights, &interner, threads, run)? else {
            return Ok(None);
        };
        // Work-tick volume the plane build issues: row `i` ticks `i + 1`
        // cells, so a completed build is always n(n+1)/2. Computed here
        // rather than read back from `run`, which doesn't meter ticks
        // under a passive context.
        let n = interner.len() as u64;
        let build_ticks = n * (n + 1) / 2;
        let total_terms: usize = terms_by_protein.iter().map(Vec::len).sum();
        let mut term_offsets = Vec::with_capacity(terms_by_protein.len() + 1);
        let mut term_data = Vec::with_capacity(total_terms);
        term_offsets.push(0u32);
        for list in terms_by_protein {
            for &t in list {
                let d = interner
                    .dense(t)
                    .expect("every term in terms_by_protein was interned from the same lists");
                term_data.push(d);
            }
            term_offsets.push(term_data.len() as u32);
        }
        Ok(Some(DenseSimPlanes {
            interner,
            plane,
            term_offsets,
            term_data,
            build_ticks,
            sv_planes: AtomicU64::new(0),
            sv_plane_proteins: AtomicU64::new(0),
            sv_plane_pairs: AtomicU64::new(0),
            sv_oracle_calls: AtomicU64::new(0),
        }))
    }

    /// The used-term interner.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// The dense ST plane.
    pub fn st_plane(&self) -> &StPlane {
        &self.plane
    }

    /// Interned (ascending) annotation terms of protein `p`.
    #[inline]
    pub fn interned_terms(&self, p: usize) -> &[u32] {
        &self.term_data[self.term_offsets[p] as usize..self.term_offsets[p + 1] as usize]
    }

    /// `SV` (Eq. 2) over two interned term lists, reading the ST plane.
    /// Mirrors [`TermSimilarity::sv`] operation for operation: shared
    /// term → 1, empty side → 0, else the `1 − Π(1 − ST)` product with
    /// the same factor order and the same exact-zero early exit.
    pub fn sv_interned(&self, terms_a: &[u32], terms_b: &[u32]) -> f64 {
        if terms_a.is_empty() || terms_b.is_empty() {
            return 0.0;
        }
        if sorted_intersect(terms_a, terms_b) {
            return 1.0;
        }
        let mut product = 1.0f64;
        for &ta in terms_a {
            for &tb in terms_b {
                product *= 1.0 - self.plane.get(ta, tb);
                if product == 0.0 {
                    return 1.0;
                }
            }
        }
        1.0 - product
    }

    /// `SV` between proteins `p` and `q` (by network vertex id).
    #[inline]
    pub fn sv_proteins(&self, p: usize, q: usize) -> f64 {
        self.sv_interned(self.interned_terms(p), self.interned_terms(q))
    }

    /// Record one per-motif SV plane (called by `OccurrenceScorer`).
    pub fn record_sv_plane(&self, proteins: usize, pairs: usize) {
        self.sv_planes.fetch_add(1, Ordering::Relaxed);
        self.sv_plane_proteins
            .fetch_add(proteins as u64, Ordering::Relaxed);
        self.sv_plane_pairs.fetch_add(pairs as u64, Ordering::Relaxed);
    }

    /// Record one `SV` query that fell back to the memoized oracle.
    pub fn record_oracle_fallback(&self) {
        self.sv_oracle_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Zero the per-run SV counters. A cached bundle is reused across
    /// labeling runs; resetting at run entry keeps `stats()` scoped to
    /// the current run, exactly as a fresh build would report.
    pub fn reset_run_counters(&self) {
        self.sv_planes.store(0, Ordering::Relaxed);
        self.sv_plane_proteins.store(0, Ordering::Relaxed);
        self.sv_plane_pairs.store(0, Ordering::Relaxed);
        self.sv_oracle_calls.store(0, Ordering::Relaxed);
    }

    /// Diagnostics snapshot for this bundle (memo counters are the
    /// oracle's side — see [`TermSimilarity::kernel_stats`]).
    pub fn stats(&self) -> KernelStats {
        let pairs = self.sv_plane_pairs.load(Ordering::Relaxed) as usize;
        KernelStats {
            st_plane_terms: self.plane.terms(),
            st_plane_bytes: self.plane.bytes(),
            st_plane_build_ticks: self.build_ticks,
            sv_planes: self.sv_planes.load(Ordering::Relaxed) as usize,
            sv_plane_proteins: self.sv_plane_proteins.load(Ordering::Relaxed) as usize,
            sv_plane_pairs: pairs,
            sv_plane_bytes: pairs * std::mem::size_of::<f64>(),
            sv_oracle_calls: self.sv_oracle_calls.load(Ordering::Relaxed),
            st_memo_pairs: 0,
            lcp_memo_pairs: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{Annotations, ProteinId};
    use crate::ontology::OntologyBuilder;
    use crate::similarity::TermSimilarity;
    use crate::term::{Namespace, Relation};

    /// root(1.0) -> a(0.6) -> {x(0.3), y(0.3)}; root -> b(0.4); one MF
    /// term in a foreign namespace.
    fn fixture() -> (Ontology, Annotations) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let x = ob.add_term("GO:3", "x", Namespace::BiologicalProcess);
        let y = ob.add_term("GO:4", "y", Namespace::BiologicalProcess);
        let _mf = ob.add_term("GO:5", "mf", Namespace::MolecularFunction);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x, a, Relation::IsA);
        ob.add_edge(y, a, Relation::IsA);
        let o = ob.build().expect("fixture ontology is acyclic and well-formed");
        let mut ann = Annotations::new(10, o.term_count());
        for p in 0..3 {
            ann.annotate(ProteinId(p), x);
        }
        for p in 3..6 {
            ann.annotate(ProteinId(p), y);
        }
        for p in 6..10 {
            ann.annotate(ProteinId(p), b);
        }
        (o, ann)
    }

    #[test]
    fn bitset_lcp_matches_oracle_on_all_pairs() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let sim = TermSimilarity::new(&o, &w);
        let bits = AncestorBitsets::build(&o);
        for a in o.term_ids() {
            for b in o.term_ids() {
                assert_eq!(
                    bits.lowest_common_parent(&w, a, b),
                    sim.lowest_common_parent(a, b),
                    "lcp({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn uncovered_terms_have_no_lcp() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let bits = AncestorBitsets::for_terms(&o, &[TermId(3)]);
        assert_eq!(bits.lowest_common_parent(&w, TermId(3), TermId(3)), Some(TermId(3)));
        assert_eq!(bits.lowest_common_parent(&w, TermId(3), TermId(4)), None);
    }

    #[test]
    fn interner_is_monotone_and_round_trips() {
        let lists = vec![vec![TermId(4)], vec![], vec![TermId(1), TermId(4)]];
        let interner = TermInterner::from_term_lists(6, &lists);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.dense(TermId(1)), Some(0));
        assert_eq!(interner.dense(TermId(4)), Some(1));
        assert_eq!(interner.dense(TermId(0)), None);
        assert_eq!(interner.term(0), TermId(1));
        assert_eq!(interner.term(1), TermId(4));
        assert_eq!(interner.terms(), &[TermId(1), TermId(4)]);
    }

    #[test]
    fn st_plane_matches_oracle_bitwise() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let sim = TermSimilarity::new(&o, &w);
        let lists: Vec<Vec<TermId>> = vec![
            vec![TermId(2), TermId(3)],
            vec![TermId(4)],
            vec![TermId(1)],
        ];
        let interner = TermInterner::from_term_lists(o.term_count(), &lists);
        let plane = StPlane::build(&o, &w, &interner, 2, &RunContext::unbounded())
            .expect("no faults are injected")
            .expect("a passive context never cancels the build");
        for i in 0..interner.len() as u32 {
            for j in 0..interner.len() as u32 {
                let (ta, tb) = (interner.term(i), interner.term(j));
                assert_eq!(
                    plane.get(i, j).to_bits(),
                    sim.st(ta, tb).to_bits(),
                    "st({ta:?}, {tb:?})"
                );
            }
        }
    }

    #[test]
    fn plane_build_honors_cancellation() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let lists: Vec<Vec<TermId>> =
            (0..5).map(|t| vec![TermId(t)]).collect();
        let interner = TermInterner::from_term_lists(o.term_count(), &lists);
        let run = RunContext::unbounded();
        run.cancel();
        let plane = StPlane::build(&o, &w, &interner, 1, &run).expect("no faults are injected");
        assert!(plane.is_none(), "a cancelled build yields no plane");
    }

    #[test]
    fn dense_planes_sv_matches_oracle_bitwise() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let sim = TermSimilarity::new(&o, &w);
        // Per-protein BP term lists straight from the fixture.
        let lists: Vec<Vec<TermId>> = (0..10)
            .map(|p| ann.terms_of(ProteinId(p)).to_vec())
            .collect();
        let planes = DenseSimPlanes::build(&o, &w, &lists, 1, &RunContext::unbounded())
            .expect("no faults are injected")
            .expect("a passive context never cancels the build");
        for p in 0..10 {
            for q in 0..10 {
                assert_eq!(
                    planes.sv_proteins(p, q).to_bits(),
                    sim.sv(&lists[p], &lists[q]).to_bits(),
                    "sv({p}, {q})"
                );
            }
        }
    }

    #[test]
    fn sv_interned_edge_cases() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let lists: Vec<Vec<TermId>> = vec![
            vec![TermId(3)],
            vec![TermId(3), TermId(4)],
            vec![],
            vec![TermId(2)],
        ];
        let planes = DenseSimPlanes::build(&o, &w, &lists, 1, &RunContext::unbounded())
            .expect("no faults are injected")
            .expect("a passive context never cancels the build");
        // Shared term → exactly 1 (fast path).
        assert_eq!(planes.sv_proteins(0, 1), 1.0);
        // Empty side → 0.
        assert_eq!(planes.sv_proteins(0, 2), 0.0);
        assert_eq!(planes.sv_proteins(2, 2), 0.0);
        // Disjoint lists → strictly between 0 and 1 here (x vs b share
        // only the root).
        let v = planes.sv_proteins(0, 3);
        assert!((0.0..1.0).contains(&v), "v = {v}");
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let lists: Vec<Vec<TermId>> = vec![vec![TermId(3)], vec![TermId(4)]];
        let planes = DenseSimPlanes::build(&o, &w, &lists, 1, &RunContext::unbounded())
            .expect("no faults are injected")
            .expect("a passive context never cancels the build");
        planes.record_sv_plane(3, 6);
        planes.record_oracle_fallback();
        let s = planes.stats();
        assert_eq!(s.st_plane_terms, 2);
        assert_eq!(s.st_plane_bytes, 3 * 8);
        assert_eq!(s.sv_planes, 1);
        assert_eq!(s.sv_plane_proteins, 3);
        assert_eq!(s.sv_plane_pairs, 6);
        assert_eq!(s.sv_plane_bytes, 48);
        assert_eq!(s.sv_oracle_calls, 1);
        let sim = TermSimilarity::new(&o, &w);
        let _ = sim.st(TermId(3), TermId(4));
        let merged = s.merged(&sim.kernel_stats());
        assert_eq!(merged.st_memo_pairs, 1);
        assert_eq!(merged.sv_planes, 1);
    }

    #[test]
    fn plane_build_is_thread_invariant() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        let lists: Vec<Vec<TermId>> = (0..10)
            .map(|p| ann.terms_of(ProteinId(p)).to_vec())
            .collect();
        let build = |threads| {
            DenseSimPlanes::build(&o, &w, &lists, threads, &RunContext::unbounded())
                .expect("no faults are injected")
                .expect("a passive context never cancels the build")
        };
        let one = build(1);
        for threads in [2, 4] {
            let other = build(threads);
            assert_eq!(one.plane.tri.len(), other.plane.tri.len());
            for (a, b) in one.plane.tri.iter().zip(&other.plane.tri) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
