//! Genome-specific GO term weights (Lord et al., as used in Section 2).
//!
//! The weight of a term is *"the ratio of the number of occurrences of
//! the GO term and any of its descendants' terms in the genome to the
//! total number of term occurrences in the genome"*. Totals are taken
//! per namespace, so each branch root has weight 1 (the paper: "the root
//! node has a weight of 1"). Table 1 of the paper is reproduced exactly
//! by this computation (see `synthetic-data`'s `paper_example` and the
//! `table1_weights` bench binary).

use crate::annotations::Annotations;
use crate::ontology::Ontology;
use crate::term::TermId;

/// Precomputed per-term weights and subtree occurrence counts.
#[derive(Clone, Debug)]
pub struct TermWeights {
    /// `w(t)` per term.
    weights: Vec<f64>,
    /// Occurrences of `t` or any descendant (Table 1, column 3).
    subtree_occurrences: Vec<usize>,
    /// Per-namespace totals, indexed like `Namespace::ALL`.
    totals: [usize; 3],
}

impl TermWeights {
    /// Compute weights for every term from direct annotation counts.
    ///
    /// Descendant sets are materialized as term bitsets in reverse
    /// topological order so that diamonds (a descendant reachable via
    /// several paths) are counted once.
    pub fn compute(ontology: &Ontology, annotations: &Annotations) -> Self {
        let n = ontology.term_count();
        assert_eq!(
            annotations.term_count(),
            n,
            "annotation table and ontology disagree on term count"
        );
        let words = n.div_ceil(64).max(1);
        let mut desc: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        for &t in ontology.topological_order().iter().rev() {
            let i = t.index();
            desc[i][i / 64] |= 1 << (i % 64);
            // OR in each child's set. Split borrows via direct indexing.
            let children: Vec<usize> =
                ontology.children(t).iter().map(|&(c, _)| c.index()).collect();
            for c in children {
                let (a, b) = if c < i {
                    let (lo, hi) = desc.split_at_mut(i);
                    (&mut hi[0], &lo[c])
                } else {
                    let (lo, hi) = desc.split_at_mut(c);
                    (&mut lo[i], &hi[0])
                };
                for (w, &cw) in a.iter_mut().zip(b.iter()) {
                    *w |= cw;
                }
            }
        }

        let direct: Vec<usize> = (0..n)
            .map(|i| annotations.direct_count(TermId(i as u32)))
            .collect();
        let mut subtree = vec![0usize; n];
        for (i, set) in desc.iter().enumerate() {
            let mut sum = 0usize;
            for (w, &word) in set.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    sum += direct[w * 64 + b];
                    bits &= bits - 1;
                }
            }
            subtree[i] = sum;
        }

        let mut totals = [0usize; 3];
        for t in ontology.term_ids() {
            let ns = ontology.namespace(t) as usize;
            totals[ns] += direct[t.index()];
        }

        let weights = (0..n)
            .map(|i| {
                let ns = ontology.namespace(TermId(i as u32)) as usize;
                if totals[ns] == 0 {
                    0.0
                } else {
                    subtree[i] as f64 / totals[ns] as f64
                }
            })
            .collect();

        TermWeights {
            weights,
            subtree_occurrences: subtree,
            totals,
        }
    }

    /// `w(t)`.
    #[inline]
    pub fn weight(&self, t: TermId) -> f64 {
        self.weights[t.index()]
    }

    /// Occurrences of `t` or any descendant (Table 1, column 3).
    pub fn subtree_occurrences(&self, t: TermId) -> usize {
        self.subtree_occurrences[t.index()]
    }

    /// Total annotation occurrences in `t`'s namespace.
    pub fn namespace_total(&self, ns: crate::term::Namespace) -> usize {
        self.totals[ns as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::ProteinId;
    use crate::ontology::OntologyBuilder;
    use crate::term::{Namespace, Relation};

    /// root -> a -> leaf, root -> b; diamond d under both a and b.
    fn fixture() -> (Ontology, Annotations) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let d = ob.add_term("GO:3", "d", Namespace::BiologicalProcess);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(d, a, Relation::IsA);
        ob.add_edge(d, b, Relation::IsA);
        let o = ob.build().unwrap();

        // 10 proteins: 2 on a, 3 on b, 5 on d.
        let mut ann = Annotations::new(10, o.term_count());
        for p in 0..2 {
            ann.annotate(ProteinId(p), a);
        }
        for p in 2..5 {
            ann.annotate(ProteinId(p), b);
        }
        for p in 5..10 {
            ann.annotate(ProteinId(p), d);
        }
        (o, ann)
    }

    #[test]
    fn root_weight_is_one() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        assert!((w.weight(TermId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_descendant_counted_once() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        // a's subtree: a(2) + d(5) = 7; b's: b(3) + d(5) = 8; root: 10.
        assert_eq!(w.subtree_occurrences(TermId(1)), 7);
        assert_eq!(w.subtree_occurrences(TermId(2)), 8);
        assert_eq!(w.subtree_occurrences(TermId(0)), 10);
        assert!((w.weight(TermId(1)) - 0.7).abs() < 1e-12);
        assert!((w.weight(TermId(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_monotone_up_the_dag() {
        let (o, ann) = fixture();
        let w = TermWeights::compute(&o, &ann);
        for t in o.term_ids() {
            for &anc in o.ancestors(t) {
                assert!(
                    w.weight(anc) >= w.weight(t) - 1e-12,
                    "ancestor weight must dominate"
                );
            }
        }
    }

    #[test]
    fn namespaces_normalized_independently() {
        let mut ob = OntologyBuilder::new();
        let bp = ob.add_term("GO:0", "bp-root", Namespace::BiologicalProcess);
        let mf = ob.add_term("GO:1", "mf-root", Namespace::MolecularFunction);
        let o = ob.build().unwrap();
        let mut ann = Annotations::new(4, o.term_count());
        ann.annotate(ProteinId(0), bp);
        ann.annotate(ProteinId(1), mf);
        ann.annotate(ProteinId(2), mf);
        let w = TermWeights::compute(&o, &ann);
        assert!((w.weight(bp) - 1.0).abs() < 1e-12);
        assert!((w.weight(mf) - 1.0).abs() < 1e-12);
        assert_eq!(w.namespace_total(Namespace::BiologicalProcess), 1);
        assert_eq!(w.namespace_total(Namespace::MolecularFunction), 2);
    }

    #[test]
    fn unannotated_namespace_gets_zero_weights() {
        let mut ob = OntologyBuilder::new();
        let cc = ob.add_term("GO:0", "cc-root", Namespace::CellularComponent);
        let o = ob.build().unwrap();
        let ann = Annotations::new(2, o.term_count());
        let w = TermWeights::compute(&o, &ann);
        assert_eq!(w.weight(cc), 0.0);
    }
}
