//! Protein → GO term annotation tables.
//!
//! The paper's input is a partially labeled network: 3554 of the 4141
//! yeast proteins carry at least one GO annotation, averaging 9.34 terms
//! per protein. [`Annotations`] stores the direct (asserted) annotations;
//! weights and informative classes are derived from it.

use crate::ontology::Ontology;
use crate::term::{Namespace, TermId};
use std::fmt;

/// Dense identifier of a protein. Aligns with the `VertexId` of the PPI
/// graph by construction in the pipeline crates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProteinId(pub u32);

impl ProteinId {
    /// The protein id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProteinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Direct annotation table: which GO terms each protein is asserted to
/// have. Terms per protein are kept sorted and deduplicated.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// per-protein sorted term lists.
    by_protein: Vec<Vec<TermId>>,
    /// per-term sorted protein lists (reverse index).
    by_term: Vec<Vec<ProteinId>>,
}

impl Annotations {
    /// Empty table for `protein_count` proteins and `term_count` terms.
    pub fn new(protein_count: usize, term_count: usize) -> Self {
        Annotations {
            by_protein: vec![Vec::new(); protein_count],
            by_term: vec![Vec::new(); term_count],
        }
    }

    /// Annotate protein `p` with term `t`. Duplicate assertions are
    /// ignored. Returns whether the annotation was new.
    pub fn annotate(&mut self, p: ProteinId, t: TermId) -> bool {
        let list = &mut self.by_protein[p.index()];
        match list.binary_search(&t) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, t);
                let tl = &mut self.by_term[t.index()];
                let ppos = tl.binary_search(&p).expect_err("reverse index out of sync");
                tl.insert(ppos, p);
                true
            }
        }
    }

    /// Number of proteins the table covers (annotated or not).
    pub fn protein_count(&self) -> usize {
        self.by_protein.len()
    }

    /// Number of terms the table covers.
    pub fn term_count(&self) -> usize {
        self.by_term.len()
    }

    /// Direct annotations of protein `p`, sorted.
    pub fn terms_of(&self, p: ProteinId) -> &[TermId] {
        &self.by_protein[p.index()]
    }

    /// Direct annotations of `p` restricted to namespace `ns`.
    pub fn terms_of_in(&self, p: ProteinId, ontology: &Ontology, ns: Namespace) -> Vec<TermId> {
        self.by_protein[p.index()]
            .iter()
            .copied()
            .filter(|&t| ontology.namespace(t) == ns)
            .collect()
    }

    /// Proteins directly annotated with term `t`, sorted.
    pub fn proteins_of(&self, t: TermId) -> &[ProteinId] {
        &self.by_term[t.index()]
    }

    /// Number of proteins directly annotated with `t` (the paper's
    /// "Num. of proteins annotated with t", Table 1 column 2).
    pub fn direct_count(&self, t: TermId) -> usize {
        self.by_term[t.index()].len()
    }

    /// Whether protein `p` has at least one annotation.
    pub fn is_annotated(&self, p: ProteinId) -> bool {
        !self.by_protein[p.index()].is_empty()
    }

    /// Number of proteins with at least one annotation.
    pub fn annotated_protein_count(&self) -> usize {
        self.by_protein.iter().filter(|l| !l.is_empty()).count()
    }

    /// Total number of (protein, term) annotation pairs — the paper's
    /// denominator for term weights (585 in the Table 1 example).
    pub fn total_occurrences(&self) -> usize {
        self.by_protein.iter().map(|l| l.len()).sum()
    }

    /// Total annotation pairs restricted to one namespace.
    pub fn occurrences_in(&self, ontology: &Ontology, ns: Namespace) -> usize {
        self.by_protein
            .iter()
            .map(|l| l.iter().filter(|&&t| ontology.namespace(t) == ns).count())
            .sum()
    }

    /// Mean number of terms per annotated protein (yeast: 9.34 per the
    /// paper).
    pub fn mean_terms_per_annotated_protein(&self) -> f64 {
        let annotated = self.annotated_protein_count();
        if annotated == 0 {
            return 0.0;
        }
        self.total_occurrences() as f64 / annotated as f64
    }

    /// Parse a GAF-lite annotation table: one `protein_name<TAB>accession`
    /// pair per line; `#` comments and blank lines skipped. `resolve`
    /// maps a protein name to its id (returning `None` skips the line —
    /// annotation files routinely mention proteins absent from the
    /// interactome).
    pub fn parse(
        text: &str,
        ontology: &Ontology,
        protein_count: usize,
        mut resolve: impl FnMut(&str) -> Option<ProteinId>,
    ) -> Result<Self, AnnotationParseError> {
        let mut table = Annotations::new(protein_count, ontology.term_count());
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let leading = raw.len() - raw.trim_start().len();
            let mut fields = line.split_whitespace();
            let (name, acc) = match (fields.next(), fields.next()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    // One field at most: the column points just past it,
                    // where the accession was expected.
                    let first_len = line.split_whitespace().next().map_or(0, str::len);
                    return Err(AnnotationParseError::MalformedLine {
                        line_no: i + 1,
                        col: leading + first_len + 1,
                        content: line.to_string(),
                    });
                }
            };
            let Some(p) = resolve(name) else { continue };
            let t = ontology
                .by_accession(acc)
                .ok_or_else(|| AnnotationParseError::UnknownTerm {
                    line_no: i + 1,
                    // Column of the accession field itself (1-based,
                    // bytes): leading blanks + name + inter-field gap.
                    col: {
                        let after_name = &line[name.len()..];
                        let gap = after_name.len() - after_name.trim_start().len();
                        leading + name.len() + gap + 1
                    },
                    accession: acc.to_string(),
                })?;
            table.annotate(p, t);
        }
        Ok(table)
    }

    /// Serialize to the format read by [`Annotations::parse`], using
    /// `name` to render protein ids.
    pub fn serialize(&self, ontology: &Ontology, mut name: impl FnMut(ProteinId) -> String) -> String {
        let mut out = String::from("# protein\tGO accession\n");
        for (p, terms) in self.by_protein.iter().enumerate() {
            let pname = name(ProteinId(p as u32));
            for &t in terms {
                out.push_str(&pname);
                out.push('\t');
                out.push_str(&ontology.term(t).accession);
                out.push('\n');
            }
        }
        out
    }
}

/// Errors from [`Annotations::parse`]. Every variant names the 1-based
/// line and byte column where the problem sits.
#[derive(Debug, PartialEq, Eq)]
pub enum AnnotationParseError {
    /// A data line did not contain two fields. `col` points just past
    /// the lone field, where the accession was expected.
    MalformedLine {
        line_no: usize,
        col: usize,
        content: String,
    },
    /// The accession is not in the ontology. `col` is where the
    /// accession field starts.
    UnknownTerm {
        line_no: usize,
        col: usize,
        accession: String,
    },
}

impl fmt::Display for AnnotationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotationParseError::MalformedLine {
                line_no,
                col,
                content,
            } => {
                write!(
                    f,
                    "line {line_no}, column {col}: expected two fields, got {content:?}"
                )
            }
            AnnotationParseError::UnknownTerm {
                line_no,
                col,
                accession,
            } => {
                write!(
                    f,
                    "line {line_no}, column {col}: unknown GO accession {accession}"
                )
            }
        }
    }
}

impl std::error::Error for AnnotationParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::OntologyBuilder;
    use crate::term::Relation;

    fn tiny_ontology() -> Ontology {
        let mut b = OntologyBuilder::new();
        let root = b.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = b.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let f = b.add_term("GO:9", "fn", Namespace::MolecularFunction);
        b.add_edge(a, root, Relation::IsA);
        let _ = f;
        b.build().unwrap()
    }

    #[test]
    fn annotate_deduplicates() {
        let o = tiny_ontology();
        let mut ann = Annotations::new(2, o.term_count());
        assert!(ann.annotate(ProteinId(0), TermId(1)));
        assert!(!ann.annotate(ProteinId(0), TermId(1)));
        assert_eq!(ann.terms_of(ProteinId(0)), &[TermId(1)]);
        assert_eq!(ann.proteins_of(TermId(1)), &[ProteinId(0)]);
        assert_eq!(ann.direct_count(TermId(1)), 1);
        assert_eq!(ann.total_occurrences(), 1);
    }

    #[test]
    fn namespace_filtering() {
        let o = tiny_ontology();
        let mut ann = Annotations::new(1, o.term_count());
        ann.annotate(ProteinId(0), TermId(1)); // biological process
        ann.annotate(ProteinId(0), TermId(2)); // molecular function
        assert_eq!(
            ann.terms_of_in(ProteinId(0), &o, Namespace::BiologicalProcess),
            vec![TermId(1)]
        );
        assert_eq!(ann.occurrences_in(&o, Namespace::MolecularFunction), 1);
    }

    #[test]
    fn coverage_statistics() {
        let o = tiny_ontology();
        let mut ann = Annotations::new(3, o.term_count());
        ann.annotate(ProteinId(0), TermId(0));
        ann.annotate(ProteinId(0), TermId(1));
        ann.annotate(ProteinId(2), TermId(1));
        assert_eq!(ann.annotated_protein_count(), 2);
        assert!(!ann.is_annotated(ProteinId(1)));
        assert!((ann.mean_terms_per_annotated_protein() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parse_resolves_and_skips_unknown_proteins() {
        let o = tiny_ontology();
        let text = "# comment\nP0\tGO:1\nSKIPME\tGO:0\nP1\tGO:9\n";
        let ann = Annotations::parse(text, &o, 2, |name| match name {
            "P0" => Some(ProteinId(0)),
            "P1" => Some(ProteinId(1)),
            _ => None,
        })
        .unwrap();
        assert_eq!(ann.terms_of(ProteinId(0)), &[TermId(1)]);
        assert_eq!(ann.terms_of(ProteinId(1)), &[TermId(2)]);
    }

    #[test]
    fn parse_rejects_unknown_accession() {
        let o = tiny_ontology();
        let err = Annotations::parse("P0\tGO:777\n", &o, 1, |_| Some(ProteinId(0))).unwrap_err();
        assert_eq!(
            err,
            AnnotationParseError::UnknownTerm {
                line_no: 1,
                col: 4,
                accession: "GO:777".into()
            }
        );
        assert!(err.to_string().contains("line 1, column 4"));
    }

    #[test]
    fn parse_reports_malformed_line_with_column() {
        let o = tiny_ontology();
        let err = Annotations::parse("P0\tGO:1\n  lonely\n", &o, 1, |_| Some(ProteinId(0)))
            .unwrap_err();
        assert_eq!(
            err,
            AnnotationParseError::MalformedLine {
                line_no: 2,
                col: 9,
                content: "lonely".into()
            }
        );
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let o = tiny_ontology();
        let mut ann = Annotations::new(2, o.term_count());
        ann.annotate(ProteinId(0), TermId(1));
        ann.annotate(ProteinId(1), TermId(0));
        ann.annotate(ProteinId(1), TermId(2));
        let text = ann.serialize(&o, |p| format!("P{}", p.0));
        let back = Annotations::parse(&text, &o, 2, |name| {
            name.strip_prefix('P').and_then(|s| s.parse().ok()).map(ProteinId)
        })
        .unwrap();
        assert_eq!(back.terms_of(ProteinId(0)), ann.terms_of(ProteinId(0)));
        assert_eq!(back.terms_of(ProteinId(1)), ann.terms_of(ProteinId(1)));
    }
}
