#![forbid(unsafe_code)]
//! Gene Ontology substrate for the LaMoFinder reproduction.
//!
//! Implements everything Section 2 of the paper needs from GO:
//!
//! * the term DAG with is-a / part-of edges and multi-parent terms
//!   ([`ontology`]);
//! * protein annotation tables ([`annotations`]);
//! * genome-specific term weights `w(t)` à la Lord et al. ([`weights`]);
//! * informative functional classes and the border informative FC
//!   ([`informative`]);
//! * Lin term similarity `ST` (Eq. 1) and term-set similarity `SV`
//!   (Eq. 2) ([`similarity`]), plus the precomputed dense ST/SV kernels
//!   the labeling hot path reads ([`dense`]);
//! * an OBO-subset parser/writer ([`obo`]).

pub mod annotations;
pub mod dense;
pub mod informative;
pub mod obo;
pub mod ontology;
/// Sharded insert-once memo table, now shared workspace-wide from
/// `par-util`; re-exported here so existing `go_ontology::sharded`
/// import paths keep working.
pub mod sharded {
    pub use par_util::sharded::ShardedCache;
}
pub mod similarity;
pub mod term;
pub mod weights;

pub use annotations::{AnnotationParseError, Annotations, ProteinId};
pub use dense::{AncestorBitsets, DenseSimPlanes, KernelStats, StPlane, TermInterner};
pub use informative::{BorderRule, InformativeClasses, InformativeConfig};
pub use obo::{parse_obo, write_obo, OboError};
pub use sharded::ShardedCache;
pub use ontology::{Ontology, OntologyBuilder, OntologyError};
pub use similarity::TermSimilarity;
pub use term::{Namespace, Relation, Term, TermId};
pub use weights::TermWeights;
