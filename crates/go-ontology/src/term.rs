//! GO term identifiers, namespaces and relations.

use std::fmt;

/// Dense identifier of a GO term within an [`crate::Ontology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The term id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The three GO ontology branches ("domains" in the paper's Section 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Namespace {
    /// Molecular function ("function" labels in the paper).
    MolecularFunction,
    /// Biological process ("process").
    BiologicalProcess,
    /// Cellular component ("location").
    CellularComponent,
}

impl Namespace {
    /// All three namespaces, in the order the paper enumerates them.
    pub const ALL: [Namespace; 3] = [
        Namespace::MolecularFunction,
        Namespace::BiologicalProcess,
        Namespace::CellularComponent,
    ];

    /// The `namespace:` value used in OBO files.
    pub fn obo_name(self) -> &'static str {
        match self {
            Namespace::MolecularFunction => "molecular_function",
            Namespace::BiologicalProcess => "biological_process",
            Namespace::CellularComponent => "cellular_component",
        }
    }

    /// Parse an OBO `namespace:` value.
    pub fn from_obo_name(s: &str) -> Option<Self> {
        match s {
            "molecular_function" => Some(Namespace::MolecularFunction),
            "biological_process" => Some(Namespace::BiologicalProcess),
            "cellular_component" => Some(Namespace::CellularComponent),
            _ => None,
        }
    }
}

impl fmt::Display for Namespace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.obo_name())
    }
}

/// Parent–child relation kind. The GO DAG mixes subsumption ("is-a")
/// and meronymy ("part-of"); the paper treats both as generalization
/// edges, and so do all algorithms here — the kind is kept for
/// round-tripping and reporting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Relation {
    /// `ti` is an instance of `tj`.
    IsA,
    /// `ti` is a component of `tj`.
    PartOf,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::IsA => "is_a",
            Relation::PartOf => "part_of",
        })
    }
}

/// A GO term: accession (e.g. `GO:0008150`), human-readable name, and
/// namespace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Term {
    /// Accession string, unique within the ontology.
    pub accession: String,
    /// Human-readable name.
    pub name: String,
    /// Which of the three GO branches the term belongs to.
    pub namespace: Namespace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_obo_roundtrip() {
        for ns in Namespace::ALL {
            assert_eq!(Namespace::from_obo_name(ns.obo_name()), Some(ns));
        }
        assert_eq!(Namespace::from_obo_name("bogus"), None);
    }

    #[test]
    fn term_id_ordering_matches_u32() {
        assert!(TermId(1) < TermId(2));
        assert_eq!(TermId(7).index(), 7);
    }

    #[test]
    fn relation_display() {
        assert_eq!(Relation::IsA.to_string(), "is_a");
        assert_eq!(Relation::PartOf.to_string(), "part_of");
    }
}
