//! Parser and writer for a pragmatic subset of the OBO 1.2 flat-file
//! format — the format the Gene Ontology is distributed in.
//!
//! Supported stanza fields: `id`, `name`, `namespace`, `is_a`, and
//! `relationship: part_of`. Everything else (synonyms, defs, xrefs,
//! obsolete flags) is skipped, matching what the algorithms actually
//! consume. `is_obsolete: true` stanzas are dropped entirely.

use crate::ontology::{Ontology, OntologyBuilder, OntologyError};
use crate::term::{Namespace, Relation};
use std::fmt;

/// Errors from [`parse_obo`].
#[derive(Debug, PartialEq, Eq)]
pub enum OboError {
    /// A `[Term]` stanza is missing its `id:`.
    MissingId { stanza_no: usize },
    /// A stanza has an unknown or missing `namespace:`.
    BadNamespace { id: String },
    /// The assembled DAG failed validation.
    Ontology(OntologyError),
}

impl fmt::Display for OboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OboError::MissingId { stanza_no } => {
                write!(f, "term stanza #{stanza_no} has no id")
            }
            OboError::BadNamespace { id } => {
                write!(f, "term {id} has a missing or unknown namespace")
            }
            OboError::Ontology(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OboError {}

impl From<OntologyError> for OboError {
    fn from(e: OntologyError) -> Self {
        OboError::Ontology(e)
    }
}

#[derive(Default)]
struct Stanza {
    id: Option<String>,
    name: String,
    namespace: Option<Namespace>,
    parents: Vec<(String, Relation)>,
    obsolete: bool,
}

/// Parse an OBO document into an [`Ontology`].
pub fn parse_obo(text: &str) -> Result<Ontology, OboError> {
    let mut stanzas: Vec<Stanza> = Vec::new();
    let mut current: Option<Stanza> = None;
    let mut in_term = false;

    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('!') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(s) = current.take() {
                stanzas.push(s);
            }
            in_term = line == "[Term]";
            if in_term {
                current = Some(Stanza::default());
            }
            continue;
        }
        if !in_term {
            continue;
        }
        let Some(stanza) = current.as_mut() else { continue };
        let Some((key, value)) = line.split_once(':') else { continue };
        let value = strip_comment(value.trim());
        match key {
            "id" => stanza.id = Some(value.to_string()),
            "name" => stanza.name = value.to_string(),
            "namespace" => stanza.namespace = Namespace::from_obo_name(value),
            "is_a" => stanza.parents.push((value.to_string(), Relation::IsA)),
            "relationship" => {
                if let Some(rest) = value.strip_prefix("part_of") {
                    stanza
                        .parents
                        .push((rest.trim().to_string(), Relation::PartOf));
                }
            }
            "is_obsolete" => stanza.obsolete = value == "true",
            _ => {}
        }
    }
    if let Some(s) = current.take() {
        stanzas.push(s);
    }

    let mut builder = OntologyBuilder::new();
    let mut edges: Vec<(String, String, Relation)> = Vec::new();
    for (i, s) in stanzas.iter().enumerate() {
        if s.obsolete {
            continue;
        }
        let id = s
            .id
            .clone()
            .ok_or(OboError::MissingId { stanza_no: i + 1 })?;
        let ns = s.namespace.ok_or_else(|| OboError::BadNamespace {
            id: id.clone(),
        })?;
        builder.add_term(id.clone(), s.name.clone(), ns);
        for (parent, rel) in &s.parents {
            edges.push((id.clone(), parent.clone(), *rel));
        }
    }
    for (child, parent, rel) in edges {
        builder
            .add_edge_by_accession(&child, &parent, rel)
            .map_err(OboError::Ontology)?;
    }
    Ok(builder.build()?)
}

/// Drop an OBO trailing comment (`GO:0001 ! some name`).
fn strip_comment(value: &str) -> &str {
    match value.split_once('!') {
        Some((v, _)) => v.trim(),
        None => value,
    }
}

/// Serialize an [`Ontology`] to OBO, readable by [`parse_obo`].
pub fn write_obo(ontology: &Ontology) -> String {
    let mut out = String::from("format-version: 1.2\n");
    for t in ontology.term_ids() {
        let term = ontology.term(t);
        out.push_str("\n[Term]\n");
        out.push_str(&format!("id: {}\n", term.accession));
        out.push_str(&format!("name: {}\n", term.name));
        out.push_str(&format!("namespace: {}\n", term.namespace.obo_name()));
        for &(p, rel) in ontology.parents(t) {
            let pacc = &ontology.term(p).accession;
            match rel {
                Relation::IsA => out.push_str(&format!("is_a: {pacc}\n")),
                Relation::PartOf => out.push_str(&format!("relationship: part_of {pacc}\n")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermId;

    const SAMPLE: &str = "\
format-version: 1.2
! a comment line

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0009987
name: cellular process
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0016043
name: cellular component organization
namespace: biological_process
is_a: GO:0009987
relationship: part_of GO:0008150

[Term]
id: GO:9999999
name: gone
namespace: biological_process
is_obsolete: true

[Typedef]
id: part_of
name: part of
";

    #[test]
    fn parses_terms_edges_and_skips_obsolete() {
        let o = parse_obo(SAMPLE).unwrap();
        assert_eq!(o.term_count(), 3);
        let org = o.by_accession("GO:0016043").unwrap();
        assert_eq!(o.parents(org).len(), 2);
        assert!(o.by_accession("GO:9999999").is_none());
    }

    #[test]
    fn trailing_comments_stripped() {
        let o = parse_obo(SAMPLE).unwrap();
        let cp = o.by_accession("GO:0009987").unwrap();
        assert_eq!(o.parents(cp), &[(TermId(0), Relation::IsA)]);
    }

    #[test]
    fn missing_namespace_is_error() {
        let bad = "[Term]\nid: GO:1\nname: x\n";
        assert_eq!(
            parse_obo(bad).unwrap_err(),
            OboError::BadNamespace { id: "GO:1".into() }
        );
    }

    #[test]
    fn missing_id_is_error() {
        let bad = "[Term]\nname: x\nnamespace: biological_process\n";
        assert!(matches!(parse_obo(bad).unwrap_err(), OboError::MissingId { .. }));
    }

    #[test]
    fn unknown_parent_is_error() {
        let bad = "[Term]\nid: GO:1\nname: x\nnamespace: biological_process\nis_a: GO:2\n";
        assert!(matches!(parse_obo(bad).unwrap_err(), OboError::Ontology(_)));
    }

    #[test]
    fn write_parse_roundtrip() {
        let o = parse_obo(SAMPLE).unwrap();
        let text = write_obo(&o);
        let o2 = parse_obo(&text).unwrap();
        assert_eq!(o2.term_count(), o.term_count());
        for t in o.term_ids() {
            let acc = &o.term(t).accession;
            let t2 = o2.by_accession(acc).unwrap();
            assert_eq!(o2.term(t2).name, o.term(t).name);
            assert_eq!(o2.parents(t2).len(), o.parents(t).len());
        }
    }
}
