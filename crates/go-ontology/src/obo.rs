//! Parser and writer for a pragmatic subset of the OBO 1.2 flat-file
//! format — the format the Gene Ontology is distributed in.
//!
//! Supported stanza fields: `id`, `name`, `namespace`, `is_a`, and
//! `relationship: part_of`. Everything else (synonyms, defs, xrefs,
//! obsolete flags) is skipped, matching what the algorithms actually
//! consume. `is_obsolete: true` stanzas are dropped entirely.

use crate::ontology::{Ontology, OntologyBuilder, OntologyError};
use crate::term::{Namespace, Relation};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse_obo`]. Every variant carries the 1-based line
/// of the declaration it blames, so malformed files can be fixed
/// without a manual search.
#[derive(Debug, PartialEq, Eq)]
pub enum OboError {
    /// A `[Term]` stanza is missing its `id:`. `line` is the stanza
    /// header line.
    MissingId { stanza_no: usize, line: usize },
    /// A stanza has an unknown or missing `namespace:`. `line` is the
    /// `namespace:` field when one was present (unrecognized value),
    /// or the stanza header when the field is absent.
    BadNamespace { id: String, line: usize },
    /// The assembled DAG failed validation. `line` points at the edge
    /// field or term declaration the underlying error blames.
    Ontology { line: usize, source: OntologyError },
}

impl fmt::Display for OboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OboError::MissingId { stanza_no, line } => {
                write!(f, "line {line}: term stanza #{stanza_no} has no id")
            }
            OboError::BadNamespace { id, line } => {
                write!(f, "line {line}: term {id} has a missing or unknown namespace")
            }
            OboError::Ontology { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for OboError {}

#[derive(Default)]
struct Stanza {
    /// Line of the `[Term]` header (1-based).
    header_line: usize,
    id: Option<String>,
    name: String,
    namespace: Option<Namespace>,
    /// Line of the `namespace:` field, if one was seen.
    ns_line: Option<usize>,
    /// Parent accession, relation, and the line declaring the edge.
    parents: Vec<(String, Relation, usize)>,
    obsolete: bool,
}

/// Parse an OBO document into an [`Ontology`].
pub fn parse_obo(text: &str) -> Result<Ontology, OboError> {
    let mut stanzas: Vec<Stanza> = Vec::new();
    let mut current: Option<Stanza> = None;
    let mut in_term = false;

    for (line_idx, raw) in text.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = raw.trim();
        if line.starts_with('!') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some(s) = current.take() {
                stanzas.push(s);
            }
            in_term = line == "[Term]";
            if in_term {
                current = Some(Stanza {
                    header_line: line_no,
                    ..Stanza::default()
                });
            }
            continue;
        }
        if !in_term {
            continue;
        }
        let Some(stanza) = current.as_mut() else { continue };
        let Some((key, value)) = line.split_once(':') else { continue };
        let value = strip_comment(value.trim());
        match key {
            "id" => stanza.id = Some(value.to_string()),
            "name" => stanza.name = value.to_string(),
            "namespace" => {
                stanza.namespace = Namespace::from_obo_name(value);
                stanza.ns_line = Some(line_no);
            }
            "is_a" => stanza
                .parents
                .push((value.to_string(), Relation::IsA, line_no)),
            "relationship" => {
                if let Some(rest) = value.strip_prefix("part_of") {
                    stanza
                        .parents
                        .push((rest.trim().to_string(), Relation::PartOf, line_no));
                }
            }
            "is_obsolete" => stanza.obsolete = value == "true",
            _ => {}
        }
    }
    if let Some(s) = current.take() {
        stanzas.push(s);
    }

    let mut builder = OntologyBuilder::new();
    let mut edges: Vec<(String, String, Relation, usize)> = Vec::new();
    // First declaration line per accession, for blaming build()-time
    // failures (duplicates, cycles) on a concrete location.
    let mut decl_line: HashMap<String, usize> = HashMap::new();
    for (i, s) in stanzas.iter().enumerate() {
        if s.obsolete {
            continue;
        }
        let id = s.id.clone().ok_or(OboError::MissingId {
            stanza_no: i + 1,
            line: s.header_line,
        })?;
        let ns = s.namespace.ok_or_else(|| OboError::BadNamespace {
            id: id.clone(),
            line: s.ns_line.unwrap_or(s.header_line),
        })?;
        decl_line.entry(id.clone()).or_insert(s.header_line);
        builder.add_term(id.clone(), s.name.clone(), ns);
        for (parent, rel, field_line) in &s.parents {
            edges.push((id.clone(), parent.clone(), *rel, *field_line));
        }
    }
    for (child, parent, rel, line) in edges {
        builder
            .add_edge_by_accession(&child, &parent, rel)
            .map_err(|source| OboError::Ontology { line, source })?;
    }
    builder.build().map_err(|source| {
        let blamed = match &source {
            OntologyError::DuplicateAccession(a)
            | OntologyError::UnknownTerm(a)
            | OntologyError::Cycle(a) => a,
            OntologyError::CrossNamespaceEdge { child, .. } => child,
        };
        OboError::Ontology {
            line: decl_line.get(blamed).copied().unwrap_or(0),
            source,
        }
    })
}

/// Drop an OBO trailing comment (`GO:0001 ! some name`).
fn strip_comment(value: &str) -> &str {
    match value.split_once('!') {
        Some((v, _)) => v.trim(),
        None => value,
    }
}

/// Serialize an [`Ontology`] to OBO, readable by [`parse_obo`].
pub fn write_obo(ontology: &Ontology) -> String {
    let mut out = String::from("format-version: 1.2\n");
    for t in ontology.term_ids() {
        let term = ontology.term(t);
        out.push_str("\n[Term]\n");
        out.push_str(&format!("id: {}\n", term.accession));
        out.push_str(&format!("name: {}\n", term.name));
        out.push_str(&format!("namespace: {}\n", term.namespace.obo_name()));
        for &(p, rel) in ontology.parents(t) {
            let pacc = &ontology.term(p).accession;
            match rel {
                Relation::IsA => out.push_str(&format!("is_a: {pacc}\n")),
                Relation::PartOf => out.push_str(&format!("relationship: part_of {pacc}\n")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::TermId;

    const SAMPLE: &str = "\
format-version: 1.2
! a comment line

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0009987
name: cellular process
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0016043
name: cellular component organization
namespace: biological_process
is_a: GO:0009987
relationship: part_of GO:0008150

[Term]
id: GO:9999999
name: gone
namespace: biological_process
is_obsolete: true

[Typedef]
id: part_of
name: part of
";

    #[test]
    fn parses_terms_edges_and_skips_obsolete() {
        let o = parse_obo(SAMPLE).unwrap();
        assert_eq!(o.term_count(), 3);
        let org = o.by_accession("GO:0016043").unwrap();
        assert_eq!(o.parents(org).len(), 2);
        assert!(o.by_accession("GO:9999999").is_none());
    }

    #[test]
    fn trailing_comments_stripped() {
        let o = parse_obo(SAMPLE).unwrap();
        let cp = o.by_accession("GO:0009987").unwrap();
        assert_eq!(o.parents(cp), &[(TermId(0), Relation::IsA)]);
    }

    #[test]
    fn missing_namespace_is_error() {
        // No namespace field at all: blame the stanza header.
        let bad = "! preamble\n[Term]\nid: GO:1\nname: x\n";
        assert_eq!(
            parse_obo(bad).unwrap_err(),
            OboError::BadNamespace {
                id: "GO:1".into(),
                line: 2
            }
        );
    }

    #[test]
    fn unknown_namespace_blames_the_field_line() {
        let bad = "[Term]\nid: GO:1\nname: x\nnamespace: bogus_process\n";
        let err = parse_obo(bad).unwrap_err();
        assert_eq!(
            err,
            OboError::BadNamespace {
                id: "GO:1".into(),
                line: 4
            }
        );
        assert!(err.to_string().contains("line 4"));
    }

    #[test]
    fn missing_id_is_error() {
        let bad = "[Term]\nname: x\nnamespace: biological_process\n";
        assert_eq!(
            parse_obo(bad).unwrap_err(),
            OboError::MissingId {
                stanza_no: 1,
                line: 1
            }
        );
    }

    #[test]
    fn unknown_parent_is_error() {
        let bad = "[Term]\nid: GO:1\nname: x\nnamespace: biological_process\nis_a: GO:2\n";
        let err = parse_obo(bad).unwrap_err();
        assert!(matches!(
            err,
            OboError::Ontology {
                line: 5,
                source: OntologyError::UnknownTerm(_)
            }
        ));
        assert!(err.to_string().starts_with("line 5:"));
    }

    #[test]
    fn cycle_blames_a_declaration_line() {
        let bad = "\
[Term]
id: GO:1
name: a
namespace: biological_process
is_a: GO:2

[Term]
id: GO:2
name: b
namespace: biological_process
is_a: GO:1
";
        let err = parse_obo(bad).unwrap_err();
        match err {
            OboError::Ontology {
                line,
                source: OntologyError::Cycle(_),
            } => assert!(line == 1 || line == 7, "blames a stanza header: {line}"),
            other => panic!("expected a cycle error, got {other:?}"),
        }
    }

    #[test]
    fn write_parse_roundtrip() {
        let o = parse_obo(SAMPLE).unwrap();
        let text = write_obo(&o);
        let o2 = parse_obo(&text).unwrap();
        assert_eq!(o2.term_count(), o.term_count());
        for t in o.term_ids() {
            let acc = &o.term(t).accession;
            let t2 = o2.by_accession(acc).unwrap();
            assert_eq!(o2.term(t2).name, o.term(t).name);
            assert_eq!(o2.parents(t2).len(), o.parents(t).len());
        }
    }
}
