//! The GO directed acyclic graph.
//!
//! An [`Ontology`] stores terms and their generalization edges (is-a and
//! part-of, both treated as "more general than" by every algorithm, per
//! the paper). Construction goes through [`OntologyBuilder`], which
//! validates acyclicity; ancestor sets are precomputed so that the hot
//! queries of the labeling pipeline — `is_ancestor`, ancestor
//! enumeration, lowest common parents — are cheap.

use crate::term::{Namespace, Relation, Term, TermId};
use std::collections::HashMap;

/// A validated GO DAG.
#[derive(Clone, Debug)]
pub struct Ontology {
    terms: Vec<Term>,
    accession_index: HashMap<String, TermId>,
    /// parents[t] = (parent, relation), sorted by parent id.
    parents: Vec<Vec<(TermId, Relation)>>,
    /// children[t] = (child, relation), sorted by child id.
    children: Vec<Vec<(TermId, Relation)>>,
    /// Strict ancestors of each term (excluding the term), sorted.
    ancestors: Vec<Box<[TermId]>>,
    /// Topological order: every parent appears before its children.
    topo_order: Vec<TermId>,
    /// Root terms (no parents) per namespace.
    roots: Vec<TermId>,
}

/// Errors detected while building an ontology.
#[derive(Debug, PartialEq, Eq)]
pub enum OntologyError {
    /// Two terms share an accession string.
    DuplicateAccession(String),
    /// An edge references an unknown accession.
    UnknownTerm(String),
    /// The is-a / part-of edges contain a cycle through this term.
    Cycle(String),
    /// Parent and child live in different namespaces.
    CrossNamespaceEdge { child: String, parent: String },
}

impl std::fmt::Display for OntologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OntologyError::DuplicateAccession(a) => write!(f, "duplicate accession {a}"),
            OntologyError::UnknownTerm(a) => write!(f, "edge references unknown term {a}"),
            OntologyError::Cycle(a) => write!(f, "cycle through term {a}"),
            OntologyError::CrossNamespaceEdge { child, parent } => {
                write!(f, "edge {child} -> {parent} crosses namespaces")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

impl Ontology {
    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over all term ids.
    pub fn term_ids(&self) -> impl Iterator<Item = TermId> + '_ {
        (0..self.terms.len() as u32).map(TermId)
    }

    /// The term record for `t`.
    pub fn term(&self, t: TermId) -> &Term {
        &self.terms[t.index()]
    }

    /// Look up a term by accession.
    pub fn by_accession(&self, accession: &str) -> Option<TermId> {
        self.accession_index.get(accession).copied()
    }

    /// Direct parents of `t` with their relation kinds.
    pub fn parents(&self, t: TermId) -> &[(TermId, Relation)] {
        &self.parents[t.index()]
    }

    /// Direct children of `t` with their relation kinds.
    pub fn children(&self, t: TermId) -> &[(TermId, Relation)] {
        &self.children[t.index()]
    }

    /// Strict ancestors of `t` (excluding `t`), sorted by id.
    pub fn ancestors(&self, t: TermId) -> &[TermId] {
        &self.ancestors[t.index()]
    }

    /// Whether `a` is a strict ancestor of `b`.
    pub fn is_ancestor(&self, a: TermId, b: TermId) -> bool {
        self.ancestors[b.index()].binary_search(&a).is_ok()
    }

    /// Whether `a` equals `b` or is an ancestor of `b` — the paper's
    /// "same or more general than" test used for labeling conformance.
    pub fn is_same_or_ancestor(&self, a: TermId, b: TermId) -> bool {
        a == b || self.is_ancestor(a, b)
    }

    /// All common ancestors-or-self of `a` and `b`, sorted by id.
    /// Empty when the terms live in unrelated namespaces.
    pub fn common_ancestors(&self, a: TermId, b: TermId) -> Vec<TermId> {
        let mut set_a: Vec<TermId> = self.ancestors(a).to_vec();
        set_a.push(a);
        set_a.sort_unstable();
        let mut set_b: Vec<TermId> = self.ancestors(b).to_vec();
        set_b.push(b);
        set_b.sort_unstable();
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < set_a.len() && j < set_b.len() {
            match set_a[i].cmp(&set_b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(set_a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Topological order (parents before children).
    pub fn topological_order(&self) -> &[TermId] {
        &self.topo_order
    }

    /// Terms with no parents, one or more per namespace.
    pub fn roots(&self) -> &[TermId] {
        &self.roots
    }

    /// The namespace of term `t`.
    pub fn namespace(&self, t: TermId) -> Namespace {
        self.terms[t.index()].namespace
    }

    /// Term ids belonging to `ns`.
    pub fn terms_in_namespace(&self, ns: Namespace) -> Vec<TermId> {
        self.term_ids().filter(|&t| self.namespace(t) == ns).collect()
    }

    /// Descendants-or-self of `t` (computed on demand; used by reporting,
    /// not by the hot paths, which run over the topological order).
    pub fn descendants_or_self(&self, t: TermId) -> Vec<TermId> {
        let mut seen = vec![false; self.terms.len()];
        let mut stack = vec![t];
        let mut out = Vec::new();
        seen[t.index()] = true;
        while let Some(x) = stack.pop() {
            out.push(x);
            for &(c, _) in self.children(x) {
                if !seen[c.index()] {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Builder for [`Ontology`]: add terms, then edges, then `build()`.
#[derive(Default, Debug)]
pub struct OntologyBuilder {
    terms: Vec<Term>,
    accession_index: HashMap<String, TermId>,
    edges: Vec<(TermId, TermId, Relation)>, // (child, parent, rel)
    duplicate: Option<String>,
}

impl OntologyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a term; returns its id. Duplicate accessions are reported at
    /// `build()` time.
    pub fn add_term(
        &mut self,
        accession: impl Into<String>,
        name: impl Into<String>,
        namespace: Namespace,
    ) -> TermId {
        let accession = accession.into();
        let id = TermId(self.terms.len() as u32);
        if self
            .accession_index
            .insert(accession.clone(), id)
            .is_some()
            && self.duplicate.is_none()
        {
            self.duplicate = Some(accession.clone());
        }
        self.terms.push(Term {
            accession,
            name: name.into(),
            namespace,
        });
        id
    }

    /// Record that `child` is-a / part-of `parent`.
    pub fn add_edge(&mut self, child: TermId, parent: TermId, rel: Relation) {
        self.edges.push((child, parent, rel));
    }

    /// Convenience: add an edge by accession strings.
    pub fn add_edge_by_accession(
        &mut self,
        child: &str,
        parent: &str,
        rel: Relation,
    ) -> Result<(), OntologyError> {
        let c = self
            .accession_index
            .get(child)
            .copied()
            .ok_or_else(|| OntologyError::UnknownTerm(child.to_string()))?;
        let p = self
            .accession_index
            .get(parent)
            .copied()
            .ok_or_else(|| OntologyError::UnknownTerm(parent.to_string()))?;
        self.add_edge(c, p, rel);
        Ok(())
    }

    /// Validate and finalize the DAG.
    pub fn build(self) -> Result<Ontology, OntologyError> {
        if let Some(acc) = self.duplicate {
            return Err(OntologyError::DuplicateAccession(acc));
        }
        let n = self.terms.len();
        let mut parents: Vec<Vec<(TermId, Relation)>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<(TermId, Relation)>> = vec![Vec::new(); n];
        for &(c, p, rel) in &self.edges {
            if self.terms[c.index()].namespace != self.terms[p.index()].namespace {
                return Err(OntologyError::CrossNamespaceEdge {
                    child: self.terms[c.index()].accession.clone(),
                    parent: self.terms[p.index()].accession.clone(),
                });
            }
            parents[c.index()].push((p, rel));
            children[p.index()].push((c, rel));
        }
        for list in parents.iter_mut().chain(children.iter_mut()) {
            list.sort_unstable_by_key(|&(t, _)| t);
            list.dedup_by_key(|&mut (t, _)| t);
        }

        // Kahn's algorithm for topological order + cycle detection.
        let mut in_deg: Vec<usize> = parents.iter().map(|p| p.len()).collect();
        let mut queue: Vec<TermId> = (0..n as u32)
            .map(TermId)
            .filter(|t| in_deg[t.index()] == 0)
            .collect();
        let roots = queue.clone();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for &(c, _) in &children[t.index()] {
                in_deg[c.index()] -= 1;
                if in_deg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            let stuck = (0..n).find(|&i| in_deg[i] > 0).expect("topo sort stalled, so some vertex kept positive in-degree");
            return Err(OntologyError::Cycle(self.terms[stuck].accession.clone()));
        }

        // Ancestor sets in topological order: anc(t) = ∪ parents ∪ anc(parents).
        let mut ancestors: Vec<Vec<TermId>> = vec![Vec::new(); n];
        for &t in &topo {
            let mut anc: Vec<TermId> = Vec::new();
            for &(p, _) in &parents[t.index()] {
                anc.push(p);
                anc.extend_from_slice(&ancestors[p.index()]);
            }
            anc.sort_unstable();
            anc.dedup();
            ancestors[t.index()] = anc;
        }

        Ok(Ontology {
            terms: self.terms,
            accession_index: self.accession_index,
            parents,
            children,
            ancestors: ancestors.into_iter().map(Vec::into_boxed_slice).collect(),
            topo_order: topo,
            roots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Ontology {
        // root -> a, b; a -> leaf; b -> leaf.
        let mut b = OntologyBuilder::new();
        let root = b.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let ta = b.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let tb = b.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let leaf = b.add_term("GO:3", "leaf", Namespace::BiologicalProcess);
        b.add_edge(ta, root, Relation::IsA);
        b.add_edge(tb, root, Relation::IsA);
        b.add_edge(leaf, ta, Relation::IsA);
        b.add_edge(leaf, tb, Relation::PartOf);
        b.build().unwrap()
    }

    #[test]
    fn ancestors_of_diamond_leaf() {
        let o = diamond();
        let leaf = o.by_accession("GO:3").unwrap();
        assert_eq!(
            o.ancestors(leaf),
            &[TermId(0), TermId(1), TermId(2)],
            "leaf's ancestors are root, a, b"
        );
        assert!(o.is_ancestor(TermId(0), leaf));
        assert!(!o.is_ancestor(leaf, TermId(0)));
        assert!(o.is_same_or_ancestor(leaf, leaf));
    }

    #[test]
    fn common_ancestors_include_self_when_related() {
        let o = diamond();
        let (ta, leaf) = (TermId(1), TermId(3));
        assert_eq!(o.common_ancestors(ta, leaf), vec![TermId(0), TermId(1)]);
        // Unrelated siblings share only the root.
        assert_eq!(o.common_ancestors(TermId(1), TermId(2)), vec![TermId(0)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let o = diamond();
        let pos: Vec<usize> = (0..4)
            .map(|i| {
                o.topological_order()
                    .iter()
                    .position(|&t| t == TermId(i))
                    .unwrap()
            })
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn roots_detected() {
        let o = diamond();
        assert_eq!(o.roots(), &[TermId(0)]);
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = OntologyBuilder::new();
        let x = b.add_term("GO:0", "x", Namespace::MolecularFunction);
        let y = b.add_term("GO:1", "y", Namespace::MolecularFunction);
        b.add_edge(x, y, Relation::IsA);
        b.add_edge(y, x, Relation::IsA);
        assert_eq!(b.build().unwrap_err(), OntologyError::Cycle("GO:0".into()));
    }

    #[test]
    fn duplicate_accession_rejected() {
        let mut b = OntologyBuilder::new();
        b.add_term("GO:0", "x", Namespace::MolecularFunction);
        b.add_term("GO:0", "y", Namespace::MolecularFunction);
        assert_eq!(
            b.build().unwrap_err(),
            OntologyError::DuplicateAccession("GO:0".into())
        );
    }

    #[test]
    fn cross_namespace_edge_rejected() {
        let mut b = OntologyBuilder::new();
        let x = b.add_term("GO:0", "x", Namespace::MolecularFunction);
        let y = b.add_term("GO:1", "y", Namespace::CellularComponent);
        b.add_edge(x, y, Relation::IsA);
        assert!(matches!(
            b.build().unwrap_err(),
            OntologyError::CrossNamespaceEdge { .. }
        ));
    }

    #[test]
    fn descendants_or_self_closure() {
        let o = diamond();
        assert_eq!(
            o.descendants_or_self(TermId(0)),
            vec![TermId(0), TermId(1), TermId(2), TermId(3)]
        );
        assert_eq!(o.descendants_or_self(TermId(3)), vec![TermId(3)]);
        assert_eq!(o.descendants_or_self(TermId(1)), vec![TermId(1), TermId(3)]);
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut b = OntologyBuilder::new();
        let x = b.add_term("GO:0", "x", Namespace::MolecularFunction);
        let y = b.add_term("GO:1", "y", Namespace::MolecularFunction);
        b.add_edge(y, x, Relation::IsA);
        b.add_edge(y, x, Relation::PartOf);
        let o = b.build().unwrap();
        assert_eq!(o.parents(y).len(), 1);
        assert_eq!(o.children(x).len(), 1);
    }
}
