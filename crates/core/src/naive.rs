//! The naive labeling baseline sketched in Section 3 of the paper.
//!
//! "Pick an occurrence at random and use its labels as a possible
//! labeling scheme. [...] If the number of occurrences [conforming] is
//! less than σ, pick a combination of vertices at random and generalize
//! their labels one level up the function hierarchy. [...] The process
//! is repeated till all occurrences have participated in at least one
//! labeling scheme. Clearly, this approach is not scalable."
//!
//! Implemented faithfully (with an iteration budget so tests terminate)
//! as the comparison point for the labeling-scalability ablation.

use crate::clustering::LabelContext;
use crate::labeling::{initial_scheme, vocabulary_filter, LabelingScheme, VertexLabel};
use go_ontology::ProteinId;
use motif_finder::Occurrence;
use rand::seq::SliceRandom;
use rand::Rng;

/// Budgeted naive labeler. Returns the discovered schemes and the number
/// of conformance evaluations spent (the scalability metric).
pub struct NaiveOutcome {
    /// Vocabulary-filtered schemes with support ≥ σ.
    pub schemes: Vec<LabelingScheme>,
    /// Total conformance checks performed.
    pub conformance_checks: usize,
}

/// Run the naive random-generalization labeler.
pub fn naive_label<R: Rng>(
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    sigma: usize,
    max_rounds: usize,
    rng: &mut R,
) -> NaiveOutcome {
    let n = occurrences.len();
    let mut covered = vec![false; n];
    let mut schemes: Vec<LabelingScheme> = Vec::new();
    let mut checks = 0usize;

    for _ in 0..max_rounds {
        // Pick a random uncovered occurrence as the seed.
        let uncovered: Vec<usize> = (0..n).filter(|&i| !covered[i]).collect();
        let Some(&seed_idx) = uncovered.choose(rng) else {
            break;
        };
        let mut scheme = initial_scheme(&occurrences[seed_idx], &|p: ProteinId| {
            ctx.terms_by_protein[p.index()].clone()
        });

        // Generalize until the scheme conforms to ≥ σ occurrences or the
        // labels cannot rise further.
        loop {
            let conforming: Vec<usize> = (0..n)
                .filter(|&i| {
                    checks += 1;
                    scheme_conforms(&scheme, &occurrences[i], ctx)
                })
                .collect();
            if conforming.len() >= sigma {
                let filtered = vocabulary_filter(&scheme, ctx.informative);
                if !filtered.is_all_unknown() && !schemes.contains(&filtered) {
                    schemes.push(filtered);
                }
                for i in conforming {
                    covered[i] = true;
                }
                break;
            }
            // Generalize a random non-empty vertex label one level up.
            let candidates: Vec<usize> = scheme
                .labels
                .iter()
                .enumerate()
                .filter(|(_, l)| {
                    !l.is_unknown()
                        && l.terms
                            .iter()
                            .any(|&t| !ctx.ontology.parents(t).is_empty())
                })
                .map(|(i, _)| i)
                .collect();
            let Some(&v) = candidates.choose(rng) else {
                // Nothing left to generalize: give up on this seed.
                covered[seed_idx] = true;
                break;
            };
            let mut lifted: Vec<go_ontology::TermId> = Vec::new();
            for &t in &scheme.labels[v].terms {
                let parents = ctx.ontology.parents(t);
                if parents.is_empty() {
                    lifted.push(t);
                } else {
                    lifted.extend(parents.iter().map(|&(p, _)| p));
                }
            }
            scheme.labels[v] = VertexLabel::new(lifted);
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }

    NaiveOutcome {
        schemes,
        conformance_checks: checks,
    }
}

/// Conformance against the namespace-filtered annotation view (the same
/// view the labeling pipeline uses).
fn scheme_conforms(scheme: &LabelingScheme, occ: &Occurrence, ctx: &LabelContext<'_>) -> bool {
    scheme
        .labels
        .iter()
        .zip(&occ.vertices)
        .all(|(label, &v)| {
            if label.is_unknown() {
                return true;
            }
            let protein_terms = &ctx.terms_by_protein[v.index()];
            if protein_terms.is_empty() {
                return true;
            }
            label.terms.iter().all(|&t| {
                protein_terms
                    .iter()
                    .any(|&a| ctx.ontology.is_same_or_ancestor(t, a))
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::compute_frontier;
    use go_ontology::{
        Annotations, InformativeClasses, InformativeConfig, Namespace, Ontology, OntologyBuilder,
        Relation, TermId, TermSimilarity, TermWeights,
    };
    use ppi_graph::VertexId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct World {
        ontology: Ontology,
        annotations: Annotations,
    }

    fn world() -> World {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().unwrap();
        let mut annotations = Annotations::new(20, ontology.term_count());
        // Occurrences pair proteins (2i, 2i+1); alternate whole pairs
        // between f1 and f2 so no single-population scheme reaches σ=6
        // and generalization to F is required.
        for p in 0..16 {
            annotations.annotate(ProteinId(p), if (p / 2) % 2 == 0 { f1 } else { f2 });
        }
        for p in 16..20 {
            annotations.annotate(ProteinId(p), f);
        }
        World {
            ontology,
            annotations,
        }
    }

    fn with_ctx<T>(w: &World, run: impl FnOnce(&LabelContext<'_>) -> T) -> T {
        let weights = TermWeights::compute(&w.ontology, &w.annotations);
        let sim = TermSimilarity::new(&w.ontology, &weights);
        let informative = InformativeClasses::compute(
            &w.ontology,
            &w.annotations,
            InformativeConfig {
                min_direct: 4,
                ..Default::default()
            },
        );
        let frontier = compute_frontier(&w.ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..w.annotations.protein_count())
            .map(|p| w.annotations.terms_of(ProteinId(p as u32)).to_vec())
            .collect();
        let ctx = LabelContext {
            ontology: &w.ontology,
            sim: &sim,
            informative: &informative,
            terms_by_protein: &terms_by_protein,
            frontier: &frontier,
            dense: None,
        };
        run(&ctx)
    }

    fn edge_occs() -> Vec<Occurrence> {
        (0..8u32)
            .map(|i| Occurrence::new(vec![VertexId(2 * i), VertexId(2 * i + 1)]))
            .collect()
    }

    #[test]
    fn naive_finds_generalized_scheme() {
        let w = world();
        with_ctx(&w, |ctx| {
            let mut rng = SmallRng::seed_from_u64(3);
            let out = naive_label(&edge_occs(), ctx, 6, 50, &mut rng);
            assert!(
                !out.schemes.is_empty(),
                "expected at least one scheme, checks={}",
                out.conformance_checks
            );
            // Every occurrence pairs f1 with f2, so a ≥6-support scheme
            // must generalize at least one side to F.
            let has_f = out
                .schemes
                .iter()
                .any(|s| s.labels.iter().any(|l| l.terms.contains(&TermId(1))));
            assert!(has_f, "schemes: {:?}", out.schemes);
        });
    }

    #[test]
    fn naive_spends_many_conformance_checks() {
        let w = world();
        with_ctx(&w, |ctx| {
            let mut rng = SmallRng::seed_from_u64(3);
            let out = naive_label(&edge_occs(), ctx, 6, 50, &mut rng);
            // The scalability point: repeated full-pool conformance scans.
            assert!(out.conformance_checks >= 16);
        });
    }

    #[test]
    fn impossible_sigma_terminates() {
        let w = world();
        with_ctx(&w, |ctx| {
            let mut rng = SmallRng::seed_from_u64(9);
            let out = naive_label(&edge_occs(), ctx, 100, 20, &mut rng);
            assert!(out.schemes.is_empty());
        });
    }

    #[test]
    fn empty_pool_is_fine() {
        let w = world();
        with_ctx(&w, |ctx| {
            let mut rng = SmallRng::seed_from_u64(1);
            let out = naive_label(&[], ctx, 1, 10, &mut rng);
            assert!(out.schemes.is_empty());
            assert_eq!(out.conformance_checks, 0);
        });
    }
}
