//! Motif-level label reuse for the incremental pipeline.
//!
//! Labeling is per-motif pure: [`LaMoFinder::label_motifs`] produces,
//! for each motif independently, a function of `(pattern, occurrences,
//! labeler config)` — the SV planes, SO matrices and clustering run
//! over the stored occurrence list only, while `motif_frequency` and
//! `uniqueness` are pass-throughs copied into every emitted
//! [`LabeledMotif`] (see `LaMoFinder::label_one`). An edge delta
//! therefore invalidates a motif's labels **only when its stored
//! occurrence window changes**: a class that merely gained frequency
//! beyond the storage cap reuses its clustering verbatim with the
//! pass-through fields patched.
//!
//! [`LabelCache`] is that memo. It keys on the class's stable identity
//! (the `(size, canonical code)` pair the incremental census reports)
//! and proves cleanliness by *exact* occurrence-list equality — no
//! hashing, so a collision can never smuggle stale labels into the
//! byte-identity guarantee. Dirty motifs are relabeled in one batch
//! call (one SV-plane build, full thread fan-out) and the outputs are
//! spliced back in dictionary order.

use crate::labeled::LabeledMotif;
use crate::lamofinder::LaMoFinder;
use motif_finder::{Motif, Occurrence};
use std::collections::HashMap;

/// Stable class identity: `(size, exact canonical code)`, as computed
/// by the incremental census (`motif_finder::delta::ClassKey`).
pub type MotifKey = (u8, u64);

struct CacheEntry {
    /// The stored occurrence window the labels were computed from.
    occurrences: Vec<Occurrence>,
    /// The motif's labeled output (pass-through fields as labeled).
    labeled: Vec<LabeledMotif>,
}

/// What one [`LabelCache::label`] round did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelCacheStats {
    /// Motifs whose labels were reused (occurrence window unchanged).
    pub reused: usize,
    /// Motifs relabeled from scratch (new, or window changed).
    pub relabeled: usize,
}

/// A memo of per-motif labeling results, keyed by stable class
/// identity, valid across edge deltas for one fixed labeler
/// configuration.
#[derive(Default)]
pub struct LabelCache {
    entries: HashMap<MotifKey, CacheEntry>,
}

impl LabelCache {
    /// Fresh, empty cache.
    pub fn new() -> LabelCache {
        LabelCache::default()
    }

    /// Label `motifs` (the full dictionary, in order, with `keys[i]`
    /// the stable identity of `motifs[i]`), reusing cached clusterings
    /// for every motif whose stored occurrence list is unchanged.
    /// Returns exactly what `labeler.label_motifs(motifs)` returns.
    ///
    /// The cache is pruned to the current key set afterwards, so
    /// vanished classes do not accumulate. Callers must keep the
    /// labeler configuration fixed across rounds — the cache cannot
    /// observe it.
    pub fn label(
        &mut self,
        labeler: &LaMoFinder<'_>,
        keys: &[MotifKey],
        motifs: &[Motif],
    ) -> (Vec<LabeledMotif>, LabelCacheStats) {
        assert_eq!(keys.len(), motifs.len());
        let mut stats = LabelCacheStats::default();
        let dirty: Vec<usize> = (0..motifs.len())
            .filter(|&i| {
                self.entries
                    .get(&keys[i])
                    .map(|e| e.occurrences != motifs[i].occurrences)
                    .unwrap_or(true)
            })
            .collect();

        // One batch call over the dirty motifs: one SV-plane build,
        // full thread fan-out, and per-motif outputs identical to the
        // full-dictionary call (labeling is per-motif pure).
        let dirty_motifs: Vec<Motif> = dirty.iter().map(|&i| motifs[i].clone()).collect();
        let dirty_out = if dirty_motifs.is_empty() {
            // Labeling zero motifs returns zero labels; skipping the
            // call also skips the labeler's per-call kernel setup.
            Vec::new()
        } else {
            labeler.label_motifs(&dirty_motifs)
        };
        // Recover per-motif boundaries: outputs are concatenated in
        // motif order and every labeled motif carries its pattern;
        // patterns are canonical representatives, distinct per class.
        let mut per_motif: Vec<Vec<LabeledMotif>> = dirty.iter().map(|_| Vec::new()).collect();
        let mut di = 0usize;
        for lm in dirty_out {
            while dirty_motifs[di].pattern != lm.pattern {
                di += 1;
            }
            per_motif[di].push(lm);
        }
        for (slot, &i) in dirty.iter().enumerate() {
            stats.relabeled += 1;
            self.entries.insert(
                keys[i],
                CacheEntry {
                    occurrences: motifs[i].occurrences.clone(),
                    labeled: std::mem::take(&mut per_motif[slot]),
                },
            );
        }

        // Splice: every motif reads its (possibly just refreshed)
        // entry, with the pass-through fields patched to the *current*
        // frequency and uniqueness.
        let mut out = Vec::new();
        for (i, motif) in motifs.iter().enumerate() {
            let entry = &self.entries[&keys[i]];
            if !dirty.contains(&i) {
                stats.reused += 1;
            }
            out.extend(entry.labeled.iter().map(|lm| {
                let mut lm = lm.clone();
                lm.motif_frequency = motif.frequency;
                lm.uniqueness = motif.uniqueness;
                lm
            }));
        }
        self.entries.retain(|k, _| keys.contains(k));
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusteringConfig;
    use crate::lamofinder::LaMoFinderConfig;
    use go_ontology::{
        Annotations, InformativeConfig, Namespace, Ontology, OntologyBuilder, ProteinId, Relation,
    };
    use ppi_graph::{Graph, VertexId};

    /// Tiny world: root → F → {f1, f2}; 12 triangles annotated so that
    /// labeling emits schemes (mirrors the lamofinder unit tests).
    fn world() -> (Ontology, Annotations, Vec<Motif>) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().unwrap();
        let n_tri = 12u32;
        let mut ann = Annotations::new(3 * n_tri as usize + 4, ontology.term_count());
        let mut occurrences = Vec::new();
        for t in 0..n_tri {
            let b = t * 3;
            ann.annotate(ProteinId(b), f1);
            ann.annotate(ProteinId(b + 1), f1);
            ann.annotate(ProteinId(b + 2), f2);
            occurrences.push(Occurrence::new(vec![
                VertexId(b),
                VertexId(b + 1),
                VertexId(b + 2),
            ]));
        }
        // Padding proteins so F itself is informative (threshold 3).
        for p in 0..4 {
            ann.annotate(ProteinId(3 * n_tri + p), f);
        }
        let motif = Motif {
            pattern: Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]),
            occurrences,
            frequency: n_tri as usize,
            uniqueness: None,
        };
        (ontology, ann, vec![motif])
    }

    fn labeler<'a>(ontology: &'a Ontology, ann: &'a Annotations) -> LaMoFinder<'a> {
        LaMoFinder::new(
            ontology,
            ann,
            LaMoFinderConfig {
                informative: InformativeConfig {
                    min_direct: 3,
                    ..Default::default()
                },
                clustering: ClusteringConfig {
                    sigma: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn cache_output_matches_direct_labeling() {
        let (ontology, ann, motifs) = world();
        let lab = labeler(&ontology, &ann);
        let keys = vec![(3u8, 7u64)];
        let mut cache = LabelCache::new();
        let (out1, s1) = cache.label(&lab, &keys, &motifs);
        assert_eq!(s1.relabeled, 1);
        let direct = lab.label_motifs(&motifs);
        assert_eq!(out1.len(), direct.len());
        for (a, b) in out1.iter().zip(&direct) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.occurrences, b.occurrences);
            assert_eq!(a.motif_frequency, b.motif_frequency);
        }
        // Second round, unchanged: pure reuse, same bytes.
        let (out2, s2) = cache.label(&lab, &keys, &motifs);
        assert_eq!(s2.reused, 1);
        assert_eq!(s2.relabeled, 0);
        assert_eq!(out2.len(), out1.len());
        for (a, b) in out2.iter().zip(&out1) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.occurrences, b.occurrences);
        }
    }

    #[test]
    fn frequency_change_reuses_but_patches_pass_throughs() {
        let (ontology, ann, mut motifs) = world();
        let lab = labeler(&ontology, &ann);
        let keys = vec![(3u8, 7u64)];
        let mut cache = LabelCache::new();
        cache.label(&lab, &keys, &motifs);
        // Frequency grows beyond the storage cap: window unchanged.
        motifs[0].frequency = 99;
        motifs[0].uniqueness = Some(0.5);
        let (out, stats) = cache.label(&lab, &keys, &motifs);
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.relabeled, 0);
        assert!(out.iter().all(|lm| lm.motif_frequency == 99));
        assert!(out.iter().all(|lm| lm.uniqueness == Some(0.5)));
        // And it still matches direct labeling of the patched motif.
        let direct = lab.label_motifs(&motifs);
        assert_eq!(out.len(), direct.len());
        for (a, b) in out.iter().zip(&direct) {
            assert_eq!(a.motif_frequency, b.motif_frequency);
            assert_eq!(a.uniqueness, b.uniqueness);
            assert_eq!(a.scheme, b.scheme);
        }
    }

    #[test]
    fn window_change_relabels_and_prunes_vanished_keys() {
        let (ontology, ann, mut motifs) = world();
        let lab = labeler(&ontology, &ann);
        let mut cache = LabelCache::new();
        cache.label(&lab, &[(3, 7)], &motifs);
        // Shrink the stored window: the entry must be refused.
        motifs[0].occurrences.pop();
        let (out, stats) = cache.label(&lab, &[(3, 7)], &motifs);
        assert_eq!(stats.relabeled, 1);
        let direct = lab.label_motifs(&motifs);
        assert_eq!(out.len(), direct.len());
        // A round over a different key set prunes the old entry.
        let empty: Vec<Motif> = Vec::new();
        cache.label(&lab, &[], &empty);
        assert!(cache.entries.is_empty());
    }
}
