//! Maximum-weight perfect assignment (Hungarian algorithm).
//!
//! Equation 3 of the paper maximizes, for every pair of corresponding
//! symmetric-vertex sets, the sum of vertex similarities over all
//! pairings of the two sets. Symmetric sets can be as large as the motif
//! itself (star leaves, clique members), so brute-force permutation
//! enumeration is hopeless; the Jonker–Volgenant style shortest
//! augmenting path formulation below is `O(n³)`.

/// Solve the maximum-weight perfect assignment for a square weight
/// matrix: returns `(assignment, total)` where `assignment[row] = col`.
///
/// Weights may be any finite `f64` (similarities in `[0,1]` in our use).
///
/// # Panics
///
/// Panics if `weights` is not square or contains non-finite values.
pub fn max_assignment(weights: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = weights.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in weights {
        assert_eq!(row.len(), n, "weight matrix must be square");
        assert!(
            row.iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
    }
    // Minimize cost = -weight with the classic 1-indexed potentials
    // formulation (shortest augmenting paths).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; n + 1]; // col potentials
    let mut p = vec![0usize; n + 1]; // p[col] = row assigned to col (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cost = -weights[i0 - 1][j - 1];
                let cur = cost - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += weights[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n = weights.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let s: f64 = p.iter().enumerate().map(|(i, &j)| weights[i][j]).sum();
            if s > best {
                best = s;
            }
        });
        best
    }

    fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut dyn FnMut(&[usize])) {
        if k == perm.len() {
            visit(perm);
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            permute(perm, k + 1, visit);
            perm.swap(k, i);
        }
    }

    #[test]
    fn empty_matrix() {
        let (a, t) = max_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn singleton() {
        let (a, t) = max_assignment(&[vec![0.7]]);
        assert_eq!(a, vec![0]);
        assert!((t - 0.7).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_prefers_cross() {
        // Diagonal sum 0.2; anti-diagonal 1.8.
        let w = vec![vec![0.1, 0.9], vec![0.9, 0.1]];
        let (a, t) = max_assignment(&w);
        assert_eq!(a, vec![1, 0]);
        assert!((t - 1.8).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for n in 1..=6 {
            for _ in 0..20 {
                let w: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
                    .collect();
                let (a, t) = max_assignment(&w);
                // Assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                // Total matches the assignment and the brute-force optimum.
                let direct: f64 = a.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
                assert!((t - direct).abs() < 1e-9);
                assert!((t - brute_force(&w)).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn handles_negative_weights() {
        let w = vec![vec![-1.0, -2.0], vec![-3.0, -0.5]];
        let (_, t) = max_assignment(&w);
        assert!((t - brute_force(&w)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        max_assignment(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
