//! Maximum-weight perfect assignment (Hungarian algorithm).
//!
//! Equation 3 of the paper maximizes, for every pair of corresponding
//! symmetric-vertex sets, the sum of vertex similarities over all
//! pairings of the two sets. Symmetric sets can be as large as the motif
//! itself (star leaves, clique members), so brute-force permutation
//! enumeration is hopeless; the Jonker–Volgenant style shortest
//! augmenting path formulation below is `O(n³)`.

/// Reusable scratch for [`max_assignment_flat`]: the Hungarian solver's
/// potentials, shortest-path state and the flattened fallback buffer.
/// One scratch per worker kills the per-orbit allocations the old
/// `Vec<Vec<f64>>` API paid on every occurrence pair.
#[derive(Default)]
pub struct AssignScratch {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    flat: Vec<f64>,
}

impl AssignScratch {
    /// Empty scratch; buffers grow to the largest `n` seen and stay.
    pub fn new() -> Self {
        AssignScratch::default()
    }
}

/// Solve the maximum-weight perfect assignment for a square weight
/// matrix: returns `(assignment, total)` where `assignment[row] = col`.
///
/// Weights may be any finite `f64` (similarities in `[0,1]` in our use).
/// This is the allocating reference entry point; hot paths use
/// [`max_assignment_flat`] with caller-owned scratch instead.
///
/// # Panics
///
/// Panics if `weights` is not square or contains non-finite values.
pub fn max_assignment(weights: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = weights.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut scratch = AssignScratch::new();
    scratch.flat.clear();
    for row in weights {
        assert_eq!(row.len(), n, "weight matrix must be square");
        scratch.flat.extend_from_slice(row);
    }
    let flat = std::mem::take(&mut scratch.flat);
    let mut assignment = Vec::new();
    let total = hungarian_flat(&flat, n, n, &mut scratch, &mut assignment);
    (assignment, total)
}

/// Flat row-major variant of [`max_assignment`] with caller-owned
/// scratch: cell `(i, j)` lives at `weights[i * stride + j]`
/// (`stride ≥ n`), `assignment` is resized to `n` with
/// `assignment[row] = col`, and the total weight is returned.
///
/// `n == 2` short-circuits to a closed form whose chosen pairing and
/// summed total are bitwise identical to the general solver's (the tie
/// rule below is the general algorithm's, regression-tested against
/// it); every other size runs the same shortest-augmenting-path code as
/// [`max_assignment`].
///
/// # Panics
///
/// Panics if `stride < n`, `weights` has fewer than `n` strided rows,
/// or any read cell is non-finite.
pub fn max_assignment_flat(
    weights: &[f64],
    n: usize,
    stride: usize,
    scratch: &mut AssignScratch,
    assignment: &mut Vec<usize>,
) -> f64 {
    assert!(stride >= n, "stride must cover a full row");
    assert!(
        n == 0 || weights.len() >= (n - 1) * stride + n,
        "weight slice must hold n strided rows"
    );
    match n {
        0 => {
            assignment.clear();
            0.0
        }
        1 => {
            let w = weights[0];
            assert!(w.is_finite(), "weights must be finite");
            assignment.clear();
            assignment.push(0);
            // Identical fold to the general path's `0.0 + w`.
            0.0 + w
        }
        2 => {
            let (w00, w01) = (weights[0], weights[1]);
            let (w10, w11) = (weights[stride], weights[stride + 1]);
            assert!(
                w00.is_finite() && w01.is_finite() && w10.is_finite() && w11.is_finite(),
                "weights must be finite"
            );
            let keep = w00 + w11;
            let swap = w10 + w01;
            // The general solver's tie rule, derived from its shortest
            // augmenting paths: when `keep == swap` exactly, the first
            // phase has already matched row 0 to column 0 iff
            // `w00 >= w01`, and the second phase keeps that matching.
            let use_keep = if w00 >= w01 { keep >= swap } else { keep > swap };
            assignment.clear();
            if use_keep {
                assignment.extend_from_slice(&[0, 1]);
                // `0.0 + (a + b)` reproduces the general path's
                // fold-from-zero bitwise (it maps a −0.0 sum to +0.0).
                0.0 + keep
            } else {
                assignment.extend_from_slice(&[1, 0]);
                0.0 + swap
            }
        }
        _ => hungarian_flat(weights, n, stride, scratch, assignment),
    }
}

/// The Jonker–Volgenant style shortest-augmenting-path solver over a
/// flat row-major matrix — operation-for-operation the historical
/// `max_assignment` body, with the per-call allocations replaced by
/// `scratch` buffers.
///
/// # Panics
///
/// Panics when a read cell is non-finite (same contract as
/// [`max_assignment`]).
fn hungarian_flat(
    weights: &[f64],
    n: usize,
    stride: usize,
    scratch: &mut AssignScratch,
    assignment: &mut Vec<usize>,
) -> f64 {
    for i in 0..n {
        assert!(
            weights[i * stride..i * stride + n].iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
    }
    // Minimize cost = -weight with the classic 1-indexed potentials
    // formulation (shortest augmenting paths).
    let inf = f64::INFINITY;
    scratch.u.clear();
    scratch.u.resize(n + 1, 0.0); // row potentials
    scratch.v.clear();
    scratch.v.resize(n + 1, 0.0); // col potentials
    scratch.p.clear();
    scratch.p.resize(n + 1, 0); // p[col] = row assigned to col (0 = none)
    scratch.way.clear();
    scratch.way.resize(n + 1, 0);
    let (u, v, p, way) = (
        &mut scratch.u,
        &mut scratch.v,
        &mut scratch.p,
        &mut scratch.way,
    );

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        scratch.minv.clear();
        scratch.minv.resize(n + 1, inf);
        scratch.used.clear();
        scratch.used.resize(n + 1, false);
        let (minv, used) = (&mut scratch.minv, &mut scratch.used);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cost = -weights[(i0 - 1) * stride + (j - 1)];
                let cur = cost - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    assignment.clear();
    assignment.resize(n, usize::MAX);
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += weights[(p[j] - 1) * stride + (j - 1)];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n = weights.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let s: f64 = p.iter().enumerate().map(|(i, &j)| weights[i][j]).sum();
            if s > best {
                best = s;
            }
        });
        best
    }

    fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut dyn FnMut(&[usize])) {
        if k == perm.len() {
            visit(perm);
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            permute(perm, k + 1, visit);
            perm.swap(k, i);
        }
    }

    #[test]
    fn empty_matrix() {
        let (a, t) = max_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn singleton() {
        let (a, t) = max_assignment(&[vec![0.7]]);
        assert_eq!(a, vec![0]);
        assert!((t - 0.7).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_prefers_cross() {
        // Diagonal sum 0.2; anti-diagonal 1.8.
        let w = vec![vec![0.1, 0.9], vec![0.9, 0.1]];
        let (a, t) = max_assignment(&w);
        assert_eq!(a, vec![1, 0]);
        assert!((t - 1.8).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for n in 1..=6 {
            for _ in 0..20 {
                let w: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
                    .collect();
                let (a, t) = max_assignment(&w);
                // Assignment is a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j]);
                    seen[j] = true;
                }
                // Total matches the assignment and the brute-force optimum.
                let direct: f64 = a.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
                assert!((t - direct).abs() < 1e-9);
                assert!((t - brute_force(&w)).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn handles_negative_weights() {
        let w = vec![vec![-1.0, -2.0], vec![-3.0, -0.5]];
        let (_, t) = max_assignment(&w);
        assert!((t - brute_force(&w)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_ragged_matrix() {
        max_assignment(&[vec![1.0, 2.0], vec![3.0]]);
    }

    /// Exhaustive 2×2 grid over a small value set: the closed form must
    /// reproduce the general solver's pairing *and* summed total
    /// bitwise, including every exact `keep == swap` tie.
    #[test]
    fn closed_form_two_by_two_matches_reference_on_ties() {
        let vals = [0.0, 0.25, 0.5, 0.75, 1.0];
        let mut scratch = AssignScratch::new();
        let mut assign = Vec::new();
        let mut ties = 0;
        for w00 in vals {
            for w01 in vals {
                for w10 in vals {
                    for w11 in vals {
                        let nested = vec![vec![w00, w01], vec![w10, w11]];
                        let (ref_a, ref_t) = max_assignment(&nested);
                        let flat = [w00, w01, w10, w11];
                        let t = max_assignment_flat(&flat, 2, 2, &mut scratch, &mut assign);
                        assert_eq!(assign, ref_a, "pairing for {flat:?}");
                        assert_eq!(t.to_bits(), ref_t.to_bits(), "total for {flat:?}");
                        if w00 + w11 == w10 + w01 {
                            ties += 1;
                        }
                    }
                }
            }
        }
        assert!(ties > 50, "the grid must actually exercise ties ({ties})");
    }

    /// Random matrices (including a padded stride) through the flat
    /// entry point match the nested reference bitwise at every size.
    #[test]
    fn flat_variant_matches_nested_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        let mut scratch = AssignScratch::new();
        let mut assign = Vec::new();
        for n in 1..=6 {
            for pad in [0usize, 3] {
                let stride = n + pad;
                for _ in 0..20 {
                    let nested: Vec<Vec<f64>> = (0..n)
                        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
                        .collect();
                    let mut flat = vec![f64::NAN; n * stride];
                    for (i, row) in nested.iter().enumerate() {
                        flat[i * stride..i * stride + n].copy_from_slice(row);
                    }
                    let (ref_a, ref_t) = max_assignment(&nested);
                    let t = max_assignment_flat(&flat, n, stride, &mut scratch, &mut assign);
                    assert_eq!(assign, ref_a, "n={n} stride={stride}");
                    assert_eq!(t.to_bits(), ref_t.to_bits(), "n={n} stride={stride}");
                }
            }
        }
    }

    #[test]
    fn flat_variant_handles_trivial_sizes() {
        let mut scratch = AssignScratch::new();
        let mut assign = vec![7usize; 3];
        assert_eq!(max_assignment_flat(&[], 0, 0, &mut scratch, &mut assign), 0.0);
        assert!(assign.is_empty());
        assert_eq!(
            max_assignment_flat(&[0.4], 1, 1, &mut scratch, &mut assign),
            0.4
        );
        assert_eq!(assign, vec![0]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn flat_variant_rejects_short_stride() {
        let mut scratch = AssignScratch::new();
        let mut assign = Vec::new();
        max_assignment_flat(&[1.0, 2.0, 3.0, 4.0], 2, 1, &mut scratch, &mut assign);
    }
}
