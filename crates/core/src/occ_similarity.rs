//! Occurrence similarity `SO` (Equation 3 of the paper).
//!
//! The similarity of two occurrences of the same motif is the sum, over
//! the motif's symmetric-vertex sets (automorphism orbits), of the best
//! pairing of corresponding vertices by `SV`, normalized by the motif
//! size:
//!
//! ```text
//! SO(oi, oj) = (1/|V|) Σ_orbits max_{pairings} Σ SV(vα, vβ)    (Eq. 3)
//! ```
//!
//! The per-orbit maximization is a maximum-weight assignment, solved
//! exactly in `O(t³)` per orbit (the paper enumerates pairings, which is
//! `O(t!)` — see DESIGN.md §5 on the PIGALE substitution).

use crate::assignment::max_assignment;
use go_ontology::{ShardedCache, TermId, TermSimilarity};
use motif_finder::Occurrence;
use ppi_graph::{automorphism_orbits, Graph};

/// Precomputed context for scoring occurrence pairs of one motif.
///
/// `Sync`: the SO matrix rows are computed by parallel workers sharing
/// one scorer, so the SV memo is a [`ShardedCache`] rather than a
/// `RefCell`.
pub struct OccurrenceScorer<'a> {
    sim: &'a TermSimilarity<'a>,
    /// Namespace-filtered annotation lists, indexed by network vertex id.
    terms_by_protein: &'a [Vec<TermId>],
    /// Pattern automorphism orbits as position lists (singletons kept).
    orbits: Vec<Vec<usize>>,
    size: usize,
    /// Protein-pair SV memo — occurrences of one motif overlap heavily
    /// (clique subsets, bipartite subsets), so the same protein pairs
    /// recur across thousands of occurrence pairs.
    sv_cache: ShardedCache<(u32, u32), f64>,
}

impl<'a> OccurrenceScorer<'a> {
    /// Build a scorer for `pattern`, reading annotations from
    /// `terms_by_protein` (one entry per network vertex, already
    /// restricted to the namespace being labeled).
    pub fn new(
        pattern: &Graph,
        sim: &'a TermSimilarity<'a>,
        terms_by_protein: &'a [Vec<TermId>],
    ) -> Self {
        let orbits = automorphism_orbits(pattern)
            .into_iter()
            .map(|o| o.into_iter().map(|v| v.index()).collect())
            .collect();
        Self::from_orbits(orbits, pattern.vertex_count(), sim, terms_by_protein)
    }

    /// Build a scorer from explicit symmetric-vertex sets (position
    /// lists). Used for directed motifs, whose orbits are finer than
    /// their skeleton's.
    pub fn from_orbits(
        orbits: Vec<Vec<usize>>,
        size: usize,
        sim: &'a TermSimilarity<'a>,
        terms_by_protein: &'a [Vec<TermId>],
    ) -> Self {
        debug_assert_eq!(orbits.iter().map(Vec::len).sum::<usize>(), size);
        OccurrenceScorer {
            sim,
            terms_by_protein,
            orbits,
            size,
            sv_cache: ShardedCache::new(),
        }
    }

    /// The symmetric vertex sets used for pairing (positions).
    pub fn orbits(&self) -> &[Vec<usize>] {
        &self.orbits
    }

    /// Annotation terms of the protein at `occ` position `pos`.
    fn terms_at(&self, occ: &Occurrence, pos: usize) -> &[TermId] {
        &self.terms_by_protein[occ.vertices[pos].index()]
    }

    /// Vertex similarity `SV` between position `pa` of `a` and `pb` of
    /// `b`, memoized per protein pair.
    pub fn sv(&self, a: &Occurrence, pa: usize, b: &Occurrence, pb: usize) -> f64 {
        let (va, vb) = (a.vertices[pa].0, b.vertices[pb].0);
        let key = if va <= vb { (va, vb) } else { (vb, va) };
        self.sv_cache
            .get_or_insert_with(key, || self.sim.sv(self.terms_at(a, pa), self.terms_at(b, pb)))
    }

    /// Occurrence similarity `SO(a, b)` per Equation 3.
    pub fn so(&self, a: &Occurrence, b: &Occurrence) -> f64 {
        debug_assert_eq!(a.len(), self.size);
        debug_assert_eq!(b.len(), self.size);
        if self.size == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for orbit in &self.orbits {
            if orbit.len() == 1 {
                total += self.sv(a, orbit[0], b, orbit[0]);
            } else {
                let w: Vec<Vec<f64>> = orbit
                    .iter()
                    .map(|&x| orbit.iter().map(|&y| self.sv(a, x, b, y)).collect())
                    .collect();
                let (_, best) = max_assignment(&w);
                total += best;
            }
        }
        total / self.size as f64
    }

    /// Like [`OccurrenceScorer::so`], but also returns the chosen
    /// position pairing `pairing[pos_in_a] = pos_in_b` (identity outside
    /// symmetric sets).
    pub fn so_with_pairing(&self, a: &Occurrence, b: &Occurrence) -> (f64, Vec<usize>) {
        let mut pairing: Vec<usize> = (0..self.size).collect();
        if self.size == 0 {
            return (0.0, pairing);
        }
        let mut total = 0.0;
        for orbit in &self.orbits {
            if orbit.len() == 1 {
                total += self.sv(a, orbit[0], b, orbit[0]);
            } else {
                let w: Vec<Vec<f64>> = orbit
                    .iter()
                    .map(|&x| orbit.iter().map(|&y| self.sv(a, x, b, y)).collect())
                    .collect();
                let (assign, best) = max_assignment(&w);
                for (xi, &yi) in assign.iter().enumerate() {
                    pairing[orbit[xi]] = orbit[yi];
                }
                total += best;
            }
        }
        (total / self.size as f64, pairing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{
        Annotations, Namespace, Ontology, OntologyBuilder, ProteinId, Relation, TermWeights,
    };
    use ppi_graph::VertexId;

    /// Ontology: root -> a -> {x, y}; root -> b.
    fn ontology() -> Ontology {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let x = ob.add_term("GO:3", "x", Namespace::BiologicalProcess);
        let y = ob.add_term("GO:4", "y", Namespace::BiologicalProcess);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x, a, Relation::IsA);
        ob.add_edge(y, a, Relation::IsA);
        ob.build().unwrap()
    }

    fn weights(o: &Ontology) -> TermWeights {
        let mut ann = Annotations::new(10, o.term_count());
        let (x, y, b) = (TermId(3), TermId(4), TermId(2));
        for p in 0..3 {
            ann.annotate(ProteinId(p), x);
        }
        for p in 3..6 {
            ann.annotate(ProteinId(p), y);
        }
        for p in 6..10 {
            ann.annotate(ProteinId(p), b);
        }
        TermWeights::compute(o, &ann)
    }

    /// terms_by_protein for 6 network vertices:
    /// 0:{x} 1:{b} 2:{y} 3:{b} 4:{} 5:{x,b}
    fn protein_terms() -> Vec<Vec<TermId>> {
        vec![
            vec![TermId(3)],
            vec![TermId(2)],
            vec![TermId(4)],
            vec![TermId(2)],
            vec![],
            vec![TermId(3), TermId(2)],
        ]
    }

    #[test]
    fn identical_occurrences_score_one_when_fully_annotated() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        // Pattern: path3 (orbits {0,2},{1}).
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let occ = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!((scorer.so(&occ, &occ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_pairing_recovers_swapped_endpoints() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        // a = (x, b, y); b = (y, b, x): endpoints swapped. The orbit
        // pairing must map 0↔2 and score as if aligned.
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(2), VertexId(1), VertexId(0)]);
        let (so, pairing) = scorer.so_with_pairing(&oa, &ob);
        assert!((so - 1.0).abs() < 1e-12, "so = {so}");
        assert_eq!(pairing, vec![2, 1, 0]);
    }

    #[test]
    fn fixed_alignment_scores_lower_than_symmetric() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(2), VertexId(1), VertexId(0)]);
        // Identity alignment: SV(x,y) twice (siblings, < 1) + SV(b,b)=1.
        let fixed = (scorer.sv(&oa, 0, &ob, 0) + scorer.sv(&oa, 1, &ob, 1)
            + scorer.sv(&oa, 2, &ob, 2))
            / 3.0;
        assert!(fixed < scorer.so(&oa, &ob));
    }

    #[test]
    fn unannotated_positions_drag_score_down() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        // Vertex 4 is unannotated.
        let ob = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(4)]);
        let so = scorer.so(&oa, &ob);
        assert!(so < 1.0 && so > 0.0);
    }

    #[test]
    fn asymmetric_pattern_uses_identity_orbits() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        // Pattern: triangle with a tail (no symmetry between tail and
        // triangle vertices; orbits of the two non-attachment triangle
        // vertices are symmetric).
        let pattern = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        assert_eq!(scorer.orbits().len(), 3);
        let occ = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]);
        assert!((scorer.so(&occ, &occ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scorer_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<OccurrenceScorer<'_>>();
        assert_sync::<TermSimilarity<'_>>();
    }

    #[test]
    fn so_is_symmetric() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(5), VertexId(3), VertexId(2)]);
        assert!((scorer.so(&oa, &ob) - scorer.so(&ob, &oa)).abs() < 1e-12);
    }
}
