//! Occurrence similarity `SO` (Equation 3 of the paper).
//!
//! The similarity of two occurrences of the same motif is the sum, over
//! the motif's symmetric-vertex sets (automorphism orbits), of the best
//! pairing of corresponding vertices by `SV`, normalized by the motif
//! size:
//!
//! ```text
//! SO(oi, oj) = (1/|V|) Σ_orbits max_{pairings} Σ SV(vα, vβ)    (Eq. 3)
//! ```
//!
//! The per-orbit maximization is a maximum-weight assignment, solved
//! exactly in `O(t³)` per orbit (the paper enumerates pairings, which is
//! `O(t!)` — see DESIGN.md §5 on the PIGALE substitution).

use crate::assignment::{max_assignment_flat, AssignScratch};
use go_ontology::{DenseSimPlanes, KernelStats, ShardedCache, TermId, TermSimilarity};
use motif_finder::Occurrence;
use par_util::RunContext;
use ppi_graph::{automorphism_orbits, Graph};
use std::sync::atomic::{AtomicU64, Ordering};

/// Caller-owned scratch for [`OccurrenceScorer::so_scratch`] /
/// [`OccurrenceScorer::so_with_pairing_scratch`]: the flat per-orbit
/// weight buffer and the assignment solver's state. One scratch per
/// worker replaces the `Vec<Vec<f64>>` the old path allocated for every
/// orbit of every occurrence pair.
#[derive(Default)]
pub struct SoScratch {
    w: Vec<f64>,
    assign: Vec<usize>,
    hungarian: AssignScratch,
}

impl SoScratch {
    /// Empty scratch; buffers grow to the largest orbit seen and stay.
    pub fn new() -> Self {
        SoScratch::default()
    }
}

/// Per-motif dense SV plane: the distinct proteins touched by the
/// motif's occurrences get occurrence-local ids, and SV for every
/// protein pair is computed exactly once from the namespace ST plane —
/// the hot path then reads a flat triangle with no locks, no hashing
/// and no `(u32, u32)` keys.
struct SvPlane {
    /// Network vertex id → occurrence-local id (`u32::MAX` = the motif
    /// never touches this protein).
    local_of: Vec<u32>,
    /// Lower triangle incl. diagonal over local ids.
    tri: Vec<f64>,
    /// Distinct proteins covered.
    proteins: usize,
}

impl SvPlane {
    /// SV between network vertices `a` and `b`, if both are covered.
    #[inline]
    fn get(&self, a: u32, b: u32) -> Option<f64> {
        let la = self.local_of[a as usize];
        let lb = self.local_of[b as usize];
        if la == u32::MAX || lb == u32::MAX {
            return None;
        }
        let (i, j) = if la >= lb {
            (la as usize, lb as usize)
        } else {
            (lb as usize, la as usize)
        };
        Some(self.tri[i * (i + 1) / 2 + j])
    }
}

/// Precomputed context for scoring occurrence pairs of one motif.
///
/// `Sync`: the SO matrix rows are computed by parallel workers sharing
/// one scorer, so the SV memo is a [`ShardedCache`] rather than a
/// `RefCell`. With dense planes attached
/// ([`OccurrenceScorer::with_dense`] +
/// [`OccurrenceScorer::precompute_sv_plane`]) the hot path reads the
/// per-motif SV triangle instead and the memo only serves proteins the
/// plane does not cover.
pub struct OccurrenceScorer<'a> {
    sim: &'a TermSimilarity<'a>,
    /// Namespace-filtered annotation lists, indexed by network vertex id.
    terms_by_protein: &'a [Vec<TermId>],
    /// Pattern automorphism orbits as position lists (singletons kept).
    orbits: Vec<Vec<usize>>,
    size: usize,
    /// Protein-pair SV memo — occurrences of one motif overlap heavily
    /// (clique subsets, bipartite subsets), so the same protein pairs
    /// recur across thousands of occurrence pairs.
    sv_cache: ShardedCache<(u32, u32), f64>,
    /// Namespace-wide dense kernels (DESIGN.md §14), when enabled.
    dense: Option<&'a DenseSimPlanes>,
    /// Motif-local SV plane over the occurrence set.
    sv_plane: Option<SvPlane>,
    /// SV queries answered by the memoized oracle (all of them in a
    /// memoized run; plane misses in a dense run).
    oracle_calls: AtomicU64,
}

impl<'a> OccurrenceScorer<'a> {
    /// Build a scorer for `pattern`, reading annotations from
    /// `terms_by_protein` (one entry per network vertex, already
    /// restricted to the namespace being labeled).
    pub fn new(
        pattern: &Graph,
        sim: &'a TermSimilarity<'a>,
        terms_by_protein: &'a [Vec<TermId>],
    ) -> Self {
        let orbits = automorphism_orbits(pattern)
            .into_iter()
            .map(|o| o.into_iter().map(|v| v.index()).collect())
            .collect();
        Self::from_orbits(orbits, pattern.vertex_count(), sim, terms_by_protein)
    }

    /// Build a scorer from explicit symmetric-vertex sets (position
    /// lists). Used for directed motifs, whose orbits are finer than
    /// their skeleton's.
    pub fn from_orbits(
        orbits: Vec<Vec<usize>>,
        size: usize,
        sim: &'a TermSimilarity<'a>,
        terms_by_protein: &'a [Vec<TermId>],
    ) -> Self {
        debug_assert_eq!(orbits.iter().map(Vec::len).sum::<usize>(), size);
        OccurrenceScorer {
            sim,
            terms_by_protein,
            orbits,
            size,
            sv_cache: ShardedCache::new(),
            dense: None,
            sv_plane: None,
            oracle_calls: AtomicU64::new(0),
        }
    }

    /// Attach the namespace-wide dense kernels (builder style). Call
    /// [`OccurrenceScorer::precompute_sv_plane`] afterwards to build the
    /// motif-local SV plane; until then queries still go to the oracle.
    pub fn with_dense(mut self, planes: &'a DenseSimPlanes) -> Self {
        self.dense = Some(planes);
        self
    }

    /// Build the motif-local SV plane over the distinct proteins touched
    /// by `occurrences`, reading the dense ST plane (a no-op without
    /// [`OccurrenceScorer::with_dense`]). Each protein pair costs one
    /// work tick; when `run` trips mid-build the partial plane is
    /// discarded (the caller abandons the motif anyway) and queries
    /// would fall back to the oracle.
    ///
    /// Cell values are byte-identical to the memoized path: both sides
    /// canonicalize a pair to (min protein, max protein) before the SV
    /// product, so orientation can never change the FP factor order.
    // lamolint::allow(alloc-in-hot-loop): one-shot per-motif plane build —
    // tri is preallocated at exact triangular capacity and becomes the
    // SvPlane's owned storage, so a caller-owned scratch could not outlive it
    pub fn precompute_sv_plane(&mut self, occurrences: &[Occurrence], run: &RunContext) {
        let Some(planes) = self.dense else {
            return;
        };
        let mut touched = vec![false; self.terms_by_protein.len()];
        for occ in occurrences {
            for v in &occ.vertices {
                touched[v.index()] = true;
            }
        }
        let mut local_of = vec![u32::MAX; self.terms_by_protein.len()];
        let mut vertex_ids: Vec<u32> = Vec::new();
        for (p, &hit) in touched.iter().enumerate() {
            if hit {
                local_of[p] = vertex_ids.len() as u32;
                vertex_ids.push(p as u32);
            }
        }
        let m = vertex_ids.len();
        let mut tri = Vec::with_capacity(m * (m + 1) / 2);
        for i in 0..m {
            if run.should_stop() {
                return;
            }
            for j in 0..=i {
                // `vertex_ids` ascends, so (j, i) is already the
                // canonical (min, max) protein orientation.
                tri.push(planes.sv_proteins(vertex_ids[j] as usize, vertex_ids[i] as usize));
            }
            run.tick((i + 1) as u64);
        }
        planes.record_sv_plane(m, tri.len());
        self.sv_plane = Some(SvPlane {
            local_of,
            tri,
            proteins: m,
        });
    }

    /// The symmetric vertex sets used for pairing (positions).
    pub fn orbits(&self) -> &[Vec<usize>] {
        &self.orbits
    }

    /// Vertex similarity `SV` between position `pa` of `a` and `pb` of
    /// `b`: a flat plane read when the motif SV plane covers the pair,
    /// else memoized per protein pair via the oracle. Both paths
    /// canonicalize to (min protein, max protein) before computing, so
    /// the value cannot depend on argument orientation or on which
    /// worker computes it first.
    pub fn sv(&self, a: &Occurrence, pa: usize, b: &Occurrence, pb: usize) -> f64 {
        let (va, vb) = (a.vertices[pa].0, b.vertices[pb].0);
        let (lo, hi) = if va <= vb { (va, vb) } else { (vb, va) };
        if let Some(plane) = &self.sv_plane {
            if let Some(v) = plane.get(lo, hi) {
                return v;
            }
        }
        match self.dense {
            Some(planes) => planes.record_oracle_fallback(),
            None => {
                self.oracle_calls.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.sv_cache.get_or_insert_with((lo, hi), || {
            self.sim
                .sv(&self.terms_by_protein[lo as usize], &self.terms_by_protein[hi as usize])
        })
    }

    /// Best pairing weight of one orbit: `SV` for a singleton, the
    /// maximum-weight assignment over the flat `t × t` similarity block
    /// otherwise (closed form for `t == 2`).
    fn orbit_best(&self, a: &Occurrence, b: &Occurrence, orbit: &[usize], s: &mut SoScratch) -> f64 {
        if orbit.len() == 1 {
            return self.sv(a, orbit[0], b, orbit[0]);
        }
        let t = orbit.len();
        s.w.clear();
        for &x in orbit {
            for &y in orbit {
                s.w.push(self.sv(a, x, b, y));
            }
        }
        max_assignment_flat(&s.w, t, t, &mut s.hungarian, &mut s.assign)
    }

    /// Occurrence similarity `SO(a, b)` per Equation 3.
    pub fn so(&self, a: &Occurrence, b: &Occurrence) -> f64 {
        let mut scratch = SoScratch::new();
        self.so_scratch(a, b, &mut scratch)
    }

    /// [`OccurrenceScorer::so`] with caller-owned scratch — the form the
    /// SO-matrix workers use so no per-pair buffers are allocated.
    pub fn so_scratch(&self, a: &Occurrence, b: &Occurrence, scratch: &mut SoScratch) -> f64 {
        debug_assert_eq!(a.len(), self.size);
        debug_assert_eq!(b.len(), self.size);
        if self.size == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for orbit in &self.orbits {
            total += self.orbit_best(a, b, orbit, scratch);
        }
        total / self.size as f64
    }

    /// Like [`OccurrenceScorer::so`], but also returns the chosen
    /// position pairing `pairing[pos_in_a] = pos_in_b` (identity outside
    /// symmetric sets).
    pub fn so_with_pairing(&self, a: &Occurrence, b: &Occurrence) -> (f64, Vec<usize>) {
        let mut scratch = SoScratch::new();
        self.so_with_pairing_scratch(a, b, &mut scratch)
    }

    /// [`OccurrenceScorer::so_with_pairing`] with caller-owned scratch.
    pub fn so_with_pairing_scratch(
        &self,
        a: &Occurrence,
        b: &Occurrence,
        scratch: &mut SoScratch,
    ) -> (f64, Vec<usize>) {
        let mut pairing: Vec<usize> = (0..self.size).collect();
        if self.size == 0 {
            return (0.0, pairing);
        }
        let mut total = 0.0;
        for orbit in &self.orbits {
            let best = self.orbit_best(a, b, orbit, scratch);
            if orbit.len() > 1 {
                for (xi, &yi) in scratch.assign.iter().enumerate() {
                    pairing[orbit[xi]] = orbit[yi];
                }
            }
            total += best;
        }
        (total / self.size as f64, pairing)
    }

    /// Diagnostics for this scorer: its motif SV plane (if built) and
    /// the oracle-call counter. When dense kernels are attached the same
    /// numbers are also accumulated into the shared
    /// [`DenseSimPlanes::stats`].
    pub fn kernel_stats(&self) -> KernelStats {
        let mut stats = KernelStats {
            sv_oracle_calls: self.oracle_calls.load(Ordering::Relaxed),
            ..KernelStats::default()
        };
        if let Some(plane) = &self.sv_plane {
            stats.sv_planes = 1;
            stats.sv_plane_proteins = plane.proteins;
            stats.sv_plane_pairs = plane.tri.len();
            stats.sv_plane_bytes = plane.tri.len() * std::mem::size_of::<f64>();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{
        Annotations, Namespace, Ontology, OntologyBuilder, ProteinId, Relation, TermWeights,
    };
    use ppi_graph::VertexId;

    /// Ontology: root -> a -> {x, y}; root -> b.
    fn ontology() -> Ontology {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let x = ob.add_term("GO:3", "x", Namespace::BiologicalProcess);
        let y = ob.add_term("GO:4", "y", Namespace::BiologicalProcess);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x, a, Relation::IsA);
        ob.add_edge(y, a, Relation::IsA);
        ob.build().unwrap()
    }

    fn weights(o: &Ontology) -> TermWeights {
        let mut ann = Annotations::new(10, o.term_count());
        let (x, y, b) = (TermId(3), TermId(4), TermId(2));
        for p in 0..3 {
            ann.annotate(ProteinId(p), x);
        }
        for p in 3..6 {
            ann.annotate(ProteinId(p), y);
        }
        for p in 6..10 {
            ann.annotate(ProteinId(p), b);
        }
        TermWeights::compute(o, &ann)
    }

    /// terms_by_protein for 6 network vertices:
    /// 0:{x} 1:{b} 2:{y} 3:{b} 4:{} 5:{x,b}
    fn protein_terms() -> Vec<Vec<TermId>> {
        vec![
            vec![TermId(3)],
            vec![TermId(2)],
            vec![TermId(4)],
            vec![TermId(2)],
            vec![],
            vec![TermId(3), TermId(2)],
        ]
    }

    #[test]
    fn identical_occurrences_score_one_when_fully_annotated() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        // Pattern: path3 (orbits {0,2},{1}).
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let occ = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!((scorer.so(&occ, &occ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_pairing_recovers_swapped_endpoints() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        // a = (x, b, y); b = (y, b, x): endpoints swapped. The orbit
        // pairing must map 0↔2 and score as if aligned.
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(2), VertexId(1), VertexId(0)]);
        let (so, pairing) = scorer.so_with_pairing(&oa, &ob);
        assert!((so - 1.0).abs() < 1e-12, "so = {so}");
        assert_eq!(pairing, vec![2, 1, 0]);
    }

    #[test]
    fn fixed_alignment_scores_lower_than_symmetric() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(2), VertexId(1), VertexId(0)]);
        // Identity alignment: SV(x,y) twice (siblings, < 1) + SV(b,b)=1.
        let fixed = (scorer.sv(&oa, 0, &ob, 0) + scorer.sv(&oa, 1, &ob, 1)
            + scorer.sv(&oa, 2, &ob, 2))
            / 3.0;
        assert!(fixed < scorer.so(&oa, &ob));
    }

    #[test]
    fn unannotated_positions_drag_score_down() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        // Vertex 4 is unannotated.
        let ob = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(4)]);
        let so = scorer.so(&oa, &ob);
        assert!(so < 1.0 && so > 0.0);
    }

    #[test]
    fn asymmetric_pattern_uses_identity_orbits() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        // Pattern: triangle with a tail (no symmetry between tail and
        // triangle vertices; orbits of the two non-attachment triangle
        // vertices are symmetric).
        let pattern = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        assert_eq!(scorer.orbits().len(), 3);
        let occ = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(5)]);
        assert!((scorer.so(&occ, &occ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scorer_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<OccurrenceScorer<'_>>();
        assert_sync::<TermSimilarity<'_>>();
    }

    #[test]
    fn so_is_symmetric() {
        let o = ontology();
        let w = weights(&o);
        let sim = TermSimilarity::new(&o, &w);
        let terms = protein_terms();
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let scorer = OccurrenceScorer::new(&pattern, &sim, &terms);
        let oa = Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let ob = Occurrence::new(vec![VertexId(5), VertexId(3), VertexId(2)]);
        assert!((scorer.so(&oa, &ob) - scorer.so(&ob, &oa)).abs() < 1e-12);
    }
}
