//! k-medoids occurrence clustering — the non-overlapping baseline the
//! paper argues against in Section 3.2 / Figure 5.
//!
//! The paper observes that partitioning clusterers ("such as the k-means
//! clustering algorithm") force occurrences into non-overlapping
//! clusters and can miss valid labeling schemes that straddle cluster
//! boundaries. We implement the occurrence-space analogue (k-medoids,
//! since only pairwise `SO` similarities exist — there is no vector
//! space to average in) and expose it for the clustering ablation.

use crate::clustering::{
    permute_occurrence, permute_scheme, Aligner, ClusteringConfig, LabelContext, LabeledCluster,
};
use crate::labeling::{initial_scheme, merge_schemes, vocabulary_filter, LabelingScheme};
use crate::occ_similarity::OccurrenceScorer;
use go_ontology::ProteinId;
use motif_finder::Occurrence;
use ppi_graph::Graph;

/// Cluster `occurrences` into `k` groups by SO-similarity to medoids,
/// derive each group's least-general labeling scheme, and emit groups
/// with ≥ σ occurrences.
pub fn kmedoids_label(
    pattern: &Graph,
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
    k: usize,
    max_iters: usize,
) -> Vec<LabeledCluster> {
    let n = occurrences.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let scorer = OccurrenceScorer::new(pattern, ctx.sim, ctx.terms_by_protein);

    // Pairwise similarity matrix.
    let mut sim = vec![vec![1.0f64; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let s = scorer.so(&occurrences[i], &occurrences[j]);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }

    // Deterministic initialization: evenly strided medoids.
    let mut medoids: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    let mut assignment = vec![0usize; n];

    for _ in 0..max_iters {
        // Assign each occurrence to its most similar medoid.
        for (i, slot) in assignment.iter_mut().enumerate() {
            *slot = medoids
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    sim[i][a].partial_cmp(&sim[i][b]).expect("similarities are finite by construction, so partial_cmp succeeds")
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
        }
        // Recompute medoids: member maximizing total similarity within
        // the cluster.
        let mut changed = false;
        for (c, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> =
                (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let best = *members
                .iter()
                .max_by(|&&a, &&b| {
                    let sa: f64 = members.iter().map(|&m| sim[a][m]).sum();
                    let sb: f64 = members.iter().map(|&m| sim[b][m]).sum();
                    sa.partial_cmp(&sb).expect("similarities are finite by construction, so partial_cmp succeeds")
                })
                .expect("every cluster retains at least its medoid");
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Derive per-cluster least-general schemes (with automorphism
    // alignment, like the hierarchical path).
    let aligner = Aligner::new(pattern, config.max_automorphisms);
    let mut out = Vec::new();
    for c in 0..k {
        let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
        if members.len() < config.sigma {
            continue;
        }
        let mut scheme: Option<LabelingScheme> = None;
        let mut aligned_occs: Vec<Occurrence> = Vec::new();
        for &m in &members {
            let occ_scheme = initial_scheme(&occurrences[m], &|p: ProteinId| {
                ctx.terms_by_protein[p.index()].clone()
            });
            match scheme {
                None => {
                    scheme = Some(occ_scheme);
                    aligned_occs.push(occurrences[m].clone());
                }
                Some(ref s) => {
                    let perm = aligner.align(s, &occ_scheme, ctx);
                    let aligned = permute_scheme(&occ_scheme, &perm);
                    aligned_occs.push(permute_occurrence(&occurrences[m], &perm));
                    scheme = Some(merge_schemes(s, &aligned, ctx.sim, ctx.informative));
                }
            }
        }
        let scheme = vocabulary_filter(&scheme.expect("loop above assigns a scheme whenever members exist"), ctx.informative);
        if !scheme.is_all_unknown() {
            out.push(LabeledCluster {
                scheme,
                occurrences: aligned_occs,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::compute_frontier;
    use go_ontology::{
        Annotations, InformativeClasses, InformativeConfig, Namespace, Ontology, OntologyBuilder,
        Relation, TermId, TermSimilarity, TermWeights,
    };
    use ppi_graph::VertexId;

    struct World {
        ontology: Ontology,
        annotations: Annotations,
    }

    /// root -> F -> {f1, f2}; 24 proteins: 0..12 f1, 12..24 f2; 4 pads on F.
    fn world() -> World {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().unwrap();
        let mut annotations = Annotations::new(28, ontology.term_count());
        for p in 0..12 {
            annotations.annotate(ProteinId(p), f1);
        }
        for p in 12..24 {
            annotations.annotate(ProteinId(p), f2);
        }
        for p in 24..28 {
            annotations.annotate(ProteinId(p), f);
        }
        World {
            ontology,
            annotations,
        }
    }

    #[test]
    fn two_populations_separate_into_two_medoid_clusters() {
        let w = world();
        let weights = TermWeights::compute(&w.ontology, &w.annotations);
        let sim = TermSimilarity::new(&w.ontology, &weights);
        let informative = InformativeClasses::compute(
            &w.ontology,
            &w.annotations,
            InformativeConfig {
                min_direct: 4,
                ..Default::default()
            },
        );
        let frontier = compute_frontier(&w.ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..w.annotations.protein_count())
            .map(|p| w.annotations.terms_of(ProteinId(p as u32)).to_vec())
            .collect();
        let ctx = LabelContext {
            ontology: &w.ontology,
            sim: &sim,
            informative: &informative,
            terms_by_protein: &terms_by_protein,
            frontier: &frontier,
            dense: None,
        };
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        // 6 edge occurrences on f1 proteins, 6 on f2 proteins.
        let mut occs = Vec::new();
        for i in 0..6u32 {
            occs.push(Occurrence::new(vec![VertexId(2 * i), VertexId(2 * i + 1)]));
        }
        for i in 0..6u32 {
            occs.push(Occurrence::new(vec![
                VertexId(12 + 2 * i),
                VertexId(12 + 2 * i + 1),
            ]));
        }
        let config = ClusteringConfig {
            sigma: 4,
            ..Default::default()
        };
        let clusters = kmedoids_label(&pattern, &occs, &ctx, &config, 2, 30);
        assert_eq!(clusters.len(), 2);
        let mut labels: Vec<Vec<TermId>> = clusters
            .iter()
            .map(|c| c.scheme.labels[0].terms.clone())
            .collect();
        labels.sort();
        assert_eq!(labels, vec![vec![TermId(2)], vec![TermId(3)]]);
        // Partitioning: every occurrence in exactly one cluster.
        let total: usize = clusters.iter().map(|c| c.occurrences.len()).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let w = world();
        let weights = TermWeights::compute(&w.ontology, &w.annotations);
        let sim = TermSimilarity::new(&w.ontology, &weights);
        let informative = InformativeClasses::compute(
            &w.ontology,
            &w.annotations,
            InformativeConfig {
                min_direct: 4,
                ..Default::default()
            },
        );
        let frontier = compute_frontier(&w.ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..w.annotations.protein_count())
            .map(|p| w.annotations.terms_of(ProteinId(p as u32)).to_vec())
            .collect();
        let ctx = LabelContext {
            ontology: &w.ontology,
            sim: &sim,
            informative: &informative,
            terms_by_protein: &terms_by_protein,
            frontier: &frontier,
            dense: None,
        };
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs = vec![Occurrence::new(vec![VertexId(0), VertexId(1)])];
        let config = ClusteringConfig {
            sigma: 1,
            ..Default::default()
        };
        let clusters = kmedoids_label(&pattern, &occs, &ctx, &config, 5, 10);
        assert_eq!(clusters.len(), 1);
    }
}
