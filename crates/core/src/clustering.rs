//! Agglomerative occurrence clustering — Algorithms 1 and 2 of the paper.
//!
//! Each occurrence starts as its own cluster carrying its proteins'
//! annotations as the initial labeling scheme. The most similar pair of
//! *active* clusters is merged (average linkage over the occurrence-pair
//! `SO` matrix, maintained by Lance–Williams updates); each merge
//! re-derives the least-general labeling scheme. A cluster stops when
//! more than `stop_fraction` of the motif's vertices carry labels at (or
//! above) the border-informative frontier — generalizing further would
//! only produce labels "too general" to be useful. Clusters holding at
//! least `σ` occurrences are emitted as labeled motifs.
//!
//! Merging aligns the smaller cluster onto the larger via the pattern
//! automorphism that best matches the two schemes — the step where the
//! motif's symmetric vertices (Section 2, issue 2) are resolved without
//! inflating labels.

use crate::labeling::{
    initial_scheme, merge_schemes, vocabulary_filter, LabelingScheme, VertexLabel,
};
use crate::occ_similarity::OccurrenceScorer;
use go_ontology::{InformativeClasses, Ontology, ProteinId, TermSimilarity};
use motif_finder::Occurrence;
use par_util::{faultpoint, run_supervised, PoolOutcome, RunContext, WorkQueue, WorkerPanic};
use ppi_graph::{enumerate_isomorphisms, DiGraph, Graph};

/// Linkage rule for cluster-to-cluster similarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Linkage {
    /// Mean over all occurrence pairs (default).
    #[default]
    Average,
    /// Most similar pair.
    Single,
    /// Least similar pair.
    Complete,
}

/// Clustering parameters.
#[derive(Clone, Debug)]
pub struct ClusteringConfig {
    /// Minimum occurrences per emitted labeling scheme (paper: σ = 10).
    pub sigma: usize,
    /// Fraction of vertices at the border frontier that stops a cluster
    /// (paper: "more than half" → 0.5).
    pub stop_fraction: f64,
    /// Cap on pattern automorphisms enumerated for merge alignment.
    /// Large symmetric orbits are handled separately (and exactly) via
    /// interchangeable-class assignment, so a small cap suffices.
    pub max_automorphisms: usize,
    /// Linkage rule.
    pub linkage: Linkage,
    /// Worker threads for the pairwise SO matrix (`0` = one per
    /// available core). Only the matrix build parallelizes — every entry
    /// is a pure function of the occurrence pair, so the output is
    /// byte-identical for any thread count. [`crate::LaMoFinder`] sets
    /// this to `1` when it is already parallel across motifs.
    pub threads: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            sigma: 10,
            stop_fraction: 0.5,
            max_automorphisms: 64,
            linkage: Linkage::Average,
            threads: 0,
        }
    }
}

// Thread-budget resolution and deterministic chunking now live in
// `par-util` (shared with the uniqueness null model and the discovery
// front-end); re-exported for the crate-internal callers.
pub(crate) use par_util::{resolve_threads, split_chunks};

/// One emitted cluster: a labeling scheme with its supporting
/// occurrences (aligned copies).
#[derive(Clone, Debug)]
pub struct LabeledCluster {
    /// Vocabulary-filtered labeling scheme.
    pub scheme: LabelingScheme,
    /// Aligned occurrences supporting the scheme.
    pub occurrences: Vec<Occurrence>,
}

struct Cluster {
    occs: Vec<Occurrence>,
    scheme: LabelingScheme,
    /// Cached order-insensitive label view for the stop-rule fast path.
    multiset: Vec<Vec<go_ontology::TermId>>,
    stopped: bool,
    alive: bool,
}

/// Shared read-only labeling context (built once per namespace by
/// [`crate::LaMoFinder`]).
pub struct LabelContext<'a> {
    /// The GO DAG.
    pub ontology: &'a Ontology,
    /// Term similarity oracle (with weights).
    pub sim: &'a TermSimilarity<'a>,
    /// Informative / border classification.
    pub informative: &'a InformativeClasses,
    /// Namespace-filtered annotations per network vertex.
    pub terms_by_protein: &'a [Vec<go_ontology::TermId>],
    /// `frontier[t]`: term `t` is a border term or an ancestor of one —
    /// a label that cannot usefully generalize further.
    pub frontier: &'a [bool],
    /// Precomputed dense ST/SV kernels for the SO hot path. `None`
    /// routes everything through the memoized oracle (`sim`).
    pub dense: Option<&'a go_ontology::DenseSimPlanes>,
}

impl LabelContext<'_> {
    /// Whether a vertex label has reached the border frontier.
    fn label_at_frontier(&self, label: &VertexLabel) -> bool {
        !label.is_unknown() && label.terms.iter().any(|t| self.frontier[t.index()])
    }

    /// Number of scheme vertices at the frontier.
    fn frontier_count(&self, scheme: &LabelingScheme) -> usize {
        scheme
            .labels
            .iter()
            .filter(|l| self.label_at_frontier(l))
            .count()
    }
}

/// Precompute the `frontier` vector for [`LabelContext`].
pub fn compute_frontier(ontology: &Ontology, informative: &InformativeClasses) -> Vec<bool> {
    let n = ontology.term_count();
    let mut frontier = vec![false; n];
    for &t in ontology.topological_order().iter().rev() {
        frontier[t.index()] = informative.is_border(t)
            || ontology
                .children(t)
                .iter()
                .any(|&(c, _)| frontier[c.index()]);
    }
    frontier
}

/// Symmetry information of a motif pattern: its automorphism orbits
/// ("symmetric vertex sets"), a capped set of explicit automorphisms and
/// the interchangeable vertex classes. Built from an undirected pattern
/// for PPI motifs, or from a directed pattern for regulatory motifs —
/// directed orbits are finer than their skeleton's (a feed-forward loop
/// has three distinct roles though its skeleton is a triangle).
pub struct MotifSymmetry {
    /// Number of pattern vertices.
    pub size: usize,
    /// Orbits as position lists (singletons included).
    pub orbits: Vec<Vec<usize>>,
    /// Enumerated automorphisms (identity first, capped).
    pub autos: Vec<Vec<usize>>,
    /// Interchangeable classes with ≥ 2 members.
    pub classes: Vec<Vec<usize>>,
}

impl MotifSymmetry {
    /// Symmetry of an undirected pattern.
    pub fn undirected(pattern: &Graph, max_autos: usize) -> Self {
        let k = pattern.vertex_count();
        let orbits = ppi_graph::automorphism_orbits(pattern)
            .into_iter()
            .map(|o| o.into_iter().map(|v| v.index()).collect())
            .collect();
        let identity: Vec<usize> = (0..k).collect();
        let mut autos = vec![identity.clone()];
        enumerate_isomorphisms(pattern, pattern, None, &mut |m| {
            let perm: Vec<usize> = m.iter().map(|v| v.index()).collect();
            if perm != identity {
                autos.push(perm);
            }
            autos.len() < max_autos
        });
        let classes = group_classes(
            &motif_finder::subgraph_match::interchangeable_classes(pattern),
        );
        MotifSymmetry {
            size: k,
            orbits,
            autos,
            classes,
        }
    }

    /// Symmetry of a directed pattern.
    pub fn directed(pattern: &DiGraph, max_autos: usize) -> Self {
        let k = pattern.vertex_count();
        let orbits = ppi_graph::directed_automorphism_orbits(pattern)
            .into_iter()
            .map(|o| o.into_iter().map(|v| v.index()).collect())
            .collect();
        let identity: Vec<usize> = (0..k).collect();
        let mut autos = vec![identity.clone()];
        ppi_graph::digraph::enumerate_digraph_isomorphisms(pattern, pattern, None, &mut |m| {
            let perm: Vec<usize> = m.iter().map(|&v| v as usize).collect();
            if perm != identity {
                autos.push(perm);
            }
            autos.len() < max_autos
        });
        let classes = group_classes(&ppi_graph::directed_interchangeable_classes(pattern));
        MotifSymmetry {
            size: k,
            orbits,
            autos,
            classes,
        }
    }
}

fn group_classes(class_of: &[u32]) -> Vec<Vec<usize>> {
    let mut by_class: std::collections::HashMap<u32, Vec<usize>> =
        std::collections::HashMap::new();
    for (v, &c) in class_of.iter().enumerate() {
        by_class.entry(c).or_default().push(v);
    }
    let mut classes: Vec<Vec<usize>> = by_class.into_values().filter(|c| c.len() >= 2).collect();
    classes.sort();
    classes
}

/// Run the agglomerative clustering over one motif's occurrences and
/// return every labeling scheme supported by ≥ σ occurrences.
pub fn cluster_occurrences(
    pattern: &Graph,
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
) -> Vec<LabeledCluster> {
    let symmetry = MotifSymmetry::undirected(pattern, config.max_automorphisms);
    cluster_occurrences_sym(&symmetry, occurrences, ctx, config)
}

/// [`cluster_occurrences`] with explicit pattern symmetry — the entry
/// point for directed motifs.
pub fn cluster_occurrences_sym(
    symmetry: &MotifSymmetry,
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
) -> Vec<LabeledCluster> {
    cluster_occurrences_sym_supervised(symmetry, occurrences, ctx, config, &RunContext::unbounded())
        .expect("a passive context without injected faults never panics a worker")
}

/// [`cluster_occurrences`] under a supervising [`RunContext`]: one SO
/// cell scored costs one work tick, the agglomerative loop drains at
/// merge boundaries once the context trips, and a panicking matrix
/// worker surfaces as a typed [`WorkerPanic`]. A cancelled call returns
/// `Ok` with a partial (possibly empty) result the caller must discard
/// after checking [`RunContext::should_stop`] — clustering is
/// all-or-nothing per motif, so the checkpointable unit is the whole
/// motif (see `LaMoFinder::resume_label_motifs`).
pub fn cluster_occurrences_supervised(
    pattern: &Graph,
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
    run: &RunContext,
) -> Result<Vec<LabeledCluster>, WorkerPanic> {
    let symmetry = MotifSymmetry::undirected(pattern, config.max_automorphisms);
    cluster_occurrences_sym_supervised(&symmetry, occurrences, ctx, config, run)
}

/// [`cluster_occurrences_supervised`] with explicit pattern symmetry.
pub fn cluster_occurrences_sym_supervised(
    symmetry: &MotifSymmetry,
    occurrences: &[Occurrence],
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
    run: &RunContext,
) -> Result<Vec<LabeledCluster>, WorkerPanic> {
    let n = occurrences.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut scorer = OccurrenceScorer::from_orbits(
        symmetry.orbits.clone(),
        symmetry.size,
        ctx.sim,
        ctx.terms_by_protein,
    );
    if let Some(planes) = ctx.dense {
        scorer = scorer.with_dense(planes);
        scorer.precompute_sv_plane(occurrences, run);
        if run.should_stop() {
            return Ok(Vec::new());
        }
    }
    let aligner = Aligner::from_symmetry(symmetry);

    // Pairwise occurrence similarities (SO, Eq. 3).
    let mut sim = so_matrix(&scorer, occurrences, resolve_threads(config.threads), run)?;
    if run.should_stop() {
        return Ok(Vec::new());
    }

    // Singleton clusters.
    let mut clusters: Vec<Cluster> = occurrences
        .iter()
        .map(|o| {
            let scheme = initial_scheme(o, &|p: ProteinId| {
                ctx.terms_by_protein[p.index()].clone()
            });
            let stopped = is_stopped(&scheme, ctx, config, symmetry.size);
            let multiset = scheme_multiset(&scheme);
            Cluster {
                occs: vec![o.clone()],
                scheme,
                multiset,
                stopped,
                alive: true,
            }
        })
        .collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut emitted: Vec<LabeledCluster> = Vec::new();

    // Per-row best eligible partner (`row_best[i]` = best `j > i`),
    // maintained incrementally instead of rescanning all O(n²) pairs per
    // merge. Tie-breaking matches the naive double loop exactly — the
    // smallest `(i, j)` among maximal pairs wins — so the merge sequence
    // (and therefore the output) is unchanged.
    let mut row_best: Vec<Option<(usize, f64)>> = (0..n)
        .map(|i| best_partner(&clusters, &sim, i))
        .collect();

    loop {
        // Merge boundaries are the drain points of the agglomerative
        // phase: a tripped context abandons the (whole-motif) unit.
        if run.should_stop() {
            return Ok(Vec::new());
        }
        // Most similar eligible pair. A stopped cluster may still absorb
        // a cluster with the *same* labels (no generalization happens);
        // pairs where either side is stopped and the labels differ are
        // frozen, per the paper's stop rule.
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, rb) in row_best.iter().enumerate() {
            if let Some((j, s)) = *rb {
                if best.is_none_or(|(_, _, bs)| s > bs) {
                    best = Some((i, j, s));
                }
            }
        }
        let Some((i, j, _)) = best else { break };

        // Align cluster j's scheme (and occurrences) to cluster i via the
        // best-fitting pattern automorphism.
        let perm = aligner.align(&clusters[i].scheme, &clusters[j].scheme, ctx);
        let scheme_j = permute_scheme(&clusters[j].scheme, &perm);
        let occs_j: Vec<Occurrence> = clusters[j]
            .occs
            .iter()
            .map(|o| permute_occurrence(o, &perm))
            .collect();

        let merged_scheme = merge_schemes(&clusters[i].scheme, &scheme_j, ctx.sim, ctx.informative);
        clusters[i].multiset = scheme_multiset(&merged_scheme);
        clusters[i].scheme = merged_scheme;
        clusters[i].occs.extend(occs_j);
        clusters[j].alive = false;
        clusters[i].stopped = is_stopped(&clusters[i].scheme, ctx, config, symmetry.size);

        // Lance–Williams similarity update.
        let (si, sj) = (sizes[i] as f64, sizes[j] as f64);
        for k in 0..n {
            if k == i || k == j || !clusters[k].alive {
                continue;
            }
            let new = match config.linkage {
                Linkage::Average => (si * sim[i][k] + sj * sim[j][k]) / (si + sj),
                Linkage::Single => sim[i][k].max(sim[j][k]),
                Linkage::Complete => sim[i][k].min(sim[j][k]),
            };
            sim[i][k] = new;
            sim[k][i] = new;
        }
        sizes[i] += sizes[j];

        // Repair `row_best`. Only cluster `i` changed (labels, stop
        // state, similarities) and cluster `j` died, so:
        //  * row `j` is gone;
        //  * row `i` is rescanned in full (all its pairs changed);
        //  * any row whose cached best pointed at `i` or `j` is
        //    rescanned (its candidate changed value or died);
        //  * every other row `k < i` gets an incremental check of the
        //    one changed pair `(k, i)` — value and eligibility both
        //    shifted. Rows `k > i` not pointing at `i`/`j` hold pairs
        //    untouched by the merge.
        row_best[j] = None;
        for k in 0..n {
            if k == i || !clusters[k].alive {
                continue;
            }
            let points_at_merge = matches!(row_best[k], Some((b, _)) if b == i || b == j);
            if points_at_merge {
                row_best[k] = best_partner(&clusters, &sim, k);
            } else if k < i && pair_eligible(&clusters[k], &clusters[i]) {
                let v = sim[k][i];
                let better = match row_best[k] {
                    None => true,
                    // Equal scores keep the smaller column index,
                    // matching the ascending-`j` scan order.
                    Some((bj, bv)) => v > bv || (v == bv && i < bj),
                };
                if better {
                    row_best[k] = Some((i, v));
                }
            }
        }
        row_best[i] = best_partner(&clusters, &sim, i);
    }

    for c in clusters.iter().filter(|c| c.alive) {
        if c.occs.len() >= config.sigma {
            let filtered = vocabulary_filter(&c.scheme, ctx.informative);
            if !filtered.is_all_unknown() {
                emitted.push(LabeledCluster {
                    scheme: filtered,
                    occurrences: c.occs.clone(),
                });
            }
        }
    }
    // Deduplicate identical schemes, keeping the best-supported cluster.
    emitted.sort_by_key(|c| std::cmp::Reverse(c.occurrences.len()));
    let mut unique: Vec<LabeledCluster> = Vec::new();
    for c in emitted {
        if !unique.iter().any(|u| u.scheme == c.scheme) {
            unique.push(c);
        }
    }
    Ok(unique)
}

/// The full pairwise SO matrix, built by `threads` supervised workers
/// over round-robin row chunks. Every entry is a pure function of the
/// occurrence pair (the SV/ST memo tables are insert-once and
/// value-deterministic), so the matrix is identical for any thread
/// count. Every scored cell costs one work tick; a tripped context
/// leaves unvisited rows zeroed (the caller discards the partial
/// matrix), and a panicking worker surfaces as `Err`.
pub fn so_matrix(
    scorer: &OccurrenceScorer<'_>,
    occurrences: &[Occurrence],
    threads: usize,
    run: &RunContext,
) -> Result<Vec<Vec<f64>>, WorkerPanic> {
    let n = occurrences.len();
    let mut sim = vec![vec![0.0f64; n]; n];
    let threads = threads.clamp(1, n.max(1));
    let rows: Vec<usize> = (0..n).collect();
    let chunks = split_chunks(&rows, threads);
    let queue = WorkQueue::new(chunks.len());
    let PoolOutcome {
        results: parts,
        panic,
    }: PoolOutcome<Vec<(usize, Vec<f64>)>> =
        run_supervised(chunks.len().max(1), "core.so_matrix", run, || {
            let mut part: Vec<(usize, Vec<f64>)> = Vec::new();
            let mut scratch = crate::occ_similarity::SoScratch::new();
            while let Some(c) = queue.pull() {
                for &i in &chunks[c] {
                    if run.should_stop() {
                        return part;
                    }
                    faultpoint!(run, "core.so_row");
                    let row: Vec<f64> = (i + 1..n)
                        .map(|j| scorer.so_scratch(&occurrences[i], &occurrences[j], &mut scratch))
                        .collect();
                    run.tick((n - i - 1) as u64);
                    part.push((i, row));
                }
            }
            part
        });
    if let Some(panic) = panic {
        return Err(panic);
    }
    for part in parts {
        for (i, row) in part {
            for (off, s) in row.into_iter().enumerate() {
                let j = i + 1 + off;
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
    }
    Ok(sim)
}

/// Whether two clusters may merge under the stop rule: a stopped side
/// freezes the pair unless the labels are identical (absorbing an
/// identical cluster generalizes nothing).
fn pair_eligible(a: &Cluster, b: &Cluster) -> bool {
    !((a.stopped || b.stopped) && a.multiset != b.multiset)
}

/// Best eligible partner of row `i` among alive clusters `j > i`,
/// scanning in ascending `j` with strict `>` so equal scores keep the
/// smallest column — the naive double loop's tie-breaking.
fn best_partner(clusters: &[Cluster], sim: &[Vec<f64>], i: usize) -> Option<(usize, f64)> {
    if !clusters[i].alive {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for j in i + 1..clusters.len() {
        if !clusters[j].alive || !pair_eligible(&clusters[i], &clusters[j]) {
            continue;
        }
        if best.is_none_or(|(_, s)| sim[i][j] > s) {
            best = Some((j, sim[i][j]));
        }
    }
    best
}

/// Order-insensitive view of a scheme's labels, used to let identical
/// clusters merge past the stop rule.
fn scheme_multiset(scheme: &LabelingScheme) -> Vec<Vec<go_ontology::TermId>> {
    let mut sets: Vec<Vec<go_ontology::TermId>> =
        scheme.labels.iter().map(|l| l.terms.clone()).collect();
    sets.sort();
    sets
}

fn is_stopped(
    scheme: &LabelingScheme,
    ctx: &LabelContext<'_>,
    config: &ClusteringConfig,
    size: usize,
) -> bool {
    ctx.frontier_count(scheme) as f64 > config.stop_fraction * size as f64
}

/// Scheme-to-scheme automorphism alignment.
///
/// Two candidate families are considered: (a) a small set of enumerated
/// pattern automorphisms (covers coupled symmetries like path flips),
/// and (b) the optimal within-class assignment over *interchangeable*
/// vertex classes (identical neighborhoods) — every within-class
/// permutation is an automorphism, so the Hungarian solution is both
/// valid and optimal for the big orbits (clique members, star leaves,
/// bipartite sides) without enumerating factorially many maps.
pub(crate) struct Aligner {
    autos: Vec<Vec<usize>>,
    /// Interchangeable classes with at least two members.
    classes: Vec<Vec<usize>>,
    size: usize,
}

impl Aligner {
    pub(crate) fn new(pattern: &Graph, max_autos: usize) -> Self {
        Self::from_symmetry(&MotifSymmetry::undirected(pattern, max_autos))
    }

    pub(crate) fn from_symmetry(sym: &MotifSymmetry) -> Self {
        Aligner {
            autos: sym.autos.clone(),
            classes: sym.classes.clone(),
            size: sym.size,
        }
    }

    /// Pick the alignment `π` maximizing `Σ SV(a[i], b[π(i)])`.
    pub(crate) fn align(
        &self,
        a: &LabelingScheme,
        b: &LabelingScheme,
        ctx: &LabelContext<'_>,
    ) -> Vec<usize> {
        let score = |perm: &[usize]| -> f64 {
            a.labels
                .iter()
                .enumerate()
                .map(|(i, la)| ctx.sim.sv(&la.terms, &b.labels[perm[i]].terms))
                .sum()
        };
        let mut best_perm = self.autos[0].clone();
        let mut best_score = score(&best_perm);
        for perm in &self.autos[1..] {
            let s = score(perm);
            if s > best_score {
                best_score = s;
                best_perm = perm.clone();
            }
        }
        if !self.classes.is_empty() {
            // Class-wise Hungarian candidate (an automorphism by
            // construction).
            let mut perm: Vec<usize> = (0..self.size).collect();
            for class in &self.classes {
                let w: Vec<Vec<f64>> = class
                    .iter()
                    .map(|&x| {
                        class
                            .iter()
                            .map(|&y| ctx.sim.sv(&a.labels[x].terms, &b.labels[y].terms))
                            .collect()
                    })
                    .collect();
                let (assign, _) = crate::assignment::max_assignment(&w);
                for (xi, &yi) in assign.iter().enumerate() {
                    perm[class[xi]] = class[yi];
                }
            }
            let s = score(&perm);
            if s > best_score {
                best_perm = perm;
            }
        }
        best_perm
    }
}

pub(crate) fn permute_scheme(scheme: &LabelingScheme, perm: &[usize]) -> LabelingScheme {
    LabelingScheme::new((0..perm.len()).map(|i| scheme.labels[perm[i]].clone()).collect())
}

pub(crate) fn permute_occurrence(occ: &Occurrence, perm: &[usize]) -> Occurrence {
    Occurrence::new((0..perm.len()).map(|i| occ.vertices[perm[i]]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{
        Annotations, InformativeConfig, Namespace, OntologyBuilder, Relation, TermId, TermWeights,
    };
    use ppi_graph::VertexId;

    /// Ontology: root -> {A, B}; A -> {x1, x2}; B -> {y1, y2}.
    /// Weights via synthetic annotation counts; informative threshold 2.
    struct Fix {
        ontology: go_ontology::Ontology,
        annotations: Annotations,
    }

    fn fix(protein_terms: &[Vec<u32>]) -> Fix {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "A", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "B", Namespace::BiologicalProcess);
        let x1 = ob.add_term("GO:3", "x1", Namespace::BiologicalProcess);
        let x2 = ob.add_term("GO:4", "x2", Namespace::BiologicalProcess);
        let y1 = ob.add_term("GO:5", "y1", Namespace::BiologicalProcess);
        let y2 = ob.add_term("GO:6", "y2", Namespace::BiologicalProcess);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x1, a, Relation::IsA);
        ob.add_edge(x2, a, Relation::IsA);
        ob.add_edge(y1, b, Relation::IsA);
        ob.add_edge(y2, b, Relation::IsA);
        let ontology = ob.build().unwrap();
        // Two padding proteins directly on A and two on B so that both
        // inner terms are informative (threshold 2) and hence the border
        // sits at {A, B}, with x/y below it in the vocabulary.
        let n = protein_terms.len();
        let mut annotations = Annotations::new(n + 4, ontology.term_count());
        for (p, terms) in protein_terms.iter().enumerate() {
            for &t in terms {
                annotations.annotate(ProteinId(p as u32), TermId(t));
            }
        }
        annotations.annotate(ProteinId(n as u32), TermId(1));
        annotations.annotate(ProteinId(n as u32 + 1), TermId(1));
        annotations.annotate(ProteinId(n as u32 + 2), TermId(2));
        annotations.annotate(ProteinId(n as u32 + 3), TermId(2));
        Fix {
            ontology,
            annotations,
        }
    }

    fn run(
        fixture: &Fix,
        pattern: &Graph,
        occs: &[Occurrence],
        sigma: usize,
    ) -> Vec<LabeledCluster> {
        let weights = TermWeights::compute(&fixture.ontology, &fixture.annotations);
        let sim = TermSimilarity::new(&fixture.ontology, &weights);
        let informative = InformativeClasses::compute(
            &fixture.ontology,
            &fixture.annotations,
            InformativeConfig {
                min_direct: 2,
                ..Default::default()
            },
        );
        let frontier = compute_frontier(&fixture.ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..fixture.annotations.protein_count())
            .map(|p| fixture.annotations.terms_of(ProteinId(p as u32)).to_vec())
            .collect();
        let ctx = LabelContext {
            ontology: &fixture.ontology,
            sim: &sim,
            informative: &informative,
            terms_by_protein: &terms_by_protein,
            frontier: &frontier,
            dense: None,
        };
        let config = ClusteringConfig {
            sigma,
            ..Default::default()
        };
        cluster_occurrences(pattern, occs, &ctx, &config)
    }

    fn edge_occ(a: u32, b: u32) -> Occurrence {
        Occurrence::new(vec![VertexId(a), VertexId(b)])
    }

    #[test]
    fn homogeneous_occurrences_get_specific_labels() {
        // 8 proteins all annotated x1, paired into 4 edge occurrences.
        let fixture = fix(&vec![vec![3]; 8]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        let out = run(&fixture, &pattern, &occs, 3);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.occurrences.len(), 4);
        for l in &c.scheme.labels {
            assert_eq!(l.terms, vec![TermId(3)], "labels stay at x1");
        }
    }

    #[test]
    fn sibling_annotations_generalize_to_parent() {
        // Positions 0: x1/x2 alternating → generalize to A.
        // Position 1: all y1 → stays y1.
        let fixture = fix(&[
            vec![3],
            vec![5],
            vec![4],
            vec![5],
            vec![3],
            vec![5],
            vec![4],
            vec![5],
        ]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        let out = run(&fixture, &pattern, &occs, 4);
        assert_eq!(out.len(), 1, "schemes: {out:?}");
        let scheme = &out[0].scheme;
        // One endpoint at A, the other at y1 — but the edge pattern is
        // symmetric, so alignment may put them in either order.
        let mut label_sets: Vec<Vec<TermId>> =
            scheme.labels.iter().map(|l| l.terms.clone()).collect();
        label_sets.sort();
        assert_eq!(label_sets, vec![vec![TermId(1)], vec![TermId(5)]]);
    }

    #[test]
    fn symmetric_alignment_avoids_over_generalization() {
        // Edge occurrences with endpoints swapped in half the cases:
        // (x1, y1) and (y1, x1). With automorphism alignment the labels
        // stay (x1, y1); without it they would generalize to the root.
        let fixture = fix(&[
            vec![3],
            vec![5],
            vec![5],
            vec![3],
            vec![3],
            vec![5],
            vec![5],
            vec![3],
        ]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        let out = run(&fixture, &pattern, &occs, 4);
        assert_eq!(out.len(), 1);
        let mut label_sets: Vec<Vec<TermId>> =
            out[0].scheme.labels.iter().map(|l| l.terms.clone()).collect();
        label_sets.sort();
        assert_eq!(label_sets, vec![vec![TermId(3)], vec![TermId(5)]]);
    }

    #[test]
    fn sigma_filters_small_clusters() {
        let fixture = fix(&vec![vec![3]; 4]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs = vec![edge_occ(0, 1), edge_occ(2, 3)];
        assert!(run(&fixture, &pattern, &occs, 3).is_empty());
        assert_eq!(run(&fixture, &pattern, &occs, 2).len(), 1);
    }

    #[test]
    fn unannotated_proteins_adopt_cluster_labels() {
        // Protein 6, 7 unannotated; the rest x1.
        let fixture = fix(&[
            vec![3],
            vec![3],
            vec![3],
            vec![3],
            vec![3],
            vec![3],
            vec![],
            vec![],
        ]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        let out = run(&fixture, &pattern, &occs, 4);
        assert_eq!(out.len(), 1);
        for l in &out[0].scheme.labels {
            assert_eq!(l.terms, vec![TermId(3)]);
        }
        // The emitted scheme conforms to every occurrence, including the
        // one with unannotated proteins.
        for o in &out[0].occurrences {
            assert!(out[0]
                .scheme
                .conforms_to(o, &fixture.ontology, &fixture.annotations));
        }
    }

    #[test]
    fn all_unannotated_emits_nothing() {
        let fixture = fix(&vec![vec![]; 8]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        assert!(run(&fixture, &pattern, &occs, 2).is_empty());
    }

    #[test]
    fn linkage_variants_produce_valid_output() {
        let fixture = fix(&[
            vec![3],
            vec![5],
            vec![4],
            vec![5],
            vec![3],
            vec![5],
            vec![4],
            vec![5],
        ]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let weights = TermWeights::compute(&fixture.ontology, &fixture.annotations);
            let sim = TermSimilarity::new(&fixture.ontology, &weights);
            let informative = InformativeClasses::compute(
                &fixture.ontology,
                &fixture.annotations,
                InformativeConfig {
                    min_direct: 2,
                    ..Default::default()
                },
            );
            let frontier = compute_frontier(&fixture.ontology, &informative);
            let terms_by_protein: Vec<Vec<TermId>> = (0..fixture.annotations.protein_count())
                .map(|p| fixture.annotations.terms_of(ProteinId(p as u32)).to_vec())
                .collect();
            let ctx = LabelContext {
                ontology: &fixture.ontology,
                sim: &sim,
                informative: &informative,
                terms_by_protein: &terms_by_protein,
                frontier: &frontier,
                dense: None,
            };
            let config = ClusteringConfig {
                sigma: 2,
                linkage,
                ..Default::default()
            };
            let out = cluster_occurrences(&pattern, &occs, &ctx, &config);
            assert!(!out.is_empty(), "{linkage:?} produced nothing");
            for c in &out {
                for o in &c.occurrences {
                    assert!(c.scheme.conforms_to(o, &fixture.ontology, &fixture.annotations));
                }
            }
        }
    }

    #[test]
    fn motif_symmetry_of_path_and_clique() {
        let path4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sym = MotifSymmetry::undirected(&path4, 64);
        assert_eq!(sym.orbits, vec![vec![0, 3], vec![1, 2]]);
        assert_eq!(sym.autos.len(), 2, "identity + flip");
        // Path endpoints are interchangeable (both neighbor distinct
        // middles? no — endpoints attach to different middles), so no
        // interchangeable class covers them; the flip is coupled.
        assert!(sym.classes.is_empty(), "{:?}", sym.classes);

        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        let k4 = Graph::from_edges(4, &edges);
        let sym = MotifSymmetry::undirected(&k4, 8);
        assert_eq!(sym.orbits.len(), 1);
        assert_eq!(sym.classes, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn emitted_schemes_conform_to_their_occurrences() {
        let fixture = fix(&[
            vec![3, 5],
            vec![5],
            vec![4],
            vec![5, 6],
            vec![3],
            vec![5],
            vec![4, 3],
            vec![5],
        ]);
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let occs: Vec<Occurrence> = (0..4).map(|i| edge_occ(2 * i, 2 * i + 1)).collect();
        for cluster in run(&fixture, &pattern, &occs, 2) {
            for o in &cluster.occurrences {
                assert!(
                    cluster
                        .scheme
                        .conforms_to(o, &fixture.ontology, &fixture.annotations),
                    "scheme {:?} vs occurrence {o:?}",
                    cluster.scheme
                );
            }
        }
    }
}
