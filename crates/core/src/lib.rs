#![forbid(unsafe_code)]
//! **LaMoFinder** — Labeled Motif Finder (Chen, Hsu, Lee, Ng; ICDE 2007).
//!
//! The paper's contribution: given the network motifs of a PPI network
//! (Tasks 1–2, provided by the `motif-finder` crate) and the Gene
//! Ontology annotations of the proteins (the `go-ontology` crate), solve
//! **Task 3** — assign GO labels to motif vertices such that the labeled
//! subgraphs still occur frequently in the underlying labeled network.
//!
//! Pipeline (Section 3 of the paper):
//!
//! 1. score occurrence pairs with `SO` (Eq. 3), built from the Lin term
//!    similarity `ST` (Eq. 1) and vertex similarity `SV` (Eq. 2), with
//!    symmetric-vertex pairing solved exactly ([`occ_similarity`],
//!    [`assignment`]);
//! 2. agglomeratively cluster the occurrence set, deriving at each merge
//!    the least-general labeling scheme, and stop clusters whose labels
//!    reach the border-informative frontier ([`clustering`],
//!    [`labeling`]);
//! 3. emit every scheme supported by at least σ occurrences as a
//!    [`LabeledMotif`] ([`labeled`], [`lamofinder`]).
//!
//! The naive random-generalization labeler and the k-medoids
//! partitioning baseline from the paper's discussion are provided for
//! ablations ([`naive`], [`kmeans`]).

pub mod assignment;
pub mod clustering;
pub mod dictionary;
pub mod flat;
pub mod kmeans;
pub mod label_cache;
pub mod labeled;
pub mod labeling;
pub mod lamofinder;
pub mod naive;
pub mod occ_similarity;

pub use assignment::{max_assignment, max_assignment_flat, AssignScratch};
pub use clustering::{
    cluster_occurrences, cluster_occurrences_supervised, cluster_occurrences_sym,
    cluster_occurrences_sym_supervised, compute_frontier, so_matrix, ClusteringConfig,
    LabelContext, LabeledCluster, Linkage, MotifSymmetry,
};
pub use kmeans::kmedoids_label;
pub use label_cache::{LabelCache, LabelCacheStats, MotifKey};
pub use dictionary::{parse_dictionary, write_dictionary, DictionaryError};
pub use flat::{namespace_from_tag, FlatMotifs};
pub use labeled::{LabeledDirectedMotif, LabeledMotif};
pub use labeling::{LabelingScheme, VertexLabel};
pub use lamofinder::{LaMoFinder, LaMoFinderConfig, LabelCheckpoint, SimilarityKernel};
pub use naive::{naive_label, NaiveOutcome};
pub use occ_similarity::{OccurrenceScorer, SoScratch};
