//! Flat-arena encoding of a labeled-motif dictionary.
//!
//! The serving layer (DESIGN.md §16) stores the pipeline's output as an
//! immutable artifact whose every collection is a contiguous slab
//! addressed by offsets — the PR 5/6 kernel discipline applied to the
//! *product* instead of the hot loops. [`FlatMotifs`] is that encoding
//! for `Vec<LabeledMotif>`: one arena per field family (edges, label
//! terms, occurrence vertices) plus `motif_count + 1` offset tables, so
//! a reader can slice any motif's data in O(1) without walking nested
//! `Vec`s, and a binary serializer can dump each slab as one
//! length-prefixed section.
//!
//! The conversion is exact and order-preserving in both directions:
//! `to_motifs(from_motifs(m)) == m` field for field, which is what lets
//! the serving artifact stand in for the live pipeline output.

use crate::labeled::LabeledMotif;
use crate::labeling::{LabelingScheme, VertexLabel};
use go_ontology::{Namespace, TermId};
use motif_finder::Occurrence;
use ppi_graph::{Graph, VertexId};

/// Namespace ⇄ stable byte tag (the artifact format's encoding).
fn namespace_tag(ns: Namespace) -> u8 {
    match ns {
        Namespace::MolecularFunction => 0,
        Namespace::BiologicalProcess => 1,
        Namespace::CellularComponent => 2,
    }
}

/// Inverse of [`namespace_tag`]; `None` for bytes no release has ever
/// written (reachable only through a corrupted artifact).
pub fn namespace_from_tag(tag: u8) -> Option<Namespace> {
    match tag {
        0 => Some(Namespace::MolecularFunction),
        1 => Some(Namespace::BiologicalProcess),
        2 => Some(Namespace::CellularComponent),
        _ => None,
    }
}

/// A labeled-motif dictionary flattened into shared slabs.
///
/// Invariants (checked by [`FlatMotifs::validate`], maintained by
/// [`FlatMotifs::from_motifs`]):
///
/// * every offset table has `motif_count + 1` entries, starts at 0,
///   is non-decreasing, and ends at the owning slab's length;
/// * `label_offsets` has `vertex_offsets[motif_count] + 1` entries
///   (one per pattern vertex, plus the terminator);
/// * every edge endpoint is `< size`, every occurrence slab length is a
///   multiple of the motif's size.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FlatMotifs {
    /// Pattern size `k` per motif.
    pub sizes: Vec<u32>,
    /// Namespace tag per motif (see [`namespace_from_tag`]).
    pub namespaces: Vec<u8>,
    /// Unlabeled parent-motif frequency per motif.
    pub frequencies: Vec<u64>,
    /// 1 when the motif carries a measured uniqueness.
    pub has_uniqueness: Vec<u8>,
    /// Uniqueness value per motif (ignored when the flag is 0; stored
    /// as 0.0 there so re-serialization is canonical).
    pub uniqueness: Vec<f64>,
    /// Edge-pair offsets: motif `m` owns `edges[edge_offsets[m] .. edge_offsets[m+1]]`.
    pub edge_offsets: Vec<u32>,
    /// Edge endpoints, two entries per edge, pattern-local ids.
    pub edges: Vec<u32>,
    /// Pattern-vertex offsets: motif `m` owns vertices
    /// `vertex_offsets[m] .. vertex_offsets[m+1]` of the label tables.
    pub vertex_offsets: Vec<u32>,
    /// Label-term offsets per pattern vertex (global vertex index).
    pub label_offsets: Vec<u32>,
    /// Label terms (GO term ids), sorted within each vertex slice.
    pub label_terms: Vec<u32>,
    /// Occurrence offsets counted in *occurrences*: motif `m` owns
    /// occurrence rows `occ_offsets[m] .. occ_offsets[m+1]`, each row
    /// `sizes[m]` vertex ids long.
    pub occ_offsets: Vec<u32>,
    /// Occurrence offsets counted in *vertex slots*: motif `m`'s rows
    /// live at `occ_vertices[occ_vertex_offsets[m] .. occ_vertex_offsets[m+1]]`.
    /// Derivable from `occ_offsets` × `sizes` but stored so row slicing
    /// is O(1) for mixed-size dictionaries; `validate` cross-checks the
    /// two tables.
    pub occ_vertex_offsets: Vec<u32>,
    /// Occurrence vertex ids, row-major.
    pub occ_vertices: Vec<u32>,
}

impl FlatMotifs {
    /// Flatten a labeled-motif dictionary.
    pub fn from_motifs(motifs: &[LabeledMotif]) -> FlatMotifs {
        let mut flat = FlatMotifs {
            edge_offsets: vec![0],
            vertex_offsets: vec![0],
            label_offsets: vec![0],
            occ_offsets: vec![0],
            occ_vertex_offsets: vec![0],
            ..FlatMotifs::default()
        };
        for m in motifs {
            flat.sizes.push(m.size() as u32);
            flat.namespaces.push(namespace_tag(m.namespace));
            flat.frequencies.push(m.motif_frequency as u64);
            flat.has_uniqueness.push(u8::from(m.uniqueness.is_some()));
            flat.uniqueness.push(m.uniqueness.unwrap_or(0.0));
            for e in m.pattern.edges() {
                flat.edges.push(e.0 .0);
                flat.edges.push(e.1 .0);
            }
            flat.edge_offsets.push((flat.edges.len() / 2) as u32);
            for label in &m.scheme.labels {
                flat.label_terms.extend(label.terms.iter().map(|t| t.0));
                flat.label_offsets.push(flat.label_terms.len() as u32);
            }
            flat.vertex_offsets
                .push(flat.label_offsets.len() as u32 - 1);
            for occ in &m.occurrences {
                flat.occ_vertices.extend(occ.vertices.iter().map(|v| v.0));
            }
            let prev = *flat.occ_offsets.last().unwrap_or(&0);
            flat.occ_offsets.push(prev + m.occurrences.len() as u32);
            flat.occ_vertex_offsets.push(flat.occ_vertices.len() as u32);
        }
        flat
    }

    /// Number of motifs.
    pub fn motif_count(&self) -> usize {
        self.sizes.len()
    }

    /// Pattern size of motif `m`.
    pub fn size(&self, m: usize) -> usize {
        self.sizes[m] as usize
    }

    /// Number of occurrences of motif `m`.
    pub fn occurrence_count(&self, m: usize) -> usize {
        (self.occ_offsets[m + 1] - self.occ_offsets[m]) as usize
    }

    /// The vertex-id row of occurrence `o` of motif `m`.
    pub fn occurrence(&self, m: usize, o: usize) -> &[u32] {
        let k = self.size(m);
        let base = self.occ_vertex_offsets[m] as usize + o * k;
        &self.occ_vertices[base..base + k]
    }

    /// Structural consistency check; returns the violated invariant.
    /// Deserialized artifacts run this before any slab is indexed, so a
    /// corrupted file surfaces as a typed error, never a panic.
    pub fn validate(&self) -> Result<(), &'static str> {
        let n = self.motif_count();
        if self.namespaces.len() != n
            || self.frequencies.len() != n
            || self.has_uniqueness.len() != n
            || self.uniqueness.len() != n
        {
            return Err("per-motif column lengths disagree");
        }
        if !self.edges.len().is_multiple_of(2) {
            return Err("edge slab length is odd");
        }
        check_offsets(&self.edge_offsets, n, self.edges.len() / 2)
            .map_err(|_| "edge offsets malformed")?;
        let occ_rows = self.occ_offsets.last().map_or(0, |&o| o as usize);
        check_offsets(&self.occ_offsets, n, occ_rows)
            .map_err(|_| "occurrence offsets malformed")?;
        check_offsets(&self.occ_vertex_offsets, n, self.occ_vertices.len())
            .map_err(|_| "occurrence vertex offsets malformed")?;
        check_offsets(&self.vertex_offsets, n, self.label_offsets.len().saturating_sub(1))
            .map_err(|_| "vertex offsets malformed")?;
        let total_vertices = *self.vertex_offsets.last().unwrap_or(&0) as usize;
        check_offsets(&self.label_offsets, total_vertices, self.label_terms.len())
            .map_err(|_| "label offsets malformed")?;
        for m in 0..n {
            let k = self.size(m);
            let slots =
                (self.occ_vertex_offsets[m + 1] - self.occ_vertex_offsets[m]) as usize;
            if slots != self.occurrence_count(m) * k {
                return Err("occurrence row and vertex-slot tables disagree");
            }
            if (self.vertex_offsets[m + 1] - self.vertex_offsets[m]) as usize != k {
                return Err("scheme length disagrees with motif size");
            }
            for &e in &self.edges
                [self.edge_offsets[m] as usize * 2..self.edge_offsets[m + 1] as usize * 2]
            {
                if e as usize >= k {
                    return Err("edge endpoint outside pattern");
                }
            }
        }
        Ok(())
    }

    /// Rebuild the nested representation. Requires a validated value
    /// (the conversion indexes by the offset tables).
    pub fn to_motifs(&self) -> Vec<LabeledMotif> {
        (0..self.motif_count())
            .map(|m| {
                let k = self.size(m);
                let edge_pairs: Vec<(u32, u32)> = self.edges
                    [self.edge_offsets[m] as usize * 2..self.edge_offsets[m + 1] as usize * 2]
                    .chunks_exact(2)
                    .map(|p| (p[0], p[1]))
                    .collect();
                let labels: Vec<VertexLabel> = (self.vertex_offsets[m]..self.vertex_offsets[m + 1])
                    .map(|v| {
                        let terms = self.label_terms
                            [self.label_offsets[v as usize] as usize
                                ..self.label_offsets[v as usize + 1] as usize]
                            .iter()
                            .map(|&t| TermId(t))
                            .collect();
                        VertexLabel::new(terms)
                    })
                    .collect();
                let occurrences: Vec<Occurrence> = (0..self.occurrence_count(m))
                    .map(|o| {
                        Occurrence::new(
                            self.occurrence(m, o).iter().map(|&v| VertexId(v)).collect(),
                        )
                    })
                    .collect();
                LabeledMotif {
                    pattern: Graph::from_edges(k, &edge_pairs),
                    namespace: namespace_from_tag(self.namespaces[m])
                        .unwrap_or(Namespace::BiologicalProcess),
                    scheme: LabelingScheme::new(labels),
                    occurrences,
                    motif_frequency: self.frequencies[m] as usize,
                    uniqueness: (self.has_uniqueness[m] != 0).then(|| self.uniqueness[m]),
                }
            })
            .collect()
    }
}

/// Offset-table shape check: `n + 1` entries, 0-anchored,
/// non-decreasing, terminated at `slab_len`.
fn check_offsets(offsets: &[u32], n: usize, slab_len: usize) -> Result<(), ()> {
    if offsets.len() != n + 1 || offsets.first() != Some(&0) {
        return Err(());
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(());
    }
    if offsets.last().copied().unwrap_or(0) as usize != slab_len {
        return Err(());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LabeledMotif> {
        vec![
            LabeledMotif {
                pattern: Graph::from_edges(3, &[(0, 1), (1, 2)]),
                namespace: Namespace::BiologicalProcess,
                scheme: LabelingScheme::new(vec![
                    VertexLabel::new(vec![TermId(4), TermId(2)]),
                    VertexLabel::unknown(),
                    VertexLabel::new(vec![TermId(7)]),
                ]),
                occurrences: vec![
                    Occurrence::new(vec![VertexId(10), VertexId(11), VertexId(12)]),
                    Occurrence::new(vec![VertexId(5), VertexId(6), VertexId(7)]),
                ],
                motif_frequency: 9,
                uniqueness: Some(0.75),
            },
            LabeledMotif {
                pattern: Graph::from_edges(2, &[(0, 1)]),
                namespace: Namespace::CellularComponent,
                scheme: LabelingScheme::all_unknown(2),
                occurrences: vec![Occurrence::new(vec![VertexId(0), VertexId(3)])],
                motif_frequency: 4,
                uniqueness: None,
            },
        ]
    }

    #[test]
    fn roundtrip_is_exact() {
        let motifs = sample();
        let flat = FlatMotifs::from_motifs(&motifs);
        flat.validate().unwrap();
        let back = flat.to_motifs();
        assert_eq!(back.len(), motifs.len());
        for (a, b) in motifs.iter().zip(&back) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.namespace, b.namespace);
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.occurrences, b.occurrences);
            assert_eq!(a.motif_frequency, b.motif_frequency);
            assert_eq!(a.uniqueness, b.uniqueness);
        }
        // Flattening the rebuilt dictionary is byte-identical too (the
        // canonical-form property the binary roundtrip test leans on).
        assert_eq!(flat, FlatMotifs::from_motifs(&back));
    }

    #[test]
    fn accessors_slice_the_arenas() {
        let flat = FlatMotifs::from_motifs(&sample());
        assert_eq!(flat.motif_count(), 2);
        assert_eq!(flat.size(0), 3);
        assert_eq!(flat.occurrence_count(0), 2);
        assert_eq!(flat.occurrence(0, 1), &[5, 6, 7]);
        assert_eq!(flat.occurrence(1, 0), &[0, 3]);
    }

    #[test]
    fn empty_dictionary_is_valid() {
        let flat = FlatMotifs::from_motifs(&[]);
        flat.validate().unwrap();
        assert_eq!(flat.motif_count(), 0);
        assert!(flat.to_motifs().is_empty());
    }

    #[test]
    fn validate_rejects_corrupted_offsets() {
        let mut flat = FlatMotifs::from_motifs(&sample());
        flat.occ_offsets[1] = 99;
        assert!(flat.validate().is_err());

        let mut flat = FlatMotifs::from_motifs(&sample());
        flat.edges[0] = 57; // endpoint outside the 3-vertex pattern
        assert!(flat.validate().is_err());

        let mut flat = FlatMotifs::from_motifs(&sample());
        flat.sizes[1] = 3; // scheme length no longer matches
        assert!(flat.validate().is_err());

        let mut flat = FlatMotifs::from_motifs(&sample());
        flat.uniqueness.pop();
        assert!(flat.validate().is_err());
    }

    #[test]
    fn namespace_tags_roundtrip() {
        for ns in Namespace::ALL {
            assert_eq!(namespace_from_tag(namespace_tag(ns)), Some(ns));
        }
        assert_eq!(namespace_from_tag(9), None);
    }
}
