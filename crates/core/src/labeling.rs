//! Labeling schemes: the objects LaMoFinder produces (Task 3).
//!
//! A [`LabelingScheme`] assigns each motif vertex a set of GO terms (or
//! "unknown"). A scheme *conforms* to an occurrence when every labeled
//! vertex's labels are the same as, or more general than, an annotation
//! of the corresponding protein (Problem Definition, Section 3). The
//! least-general merge of two schemes takes, per vertex, the lowest
//! common parents over the cross product of their label sets — the
//! operation behind Table 4 and Figure 4 — filtered to the informative
//! label vocabulary `T`.

use go_ontology::{Annotations, InformativeClasses, Ontology, ProteinId, TermId, TermSimilarity};
use motif_finder::Occurrence;

/// Per-vertex labels. An empty set plays the paper's "unknown" role.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VertexLabel {
    /// Sorted, deduplicated GO terms.
    pub terms: Vec<TermId>,
}

impl VertexLabel {
    /// Label with the given terms (sorted + deduplicated here).
    pub fn new(mut terms: Vec<TermId>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        VertexLabel { terms }
    }

    /// The "unknown" label.
    pub fn unknown() -> Self {
        VertexLabel { terms: Vec::new() }
    }

    /// Whether this vertex is unlabeled.
    pub fn is_unknown(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A full labeling scheme for a motif: one [`VertexLabel`] per pattern
/// vertex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabelingScheme {
    /// `labels[i]` labels pattern vertex `i`.
    pub labels: Vec<VertexLabel>,
}

impl LabelingScheme {
    /// Scheme from per-vertex labels.
    pub fn new(labels: Vec<VertexLabel>) -> Self {
        LabelingScheme { labels }
    }

    /// Scheme with every vertex unknown.
    pub fn all_unknown(k: usize) -> Self {
        LabelingScheme {
            labels: vec![VertexLabel::unknown(); k],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the scheme has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether every vertex is unknown.
    pub fn is_all_unknown(&self) -> bool {
        self.labels.iter().all(VertexLabel::is_unknown)
    }

    /// Conformance test (Problem Definition): every *labeled* vertex's
    /// every label must be the same as or an ancestor of at least one
    /// annotation of the corresponding protein. Unknown vertices do not
    /// constrain, and neither do proteins with no annotation *in the
    /// label's namespace* (the paper labels one GO branch at a time; a
    /// protein annotated only in another branch is "unannotated" for
    /// this run).
    pub fn conforms_to(
        &self,
        occurrence: &Occurrence,
        ontology: &Ontology,
        annotations: &Annotations,
    ) -> bool {
        debug_assert_eq!(self.labels.len(), occurrence.len());
        self.labels
            .iter()
            .zip(&occurrence.vertices)
            .all(|(label, &v)| {
                if label.is_unknown() {
                    return true;
                }
                let protein_terms = annotations.terms_of(ProteinId(v.0));
                label.terms.iter().all(|&t| {
                    let ns = ontology.namespace(t);
                    let mut in_ns = protein_terms
                        .iter()
                        .filter(|&&a| ontology.namespace(a) == ns)
                        .peekable();
                    if in_ns.peek().is_none() {
                        return true;
                    }
                    in_ns.any(|&a| ontology.is_same_or_ancestor(t, a))
                })
            })
    }

    /// Number of occurrences (from `pool`) this scheme conforms to.
    pub fn support(
        &self,
        pool: &[Occurrence],
        ontology: &Ontology,
        annotations: &Annotations,
    ) -> usize {
        pool.iter()
            .filter(|o| self.conforms_to(o, ontology, annotations))
            .count()
    }
}

/// Least-general merge of two label sets for one vertex: the lowest
/// common parents over the cross product, restricted to the label
/// vocabulary. An unknown side is dominated by the other (the paper's
/// rule for unannotated proteins).
pub fn merge_labels(
    a: &VertexLabel,
    b: &VertexLabel,
    sim: &TermSimilarity<'_>,
    vocabulary: &InformativeClasses,
) -> VertexLabel {
    if a.is_unknown() {
        return b.clone();
    }
    if b.is_unknown() {
        return a.clone();
    }
    let mut merged: Vec<TermId> = Vec::new();
    for &ta in &a.terms {
        for &tb in &b.terms {
            if let Some(lcp) = sim.lowest_common_parent(ta, tb) {
                merged.push(lcp);
            }
        }
    }
    merged.sort_unstable();
    merged.dedup();
    // Restrict to the vocabulary T (border informative FC and their
    // descendants); keep over-generalized terms out of the scheme.
    let filtered: Vec<TermId> = merged
        .iter()
        .copied()
        .filter(|&t| vocabulary.in_vocabulary(t))
        .collect();
    if filtered.is_empty() {
        // Everything generalized past the border: keep the raw common
        // parents so the stop rule can see the vertex is exhausted, but
        // mark nothing as vocabulary output. Callers filter at emission.
        VertexLabel::new(merged)
    } else {
        VertexLabel::new(filtered)
    }
}

/// Merge two full schemes vertex-wise.
pub fn merge_schemes(
    a: &LabelingScheme,
    b: &LabelingScheme,
    sim: &TermSimilarity<'_>,
    vocabulary: &InformativeClasses,
) -> LabelingScheme {
    debug_assert_eq!(a.len(), b.len());
    LabelingScheme::new(
        a.labels
            .iter()
            .zip(&b.labels)
            .map(|(la, lb)| merge_labels(la, lb, sim, vocabulary))
            .collect(),
    )
}

/// The initial scheme of a single occurrence: each vertex labeled with
/// its protein's direct annotations (restricted to one namespace is the
/// caller's choice — pass pre-filtered annotation lookups via
/// `terms_of`).
pub fn initial_scheme(
    occurrence: &Occurrence,
    terms_of: &dyn Fn(ProteinId) -> Vec<TermId>,
) -> LabelingScheme {
    LabelingScheme::new(
        occurrence
            .vertices
            .iter()
            .map(|&v| VertexLabel::new(terms_of(ProteinId(v.0))))
            .collect(),
    )
}

/// Final output filter: keep only vocabulary terms; a vertex with no
/// vocabulary term becomes unknown.
pub fn vocabulary_filter(scheme: &LabelingScheme, vocabulary: &InformativeClasses) -> LabelingScheme {
    LabelingScheme::new(
        scheme
            .labels
            .iter()
            .map(|l| {
                VertexLabel::new(
                    l.terms
                        .iter()
                        .copied()
                        .filter(|&t| vocabulary.in_vocabulary(t))
                        .collect(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{
        Annotations, InformativeConfig, Namespace, OntologyBuilder, Relation, TermWeights,
    };
    use ppi_graph::VertexId;

    /// root -> a -> {x, y}; root -> b. Informative threshold 2.
    /// Annotations: x:2, y:2, b:3, a:2 (direct) → informative: all but root.
    /// Border: a, b (x, y have informative ancestor a).
    struct Fixture {
        ontology: Ontology,
        annotations: Annotations,
    }

    fn fixture() -> Fixture {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let a = ob.add_term("GO:1", "a", Namespace::BiologicalProcess);
        let b = ob.add_term("GO:2", "b", Namespace::BiologicalProcess);
        let x = ob.add_term("GO:3", "x", Namespace::BiologicalProcess);
        let y = ob.add_term("GO:4", "y", Namespace::BiologicalProcess);
        ob.add_edge(a, root, Relation::IsA);
        ob.add_edge(b, root, Relation::IsA);
        ob.add_edge(x, a, Relation::IsA);
        ob.add_edge(y, a, Relation::IsA);
        let ontology = ob.build().unwrap();
        let mut annotations = Annotations::new(12, ontology.term_count());
        // Proteins 0,1 -> x; 2,3 -> y; 4,5,6 -> b; 7,8 -> a; 9..12 none.
        for p in 0..2 {
            annotations.annotate(ProteinId(p), x);
        }
        for p in 2..4 {
            annotations.annotate(ProteinId(p), y);
        }
        for p in 4..7 {
            annotations.annotate(ProteinId(p), b);
        }
        for p in 7..9 {
            annotations.annotate(ProteinId(p), a);
        }
        Fixture {
            ontology,
            annotations,
        }
    }

    fn informative(f: &Fixture) -> InformativeClasses {
        InformativeClasses::compute(
            &f.ontology,
            &f.annotations,
            InformativeConfig {
                min_direct: 2,
                ..Default::default()
            },
        )
    }

    #[test]
    fn conformance_allows_ancestor_labels() {
        let f = fixture();
        // Occurrence: proteins 0 (x) and 4 (b).
        let occ = Occurrence::new(vec![VertexId(0), VertexId(4)]);
        // Labels: (a, b): a is an ancestor of x → conforms.
        let scheme = LabelingScheme::new(vec![
            VertexLabel::new(vec![TermId(1)]),
            VertexLabel::new(vec![TermId(2)]),
        ]);
        assert!(scheme.conforms_to(&occ, &f.ontology, &f.annotations));
        // Labels: (b, b): b unrelated to x → fails.
        let bad = LabelingScheme::new(vec![
            VertexLabel::new(vec![TermId(2)]),
            VertexLabel::new(vec![TermId(2)]),
        ]);
        assert!(!bad.conforms_to(&occ, &f.ontology, &f.annotations));
    }

    #[test]
    fn unknown_vertices_and_unannotated_proteins_conform() {
        let f = fixture();
        let occ = Occurrence::new(vec![VertexId(9), VertexId(4)]);
        let scheme = LabelingScheme::new(vec![
            VertexLabel::new(vec![TermId(3)]), // label on unannotated protein 9
            VertexLabel::unknown(),            // unknown over protein 4
        ]);
        assert!(scheme.conforms_to(&occ, &f.ontology, &f.annotations));
    }

    #[test]
    fn merge_labels_takes_lowest_common_parent() {
        let f = fixture();
        let w = TermWeights::compute(&f.ontology, &f.annotations);
        let sim = TermSimilarity::new(&f.ontology, &w);
        let ic = informative(&f);
        // x ∪ y → a (their lowest common parent, in vocabulary).
        let m = merge_labels(
            &VertexLabel::new(vec![TermId(3)]),
            &VertexLabel::new(vec![TermId(4)]),
            &sim,
            &ic,
        );
        assert_eq!(m.terms, vec![TermId(1)]);
    }

    #[test]
    fn merge_labels_keeps_shared_term() {
        let f = fixture();
        let w = TermWeights::compute(&f.ontology, &f.annotations);
        let sim = TermSimilarity::new(&f.ontology, &w);
        let ic = informative(&f);
        let m = merge_labels(
            &VertexLabel::new(vec![TermId(3)]),
            &VertexLabel::new(vec![TermId(3)]),
            &sim,
            &ic,
        );
        assert_eq!(m.terms, vec![TermId(3)]);
    }

    #[test]
    fn merge_with_unknown_adopts_other_side() {
        let f = fixture();
        let w = TermWeights::compute(&f.ontology, &f.annotations);
        let sim = TermSimilarity::new(&f.ontology, &w);
        let ic = informative(&f);
        let lab = VertexLabel::new(vec![TermId(3)]);
        assert_eq!(merge_labels(&VertexLabel::unknown(), &lab, &sim, &ic), lab);
        assert_eq!(merge_labels(&lab, &VertexLabel::unknown(), &sim, &ic), lab);
    }

    #[test]
    fn merge_past_border_keeps_raw_parents() {
        let f = fixture();
        let w = TermWeights::compute(&f.ontology, &f.annotations);
        let sim = TermSimilarity::new(&f.ontology, &w);
        let ic = informative(&f);
        // x ∪ b → root (out of vocabulary): raw parent kept, but the
        // final vocabulary filter empties it.
        let m = merge_labels(
            &VertexLabel::new(vec![TermId(3)]),
            &VertexLabel::new(vec![TermId(2)]),
            &sim,
            &ic,
        );
        assert_eq!(m.terms, vec![TermId(0)]);
        let filtered = vocabulary_filter(&LabelingScheme::new(vec![m]), &ic);
        assert!(filtered.labels[0].is_unknown());
    }

    #[test]
    fn initial_scheme_reads_annotations() {
        let f = fixture();
        let occ = Occurrence::new(vec![VertexId(0), VertexId(9)]);
        let ann = &f.annotations;
        let scheme = initial_scheme(&occ, &|p| ann.terms_of(p).to_vec());
        assert_eq!(scheme.labels[0].terms, vec![TermId(3)]);
        assert!(scheme.labels[1].is_unknown());
    }

    #[test]
    fn support_counts_conforming_occurrences() {
        let f = fixture();
        // Scheme: (a, b). Conforms to (0,4), (2,5) but not (4,0).
        let scheme = LabelingScheme::new(vec![
            VertexLabel::new(vec![TermId(1)]),
            VertexLabel::new(vec![TermId(2)]),
        ]);
        let pool = vec![
            Occurrence::new(vec![VertexId(0), VertexId(4)]),
            Occurrence::new(vec![VertexId(2), VertexId(5)]),
            Occurrence::new(vec![VertexId(4), VertexId(0)]),
        ];
        assert_eq!(scheme.support(&pool, &f.ontology, &f.annotations), 2);
    }
}
