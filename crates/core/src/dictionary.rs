//! A persistent dictionary of labeled network motifs.
//!
//! Section 5 builds on Alon's vision of "a dictionary of network motifs
//! and their functional information" [3]. This module gives the labeled
//! motif set a stable, line-oriented text format so a mined dictionary
//! can be saved, shipped and reloaded without re-running the pipeline.
//!
//! Format (one motif per stanza, `#` comments allowed):
//!
//! ```text
//! [motif]
//! namespace: biological_process
//! size: 3
//! frequency: 214
//! uniqueness: 1.00
//! edges: 0-1 0-2 1-2
//! label 0: GO:0000123 GO:0000456
//! label 1: unknown
//! label 2: GO:0000123
//! occurrence: 17 4 902
//! occurrence: 3 55 2010
//! ```

use crate::labeled::LabeledMotif;
use crate::labeling::{LabelingScheme, VertexLabel};
use go_ontology::{Namespace, Ontology};
use motif_finder::Occurrence;
use ppi_graph::{Graph, VertexId};
use std::fmt;

/// Errors from [`parse_dictionary`].
#[derive(Debug, PartialEq, Eq)]
pub enum DictionaryError {
    /// A line outside any `[motif]` stanza, or an unknown field.
    UnexpectedLine { line_no: usize, content: String },
    /// A field failed to parse.
    BadField { line_no: usize, field: String },
    /// A stanza is missing a required field.
    MissingField { stanza: usize, field: &'static str },
    /// A GO accession is not in the ontology.
    UnknownTerm { line_no: usize, accession: String },
}

impl fmt::Display for DictionaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictionaryError::UnexpectedLine { line_no, content } => {
                write!(f, "line {line_no}: unexpected {content:?}")
            }
            DictionaryError::BadField { line_no, field } => {
                write!(f, "line {line_no}: malformed field {field}")
            }
            DictionaryError::MissingField { stanza, field } => {
                write!(f, "motif stanza #{stanza}: missing field {field}")
            }
            DictionaryError::UnknownTerm { line_no, accession } => {
                write!(f, "line {line_no}: unknown GO accession {accession}")
            }
        }
    }
}

impl std::error::Error for DictionaryError {}

/// Serialize labeled motifs to the dictionary format.
pub fn write_dictionary(motifs: &[LabeledMotif], ontology: &Ontology) -> String {
    let mut out = String::from("# LaMoFinder labeled network motif dictionary\n");
    for m in motifs {
        out.push_str("\n[motif]\n");
        out.push_str(&format!("namespace: {}\n", m.namespace.obo_name()));
        out.push_str(&format!("size: {}\n", m.size()));
        out.push_str(&format!("frequency: {}\n", m.motif_frequency));
        if let Some(u) = m.uniqueness {
            out.push_str(&format!("uniqueness: {u}\n"));
        }
        let edges: Vec<String> = m
            .pattern
            .edges()
            .map(|e| format!("{}-{}", e.0, e.1))
            .collect();
        out.push_str(&format!("edges: {}\n", edges.join(" ")));
        for (i, label) in m.scheme.labels.iter().enumerate() {
            if label.is_unknown() {
                out.push_str(&format!("label {i}: unknown\n"));
            } else {
                let accs: Vec<&str> = label
                    .terms
                    .iter()
                    .map(|&t| ontology.term(t).accession.as_str())
                    .collect();
                out.push_str(&format!("label {i}: {}\n", accs.join(" ")));
            }
        }
        for occ in &m.occurrences {
            let ids: Vec<String> = occ.vertices.iter().map(|v| v.0.to_string()).collect();
            out.push_str(&format!("occurrence: {}\n", ids.join(" ")));
        }
    }
    out
}

#[derive(Default)]
struct Stanza {
    namespace: Option<Namespace>,
    size: Option<usize>,
    frequency: Option<usize>,
    uniqueness: Option<f64>,
    edges: Option<Vec<(u32, u32)>>,
    labels: Vec<(usize, VertexLabel)>,
    occurrences: Vec<Vec<u32>>,
}

/// Parse a dictionary back into labeled motifs.
pub fn parse_dictionary(
    text: &str,
    ontology: &Ontology,
) -> Result<Vec<LabeledMotif>, DictionaryError> {
    let mut stanzas: Vec<Stanza> = Vec::new();
    let mut current: Option<Stanza> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[motif]" {
            if let Some(s) = current.take() {
                stanzas.push(s);
            }
            current = Some(Stanza::default());
            continue;
        }
        let Some(stanza) = current.as_mut() else {
            return Err(DictionaryError::UnexpectedLine {
                line_no,
                content: line.to_string(),
            });
        };
        let Some((key, value)) = line.split_once(':') else {
            return Err(DictionaryError::UnexpectedLine {
                line_no,
                content: line.to_string(),
            });
        };
        let value = value.trim();
        let bad = |field: &str| DictionaryError::BadField {
            line_no,
            field: field.to_string(),
        };
        match key.trim() {
            "namespace" => {
                stanza.namespace =
                    Some(Namespace::from_obo_name(value).ok_or_else(|| bad("namespace"))?);
            }
            "size" => stanza.size = Some(value.parse().map_err(|_| bad("size"))?),
            "frequency" => {
                stanza.frequency = Some(value.parse().map_err(|_| bad("frequency"))?)
            }
            "uniqueness" => {
                stanza.uniqueness = Some(value.parse().map_err(|_| bad("uniqueness"))?)
            }
            "edges" => {
                let mut edges = Vec::new();
                for part in value.split_whitespace() {
                    let (a, b) = part.split_once('-').ok_or_else(|| bad("edges"))?;
                    edges.push((
                        a.parse().map_err(|_| bad("edges"))?,
                        b.parse().map_err(|_| bad("edges"))?,
                    ));
                }
                stanza.edges = Some(edges);
            }
            k if k.starts_with("label ") => {
                let idx: usize = k[6..].trim().parse().map_err(|_| bad("label index"))?;
                let label = if value == "unknown" {
                    VertexLabel::unknown()
                } else {
                    let mut terms = Vec::new();
                    for acc in value.split_whitespace() {
                        let t = ontology.by_accession(acc).ok_or_else(|| {
                            DictionaryError::UnknownTerm {
                                line_no,
                                accession: acc.to_string(),
                            }
                        })?;
                        terms.push(t);
                    }
                    VertexLabel::new(terms)
                };
                stanza.labels.push((idx, label));
            }
            "occurrence" => {
                let mut ids = Vec::new();
                for part in value.split_whitespace() {
                    ids.push(part.parse().map_err(|_| bad("occurrence"))?);
                }
                stanza.occurrences.push(ids);
            }
            _ => {
                return Err(DictionaryError::UnexpectedLine {
                    line_no,
                    content: line.to_string(),
                })
            }
        }
    }
    if let Some(s) = current.take() {
        stanzas.push(s);
    }

    let mut motifs = Vec::with_capacity(stanzas.len());
    for (si, s) in stanzas.into_iter().enumerate() {
        let stanza_no = si + 1;
        let missing = |field: &'static str| DictionaryError::MissingField {
            stanza: stanza_no,
            field,
        };
        let namespace = s.namespace.ok_or_else(|| missing("namespace"))?;
        let size = s.size.ok_or_else(|| missing("size"))?;
        let frequency = s.frequency.ok_or_else(|| missing("frequency"))?;
        let edges = s.edges.ok_or_else(|| missing("edges"))?;
        let pattern = Graph::from_edges(size, &edges);
        let mut labels = vec![VertexLabel::unknown(); size];
        for (idx, label) in s.labels {
            if idx < size {
                labels[idx] = label;
            }
        }
        let occurrences: Vec<Occurrence> = s
            .occurrences
            .into_iter()
            .map(|ids| Occurrence::new(ids.into_iter().map(VertexId).collect()))
            .collect();
        motifs.push(LabeledMotif {
            pattern,
            namespace,
            scheme: LabelingScheme::new(labels),
            occurrences,
            motif_frequency: frequency,
            uniqueness: s.uniqueness,
        });
    }
    Ok(motifs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::OntologyBuilder;

    fn ontology() -> Ontology {
        let mut ob = OntologyBuilder::new();
        ob.add_term("GO:0000001", "alpha", Namespace::BiologicalProcess);
        ob.add_term("GO:0000002", "beta", Namespace::BiologicalProcess);
        ob.build().unwrap()
    }

    fn sample_motif() -> LabeledMotif {
        LabeledMotif {
            pattern: Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![
                VertexLabel::new(vec![go_ontology::TermId(0)]),
                VertexLabel::new(vec![go_ontology::TermId(0), go_ontology::TermId(1)]),
                VertexLabel::unknown(),
            ]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(10), VertexId(11), VertexId(12)]),
                Occurrence::new(vec![VertexId(20), VertexId(21), VertexId(22)]),
            ],
            motif_frequency: 42,
            uniqueness: Some(0.95),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let o = ontology();
        let motifs = vec![sample_motif()];
        let text = write_dictionary(&motifs, &o);
        let back = parse_dictionary(&text, &o).unwrap();
        assert_eq!(back.len(), 1);
        let m = &back[0];
        assert_eq!(m.size(), 3);
        assert_eq!(m.motif_frequency, 42);
        assert_eq!(m.uniqueness, Some(0.95));
        assert_eq!(m.namespace, Namespace::BiologicalProcess);
        assert_eq!(m.pattern.edge_count(), 3);
        assert_eq!(m.scheme, motifs[0].scheme);
        assert_eq!(m.occurrences, motifs[0].occurrences);
    }

    #[test]
    fn unknown_accession_is_reported() {
        let o = ontology();
        let text = "[motif]\nnamespace: biological_process\nsize: 1\nfrequency: 1\nedges: \nlabel 0: GO:9999999\n";
        let err = parse_dictionary(text, &o).unwrap_err();
        assert!(matches!(err, DictionaryError::UnknownTerm { .. }));
    }

    #[test]
    fn missing_field_is_reported() {
        let o = ontology();
        let text = "[motif]\nnamespace: biological_process\nsize: 2\nedges: 0-1\n";
        let err = parse_dictionary(text, &o).unwrap_err();
        assert_eq!(
            err,
            DictionaryError::MissingField {
                stanza: 1,
                field: "frequency"
            }
        );
    }

    #[test]
    fn stray_line_is_reported() {
        let o = ontology();
        let err = parse_dictionary("frequency: 3\n", &o).unwrap_err();
        assert!(matches!(err, DictionaryError::UnexpectedLine { .. }));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let o = ontology();
        let text = "# header\n\n[motif]\n# inner comment\nnamespace: biological_process\nsize: 2\nfrequency: 7\nedges: 0-1\n";
        let motifs = parse_dictionary(text, &o).unwrap();
        assert_eq!(motifs.len(), 1);
        assert_eq!(motifs[0].motif_frequency, 7);
        assert!(motifs[0].scheme.is_all_unknown());
    }
}
