//! The final product: labeled network motifs.

use crate::labeling::LabelingScheme;
use go_ontology::{Namespace, Ontology};
use motif_finder::Occurrence;
use ppi_graph::Graph;
use std::fmt::Write as _;

/// A network motif enriched with GO labels — the output of LaMoFinder
/// and the input to labeled-motif function prediction (Section 5).
#[derive(Clone, Debug)]
pub struct LabeledMotif {
    /// The topology (pattern vertices `0..k`).
    pub pattern: Graph,
    /// Which GO branch the labels come from.
    pub namespace: Namespace,
    /// The labeling scheme (vocabulary-filtered; empty label = unknown).
    pub scheme: LabelingScheme,
    /// Occurrences supporting the scheme, aligned to the pattern.
    pub occurrences: Vec<Occurrence>,
    /// Frequency of the *unlabeled* parent motif in the network.
    pub motif_frequency: usize,
    /// Uniqueness of the parent motif, when it was tested.
    pub uniqueness: Option<f64>,
}

impl LabeledMotif {
    /// Motif size.
    pub fn size(&self) -> usize {
        self.pattern.vertex_count()
    }

    /// Number of occurrences conforming to the scheme (the labeled
    /// motif's own frequency, `|g_labeled|` in Eq. 4).
    pub fn support(&self) -> usize {
        self.occurrences.len()
    }

    /// Human-readable rendering, used by the figure-7 style reports:
    /// one line per vertex with its labels, then the edge list.
    pub fn render(&self, ontology: &Ontology) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "labeled motif: size={} support={} namespace={}",
            self.size(),
            self.support(),
            self.namespace
        );
        for (i, label) in self.scheme.labels.iter().enumerate() {
            let names: Vec<&str> = label
                .terms
                .iter()
                .map(|&t| ontology.term(t).name.as_str())
                .collect();
            let rendered = if names.is_empty() {
                "unknown".to_string()
            } else {
                names.join(", ")
            };
            let _ = writeln!(out, "  v{i}: {rendered}");
        }
        let edges: Vec<String> = self
            .pattern
            .edges()
            .map(|e| format!("v{}-v{}", e.0, e.1))
            .collect();
        let _ = writeln!(out, "  edges: {}", edges.join(" "));
        out
    }
}

/// A *directed* labeled network motif — the paper's future-work
/// extension: the same labeling machinery applied to directed patterns
/// (gene regulatory networks), where vertex roles like
/// regulator/intermediate/target are distinguished by direction.
#[derive(Clone, Debug)]
pub struct LabeledDirectedMotif {
    /// The directed topology.
    pub pattern: ppi_graph::DiGraph,
    /// Which GO branch the labels come from.
    pub namespace: Namespace,
    /// The labeling scheme (vocabulary-filtered; empty label = unknown).
    pub scheme: LabelingScheme,
    /// Occurrences supporting the scheme, aligned to the pattern.
    pub occurrences: Vec<Occurrence>,
    /// Frequency of the unlabeled parent motif.
    pub motif_frequency: usize,
    /// Uniqueness of the parent motif.
    pub uniqueness: Option<f64>,
}

impl LabeledDirectedMotif {
    /// Motif size.
    pub fn size(&self) -> usize {
        self.pattern.vertex_count()
    }

    /// Number of occurrences conforming to the scheme.
    pub fn support(&self) -> usize {
        self.occurrences.len()
    }

    /// Human-readable rendering with directed arcs.
    pub fn render(&self, ontology: &Ontology) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "labeled directed motif: size={} support={} namespace={}",
            self.size(),
            self.support(),
            self.namespace
        );
        for (i, label) in self.scheme.labels.iter().enumerate() {
            let names: Vec<&str> = label
                .terms
                .iter()
                .map(|&t| ontology.term(t).name.as_str())
                .collect();
            let rendered = if names.is_empty() {
                "unknown".to_string()
            } else {
                names.join(", ")
            };
            let _ = writeln!(out, "  v{i}: {rendered}");
        }
        let arcs: Vec<String> = self
            .pattern
            .arcs()
            .map(|(s, t)| format!("v{s}->v{t}"))
            .collect();
        let _ = writeln!(out, "  arcs: {}", arcs.join(" "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::VertexLabel;
    use go_ontology::{OntologyBuilder, TermId};
    use ppi_graph::VertexId;

    #[test]
    fn render_names_and_unknowns() {
        let mut ob = OntologyBuilder::new();
        ob.add_term("GO:0", "splicing", Namespace::BiologicalProcess);
        let ontology = ob.build().unwrap();
        let lm = LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![
                VertexLabel::new(vec![TermId(0)]),
                VertexLabel::unknown(),
            ]),
            occurrences: vec![Occurrence::new(vec![VertexId(3), VertexId(4)])],
            motif_frequency: 5,
            uniqueness: Some(1.0),
        };
        let text = lm.render(&ontology);
        assert!(text.contains("v0: splicing"));
        assert!(text.contains("v1: unknown"));
        assert!(text.contains("edges: v0-v1"));
        assert_eq!(lm.support(), 1);
        assert_eq!(lm.size(), 2);
    }
}
