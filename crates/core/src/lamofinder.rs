//! The LaMoFinder driver: builds the per-namespace labeling context and
//! runs the clustering over every motif's occurrence set (Algorithm 1).

use crate::clustering::{
    cluster_occurrences_supervised, compute_frontier, resolve_threads, split_chunks,
    ClusteringConfig, LabelContext,
};
use crate::labeled::LabeledMotif;
use go_ontology::{
    Annotations, DenseSimPlanes, InformativeClasses, InformativeConfig, KernelStats, Namespace,
    Ontology, ProteinId, TermId, TermSimilarity, TermWeights,
};
use motif_finder::{Motif, Occurrence};
use par_util::{faultpoint, run_supervised, Interrupted, RunContext, WorkQueue, WorkerPanic};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which similarity implementation drives the labeling hot path.
///
/// Both produce byte-identical output (the dense kernels replay the
/// oracle's floating-point operations in the same order); the choice
/// only trades plane-build time and memory against per-pair hashing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SimilarityKernel {
    /// Precompute dense ST/SV planes once per namespace and read them
    /// with flat index arithmetic (default).
    #[default]
    Dense,
    /// Lock-and-hash memoization on first use, the original
    /// [`TermSimilarity`] path. Kept as the reference oracle.
    Memoized,
}

/// LaMoFinder configuration.
#[derive(Clone, Debug)]
pub struct LaMoFinderConfig {
    /// Which GO branch to label with (the paper runs all three in turn).
    pub namespace: Namespace,
    /// Informative-class parameters (threshold 30, border rule).
    pub informative: InformativeConfig,
    /// Clustering parameters (σ, stop rule, linkage).
    pub clustering: ClusteringConfig,
    /// Cap on occurrences considered per motif — the pairwise similarity
    /// stage is `O(|D|²)` (Section 3.2), so very frequent motifs are
    /// deterministically subsampled (evenly strided) to this many.
    pub max_occurrences: usize,
    /// Worker-thread budget for labeling (`0` = one per available core,
    /// mirroring `UniquenessConfig`). Motifs are labeled in parallel;
    /// with a single motif the budget moves to the pairwise-similarity
    /// rows inside the clustering instead. Output is byte-identical for
    /// any thread count.
    pub threads: usize,
    /// Similarity implementation for the SO hot path (default: dense
    /// precomputed planes). Output is identical either way.
    pub kernel: SimilarityKernel,
}

impl Default for LaMoFinderConfig {
    fn default() -> Self {
        LaMoFinderConfig {
            namespace: Namespace::BiologicalProcess,
            informative: InformativeConfig::default(),
            clustering: ClusteringConfig::default(),
            max_occurrences: 200,
            threads: 0,
            kernel: SimilarityKernel::default(),
        }
    }
}

/// A resumable labeling checkpoint: the labeled output of every motif
/// completed before the interruption, keyed by its index in the input
/// slice.
///
/// `Default` is the fresh-start checkpoint. Each motif is labeled as a
/// pure function of the finder's context and the motif itself, so
/// [`LaMoFinder::resume_label_motifs`] recomputes exactly the missing
/// indices and splices the results back in input order.
#[derive(Clone, Debug, Default)]
pub struct LabelCheckpoint {
    /// `(motif index, its labeled output)` for completed motifs, sorted
    /// by index.
    pub done: Vec<(usize, Vec<LabeledMotif>)>,
}

/// Labeled Motif Finder (the paper's contribution, Section 3).
///
/// Owns the derived GO machinery (weights, informative classes, border
/// frontier and per-protein namespace-filtered annotation lists) and
/// labels motifs against it.
pub struct LaMoFinder<'a> {
    ontology: &'a Ontology,
    annotations: &'a Annotations,
    config: LaMoFinderConfig,
    weights: TermWeights,
    informative: InformativeClasses,
    frontier: Vec<bool>,
    terms_by_protein: Vec<Vec<TermId>>,
    /// Kernel diagnostics of the most recent labeling run (plane
    /// dimensions and bytes, build ticks, oracle-fallback counts).
    last_kernel_stats: Mutex<KernelStats>,
    /// Completed dense kernel bundle, built once on first use. The
    /// bundle is a pure function of `(ontology, weights,
    /// terms_by_protein)` — all fixed for the finder's lifetime — so
    /// every labeling run reads identical plane content. Only finished
    /// builds are stored; a build cancelled mid-flight caches nothing.
    dense_cache: Mutex<Option<Arc<DenseSimPlanes>>>,
}

impl<'a> LaMoFinder<'a> {
    /// Build the labeling context for one namespace.
    pub fn new(
        ontology: &'a Ontology,
        annotations: &'a Annotations,
        config: LaMoFinderConfig,
    ) -> Self {
        let weights = TermWeights::compute(ontology, annotations);
        let informative = InformativeClasses::compute(ontology, annotations, config.informative);
        let frontier = compute_frontier(ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..annotations.protein_count())
            .map(|p| {
                annotations
                    .terms_of(ProteinId(p as u32))
                    .iter()
                    .copied()
                    .filter(|&t| ontology.namespace(t) == config.namespace)
                    .collect()
            })
            .collect();
        LaMoFinder {
            ontology,
            annotations,
            config,
            weights,
            informative,
            frontier,
            terms_by_protein,
            last_kernel_stats: Mutex::new(KernelStats::default()),
            dense_cache: Mutex::new(None),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LaMoFinderConfig {
        &self.config
    }

    /// Kernel diagnostics of the most recent labeling run: dense-plane
    /// dimensions, bytes and build ticks plus oracle-fallback and memo
    /// counts. Zeroed until a labeling entry point has run.
    pub fn kernel_stats(&self) -> KernelStats {
        *self.last_kernel_stats.lock()
    }

    /// Dense ST/SV kernels when the config selects them, built on first
    /// use and cached for the finder's lifetime (the bundle depends only
    /// on finder-fixed inputs, so a cache hit is byte-for-byte the same
    /// plane a rebuild would produce). `Ok(None)` means the run context
    /// tripped mid-build (or the config selects the memoized oracle,
    /// where `None` is the non-cancelled answer — callers distinguish
    /// via `run.should_stop()`); cancelled builds are not cached.
    fn build_dense(
        &self,
        run: &RunContext,
    ) -> Result<Option<Arc<DenseSimPlanes>>, WorkerPanic> {
        if self.config.kernel != SimilarityKernel::Dense {
            return Ok(None);
        }
        if let Some(planes) = self.dense_cache.lock().clone() {
            planes.reset_run_counters();
            return Ok(Some(planes));
        }
        let built = DenseSimPlanes::build(
            self.ontology,
            &self.weights,
            &self.terms_by_protein,
            resolve_threads(self.config.threads),
            run,
        )?;
        Ok(built.map(|planes| {
            let planes = Arc::new(planes);
            *self.dense_cache.lock() = Some(Arc::clone(&planes));
            planes
        }))
    }

    /// Fold this run's kernel diagnostics into `last_kernel_stats`.
    fn record_kernel_stats(&self, dense: Option<&DenseSimPlanes>, sim: &TermSimilarity<'_>) {
        let mut stats = sim.kernel_stats();
        if let Some(planes) = dense {
            stats = stats.merged(&planes.stats());
        }
        *self.last_kernel_stats.lock() = stats;
    }

    /// The derived term weights.
    pub fn weights(&self) -> &TermWeights {
        &self.weights
    }

    /// The derived informative / border classification.
    pub fn informative(&self) -> &InformativeClasses {
        &self.informative
    }

    /// The namespace-filtered annotation lists, indexed by protein.
    pub fn terms_by_protein(&self) -> &[Vec<TermId>] {
        &self.terms_by_protein
    }

    /// The annotation table the finder labels against.
    pub fn annotations(&self) -> &Annotations {
        self.annotations
    }

    /// Split the thread budget between the motif level and the pairwise
    /// similarity rows inside each clustering: with several motifs the
    /// coarse (motif) level takes every worker and the clustering runs
    /// serially inside each; a single motif moves the whole budget to
    /// the row level. Either way no more than `threads` workers run.
    fn thread_plan(&self, n_motifs: usize) -> (usize, ClusteringConfig) {
        let budget = resolve_threads(self.config.threads);
        let motif_threads = budget.min(n_motifs).max(1);
        let mut clustering = self.config.clustering.clone();
        clustering.threads = if motif_threads > 1 { 1 } else { budget };
        (motif_threads, clustering)
    }

    /// Fan `label` out over `motifs` with `motif_threads` scoped
    /// workers, concatenating the per-motif outputs in motif order — the
    /// same output the serial loop produces, for any thread count.
    fn label_parallel<T, F>(motif_threads: usize, n_motifs: usize, label: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> Vec<T> + Sync,
    {
        if motif_threads <= 1 {
            return (0..n_motifs).flat_map(&label).collect();
        }
        let indices: Vec<usize> = (0..n_motifs).collect();
        let chunks = split_chunks(&indices, motif_threads);
        let parts: Vec<Vec<(usize, Vec<T>)>> = crossbeam::scope(|scope| {
            let label = &label;
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk.iter().map(|&mi| (mi, label(mi))).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("labeling worker panicked"))
                .collect()
        })
        .expect("crossbeam scope fails only when a worker panicked");
        let mut keyed: Vec<(usize, Vec<T>)> = parts.into_iter().flatten().collect();
        keyed.sort_by_key(|&(mi, _)| mi);
        keyed.into_iter().flat_map(|(_, v)| v).collect()
    }

    /// Label every motif; returns all labeled motifs found.
    ///
    /// Legacy uninterruptible entry point: runs the supervised engine
    /// under a passive [`RunContext`].
    pub fn label_motifs(&self, motifs: &[Motif]) -> Vec<LabeledMotif> {
        self.label_motifs_supervised(motifs, &RunContext::unbounded())
            .expect("a passive context without injected faults never interrupts labeling")
    }

    /// Label every motif under `run`: cancellation or a worker panic
    /// returns [`Interrupted`] with a [`LabelCheckpoint`] of the motifs
    /// labeled so far.
    pub fn label_motifs_supervised(
        &self,
        motifs: &[Motif],
        run: &RunContext,
    ) -> Result<Vec<LabeledMotif>, Interrupted<LabelCheckpoint>> {
        self.resume_label_motifs(motifs, LabelCheckpoint::default(), run)
    }

    /// Resume labeling from `checkpoint` (use
    /// [`LabelCheckpoint::default`] for a fresh run). The checkpointable
    /// unit is one whole motif — each is a pure function of
    /// `(self, motif)` — so for any checkpoint produced by an
    /// interrupted run over the same inputs, the resumed output is
    /// byte-identical to an uninterrupted run at any thread count.
    pub fn resume_label_motifs(
        &self,
        motifs: &[Motif],
        checkpoint: LabelCheckpoint,
        run: &RunContext,
    ) -> Result<Vec<LabeledMotif>, Interrupted<LabelCheckpoint>> {
        let sim = TermSimilarity::new(self.ontology, &self.weights);
        // The dense planes come from the finder-lifetime cache (built
        // once; a pure function of the finder), so resuming from a
        // checkpoint sees the identical bundle. A context that trips
        // mid-build surfaces as a cancellation carrying the incoming
        // checkpoint, and caches nothing.
        let dense = match self.build_dense(run) {
            Ok(planes) => planes,
            Err(panic) => {
                return Err(Interrupted::WorkerPanicked { panic, checkpoint });
            }
        };
        if self.config.kernel == SimilarityKernel::Dense && dense.is_none() {
            return Err(Interrupted::Cancelled { checkpoint });
        }
        let ctx = LabelContext {
            ontology: self.ontology,
            sim: &sim,
            informative: &self.informative,
            terms_by_protein: &self.terms_by_protein,
            frontier: &self.frontier,
            dense: dense.as_deref(),
        };
        // The plan is derived from the *full* motif count, so a resumed
        // run splits the thread budget exactly as the original did.
        let (motif_threads, clustering) = self.thread_plan(motifs.len());
        let already: std::collections::HashSet<usize> =
            checkpoint.done.iter().map(|&(mi, _)| mi).collect();
        let todo: Vec<usize> = (0..motifs.len()).filter(|mi| !already.contains(mi)).collect();
        let chunks = split_chunks(&todo, motif_threads.min(todo.len()).max(1));
        let queue = WorkQueue::new(chunks.len());
        let completed: Mutex<Vec<(usize, Vec<LabeledMotif>)>> = Mutex::new(Vec::new());
        // A panic inside a nested clustering pool is already typed by
        // that pool; it is parked here and re-raised as this stage's
        // interruption (the outer pool only sees clean worker exits).
        let nested: Mutex<Option<WorkerPanic>> = Mutex::new(None);
        let outcome = run_supervised(chunks.len().max(1), "core.label_motifs", run, || {
            'chunks: while let Some(c) = queue.pull() {
                for &mi in &chunks[c] {
                    if run.should_stop() {
                        break 'chunks;
                    }
                    faultpoint!(run, "core.label_motif");
                    match self.label_one(&motifs[mi], &ctx, &clustering, run) {
                        Ok(out) => {
                            if run.should_stop() {
                                // The context tripped somewhere inside
                                // this motif: `out` may be partial, so
                                // it is conservatively discarded.
                                break 'chunks;
                            }
                            completed.lock().push((mi, out));
                        }
                        Err(panic) => {
                            let mut slot = nested.lock();
                            if slot.is_none() {
                                *slot = Some(panic);
                            }
                            drop(slot);
                            run.cancel();
                            break 'chunks;
                        }
                    }
                }
            }
        });
        let mut done = checkpoint.done;
        done.extend(completed.into_inner());
        done.sort_by_key(|&(mi, _)| mi);
        let checkpoint = LabelCheckpoint { done };
        self.record_kernel_stats(dense.as_deref(), &sim);
        if let Some(panic) = nested.into_inner().or(outcome.panic) {
            return Err(Interrupted::WorkerPanicked { panic, checkpoint });
        }
        if run.should_stop() {
            return Err(Interrupted::Cancelled { checkpoint });
        }
        Ok(checkpoint.done.into_iter().flat_map(|(_, v)| v).collect())
    }

    /// Label a single motif.
    pub fn label_motif(&self, motif: &Motif) -> Vec<LabeledMotif> {
        self.label_motifs(std::slice::from_ref(motif))
    }

    /// Label directed motifs (the future-work extension): same
    /// clustering, but with the pattern's *directed* symmetry, which
    /// distinguishes regulator/target roles that skeleton symmetry would
    /// merge.
    pub fn label_directed_motifs(
        &self,
        motifs: &[motif_finder::DirectedMotif],
    ) -> Vec<crate::labeled::LabeledDirectedMotif> {
        let sim = TermSimilarity::new(self.ontology, &self.weights);
        // Uninterruptible entry point: build under a passive context
        // (never cancelled, so `Ok(None)` only means "memoized config").
        let dense = self
            .build_dense(&RunContext::unbounded())
            .expect("a passive context without injected faults never interrupts the plane build");
        let ctx = LabelContext {
            ontology: self.ontology,
            sim: &sim,
            informative: &self.informative,
            terms_by_protein: &self.terms_by_protein,
            frontier: &self.frontier,
            dense: dense.as_deref(),
        };
        let (motif_threads, clustering) = self.thread_plan(motifs.len());
        let out = Self::label_parallel(motif_threads, motifs.len(), |mi| {
            self.label_directed_one(&motifs[mi], &ctx, &clustering)
        });
        self.record_kernel_stats(dense.as_deref(), &sim);
        out
    }

    fn label_one(
        &self,
        motif: &Motif,
        ctx: &LabelContext<'_>,
        clustering: &ClusteringConfig,
        run: &RunContext,
    ) -> Result<Vec<LabeledMotif>, WorkerPanic> {
        let occurrences = subsample(&motif.occurrences, self.config.max_occurrences);
        let clusters =
            cluster_occurrences_supervised(&motif.pattern, &occurrences, ctx, clustering, run)?;
        Ok(clusters
            .into_iter()
            .map(|cluster| {
                debug_assert!(cluster.occurrences.iter().all(|o| cluster
                    .scheme
                    .conforms_to(o, self.ontology, self.annotations)));
                LabeledMotif {
                    pattern: motif.pattern.clone(),
                    namespace: self.config.namespace,
                    scheme: cluster.scheme,
                    occurrences: cluster.occurrences,
                    motif_frequency: motif.frequency,
                    uniqueness: motif.uniqueness,
                }
            })
            .collect())
    }

    fn label_directed_one(
        &self,
        motif: &motif_finder::DirectedMotif,
        ctx: &LabelContext<'_>,
        clustering: &ClusteringConfig,
    ) -> Vec<crate::labeled::LabeledDirectedMotif> {
        let symmetry = crate::clustering::MotifSymmetry::directed(
            &motif.pattern,
            clustering.max_automorphisms,
        );
        let occurrences = subsample(&motif.occurrences, self.config.max_occurrences);
        let clusters =
            crate::clustering::cluster_occurrences_sym(&symmetry, &occurrences, ctx, clustering);
        clusters
            .into_iter()
            .map(|cluster| crate::labeled::LabeledDirectedMotif {
                pattern: motif.pattern.clone(),
                namespace: self.config.namespace,
                scheme: cluster.scheme,
                occurrences: cluster.occurrences,
                motif_frequency: motif.frequency,
                uniqueness: Some(motif.uniqueness),
            })
            .collect()
    }
}

/// Deterministic, evenly strided subsample of at most `cap` occurrences.
///
/// Indices are `⌊i·len/cap⌋` in exact integer arithmetic: strictly
/// increasing whenever `len > cap` (consecutive values differ by at
/// least `⌊len/cap⌋ ≥ 1`), always in bounds (`i ≤ cap−1` gives an index
/// `< len`). The previous float-stride version could collide or drift
/// under rounding on large inputs.
fn subsample(occurrences: &[Occurrence], cap: usize) -> Vec<Occurrence> {
    if occurrences.len() <= cap {
        return occurrences.to_vec();
    }
    let len = occurrences.len() as u128;
    (0..cap)
        .map(|i| occurrences[(i as u128 * len / cap as u128) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{OntologyBuilder, Relation};
    use ppi_graph::{Graph, VertexId};

    /// Build a tiny world: ontology root -> F -> {f1, f2}; network of 12
    /// triangle occurrences whose corners are annotated (f1, f1, f2).
    fn world() -> (Ontology, Annotations, Graph, Motif) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().unwrap();

        let n_tri = 12u32;
        let mut edges = Vec::new();
        let mut annotations = Annotations::new(3 * n_tri as usize + 4, ontology.term_count());
        let mut occs = Vec::new();
        for t in 0..n_tri {
            let b = t * 3;
            edges.extend_from_slice(&[(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
            annotations.annotate(ProteinId(b), f1);
            annotations.annotate(ProteinId(b + 1), f1);
            annotations.annotate(ProteinId(b + 2), f2);
            occs.push(Occurrence::new(vec![
                VertexId(b),
                VertexId(b + 1),
                VertexId(b + 2),
            ]));
        }
        // Padding proteins so F itself is informative (threshold 3).
        for p in 0..4 {
            annotations.annotate(ProteinId(3 * n_tri + p), f);
        }
        let network = Graph::from_edges(3 * n_tri as usize + 4, &edges);
        let motif = Motif {
            pattern: Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]),
            occurrences: occs,
            frequency: n_tri as usize,
            uniqueness: Some(1.0),
        };
        (ontology, annotations, network, motif)
    }

    fn config() -> LaMoFinderConfig {
        LaMoFinderConfig {
            informative: InformativeConfig {
                min_direct: 3,
                ..Default::default()
            },
            clustering: ClusteringConfig {
                sigma: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn labels_triangle_motif() {
        let (ontology, annotations, network, motif) = world();
        assert!(motif.validate_against(&network));
        let finder = LaMoFinder::new(&ontology, &annotations, config());
        let labeled = finder.label_motifs(&[motif]);
        assert_eq!(labeled.len(), 1, "{labeled:?}");
        let lm = &labeled[0];
        assert_eq!(lm.support(), 12);
        assert_eq!(lm.motif_frequency, 12);
        // The triangle is fully symmetric: after alignment, labels must
        // be two f1 vertices and one f2 vertex.
        let mut label_sets: Vec<Vec<TermId>> =
            lm.scheme.labels.iter().map(|l| l.terms.clone()).collect();
        label_sets.sort();
        assert_eq!(
            label_sets,
            vec![vec![TermId(2)], vec![TermId(2)], vec![TermId(3)]]
        );
    }

    #[test]
    fn subsample_caps_occurrences() {
        let occs: Vec<Occurrence> = (0..100)
            .map(|i| Occurrence::new(vec![VertexId(i)]))
            .collect();
        let s = subsample(&occs, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].vertices[0], VertexId(0));
        // Strided, not prefix-biased.
        assert!(s[9].vertices[0].0 >= 80);
        let all = subsample(&occs, 200);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn subsample_indices_are_strictly_increasing_and_collision_free() {
        // Sweep of (len, cap) pairs, including near-equal sizes and
        // large non-divisible ratios where float strides misbehave.
        for (len, cap) in [
            (3usize, 2usize),
            (7, 3),
            (100, 99),
            (101, 100),
            (1000, 7),
            (1 << 20, 999),
            ((1 << 20) + 3, (1 << 20) - 1),
        ] {
            let occs: Vec<Occurrence> = (0..len)
                .map(|i| Occurrence::new(vec![VertexId(i as u32)]))
                .collect();
            let s = subsample(&occs, cap);
            assert_eq!(s.len(), cap, "len {len} cap {cap}");
            let ids: Vec<u32> = s.iter().map(|o| o.vertices[0].0).collect();
            for w in ids.windows(2) {
                assert!(
                    w[0] < w[1],
                    "duplicate or out-of-order index for len {len} cap {cap}: {:?}",
                    &ids[..ids.len().min(20)]
                );
            }
            assert_eq!(ids[0], 0, "subsample keeps the first occurrence");
            assert!((ids[cap - 1] as usize) < len, "index in bounds");
        }
    }

    #[test]
    fn label_motifs_output_is_thread_count_invariant() {
        let (ontology, annotations, _network, motif) = world();
        // Two motifs so the motif-level fan-out actually engages.
        let motifs = vec![motif.clone(), motif];
        let label_with = |threads: usize| {
            let finder = LaMoFinder::new(
                &ontology,
                &annotations,
                LaMoFinderConfig {
                    threads,
                    ..config()
                },
            );
            finder.label_motifs(&motifs)
        };
        let serial = label_with(1);
        let parallel = label_with(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.occurrences, b.occurrences);
            assert_eq!(a.motif_frequency, b.motif_frequency);
        }
    }

    #[test]
    fn namespace_filter_excludes_other_branches() {
        let (ontology, mut annotations, _network, motif) = world();
        // Re-annotate protein 0 with a CC term only: it must be treated
        // as unannotated in the BP run. (CC term added to the ontology in
        // a fresh build would be cleaner; simply check the filter here.)
        let finder = LaMoFinder::new(&ontology, &annotations, config());
        assert_eq!(finder.terms_by_protein[0], vec![TermId(2)]);
        // All terms are BP in this fixture, so filtering keeps them.
        let labeled = finder.label_motifs(&[motif]);
        assert!(!labeled.is_empty());
        let _ = &mut annotations;
    }
}
