//! The LaMoFinder driver: builds the per-namespace labeling context and
//! runs the clustering over every motif's occurrence set (Algorithm 1).

use crate::clustering::{cluster_occurrences, compute_frontier, ClusteringConfig, LabelContext};
use crate::labeled::LabeledMotif;
use go_ontology::{
    Annotations, InformativeClasses, InformativeConfig, Namespace, Ontology, ProteinId, TermId,
    TermSimilarity, TermWeights,
};
use motif_finder::{Motif, Occurrence};

/// LaMoFinder configuration.
#[derive(Clone, Debug)]
pub struct LaMoFinderConfig {
    /// Which GO branch to label with (the paper runs all three in turn).
    pub namespace: Namespace,
    /// Informative-class parameters (threshold 30, border rule).
    pub informative: InformativeConfig,
    /// Clustering parameters (σ, stop rule, linkage).
    pub clustering: ClusteringConfig,
    /// Cap on occurrences considered per motif — the pairwise similarity
    /// stage is `O(|D|²)` (Section 3.2), so very frequent motifs are
    /// deterministically subsampled (evenly strided) to this many.
    pub max_occurrences: usize,
}

impl Default for LaMoFinderConfig {
    fn default() -> Self {
        LaMoFinderConfig {
            namespace: Namespace::BiologicalProcess,
            informative: InformativeConfig::default(),
            clustering: ClusteringConfig::default(),
            max_occurrences: 200,
        }
    }
}

/// Labeled Motif Finder (the paper's contribution, Section 3).
///
/// Owns the derived GO machinery (weights, informative classes, border
/// frontier and per-protein namespace-filtered annotation lists) and
/// labels motifs against it.
pub struct LaMoFinder<'a> {
    ontology: &'a Ontology,
    annotations: &'a Annotations,
    config: LaMoFinderConfig,
    weights: TermWeights,
    informative: InformativeClasses,
    frontier: Vec<bool>,
    terms_by_protein: Vec<Vec<TermId>>,
}

impl<'a> LaMoFinder<'a> {
    /// Build the labeling context for one namespace.
    pub fn new(
        ontology: &'a Ontology,
        annotations: &'a Annotations,
        config: LaMoFinderConfig,
    ) -> Self {
        let weights = TermWeights::compute(ontology, annotations);
        let informative = InformativeClasses::compute(ontology, annotations, config.informative);
        let frontier = compute_frontier(ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..annotations.protein_count())
            .map(|p| {
                annotations
                    .terms_of(ProteinId(p as u32))
                    .iter()
                    .copied()
                    .filter(|&t| ontology.namespace(t) == config.namespace)
                    .collect()
            })
            .collect();
        LaMoFinder {
            ontology,
            annotations,
            config,
            weights,
            informative,
            frontier,
            terms_by_protein,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LaMoFinderConfig {
        &self.config
    }

    /// The derived term weights.
    pub fn weights(&self) -> &TermWeights {
        &self.weights
    }

    /// The derived informative / border classification.
    pub fn informative(&self) -> &InformativeClasses {
        &self.informative
    }

    /// The annotation table the finder labels against.
    pub fn annotations(&self) -> &Annotations {
        self.annotations
    }

    /// Label every motif; returns all labeled motifs found.
    pub fn label_motifs(&self, motifs: &[Motif]) -> Vec<LabeledMotif> {
        let sim = TermSimilarity::new(self.ontology, &self.weights);
        let ctx = LabelContext {
            ontology: self.ontology,
            sim: &sim,
            informative: &self.informative,
            terms_by_protein: &self.terms_by_protein,
            frontier: &self.frontier,
        };
        let mut out = Vec::new();
        for motif in motifs {
            self.label_one(motif, &ctx, &mut out);
        }
        out
    }

    /// Label a single motif.
    pub fn label_motif(&self, motif: &Motif) -> Vec<LabeledMotif> {
        self.label_motifs(std::slice::from_ref(motif))
    }

    /// Label directed motifs (the future-work extension): same
    /// clustering, but with the pattern's *directed* symmetry, which
    /// distinguishes regulator/target roles that skeleton symmetry would
    /// merge.
    pub fn label_directed_motifs(
        &self,
        motifs: &[motif_finder::DirectedMotif],
    ) -> Vec<crate::labeled::LabeledDirectedMotif> {
        let sim = TermSimilarity::new(self.ontology, &self.weights);
        let ctx = LabelContext {
            ontology: self.ontology,
            sim: &sim,
            informative: &self.informative,
            terms_by_protein: &self.terms_by_protein,
            frontier: &self.frontier,
        };
        let mut out = Vec::new();
        for motif in motifs {
            let symmetry = crate::clustering::MotifSymmetry::directed(
                &motif.pattern,
                self.config.clustering.max_automorphisms,
            );
            let occurrences = subsample(&motif.occurrences, self.config.max_occurrences);
            let clusters = crate::clustering::cluster_occurrences_sym(
                &symmetry,
                &occurrences,
                &ctx,
                &self.config.clustering,
            );
            for cluster in clusters {
                out.push(crate::labeled::LabeledDirectedMotif {
                    pattern: motif.pattern.clone(),
                    namespace: self.config.namespace,
                    scheme: cluster.scheme,
                    occurrences: cluster.occurrences,
                    motif_frequency: motif.frequency,
                    uniqueness: Some(motif.uniqueness),
                });
            }
        }
        out
    }

    fn label_one(&self, motif: &Motif, ctx: &LabelContext<'_>, out: &mut Vec<LabeledMotif>) {
        let occurrences = subsample(&motif.occurrences, self.config.max_occurrences);
        let clusters =
            cluster_occurrences(&motif.pattern, &occurrences, ctx, &self.config.clustering);
        for cluster in clusters {
            debug_assert!(cluster.occurrences.iter().all(|o| cluster
                .scheme
                .conforms_to(o, self.ontology, self.annotations)));
            out.push(LabeledMotif {
                pattern: motif.pattern.clone(),
                namespace: self.config.namespace,
                scheme: cluster.scheme,
                occurrences: cluster.occurrences,
                motif_frequency: motif.frequency,
                uniqueness: motif.uniqueness,
            });
        }
    }
}

/// Deterministic, evenly strided subsample of at most `cap` occurrences.
fn subsample(occurrences: &[Occurrence], cap: usize) -> Vec<Occurrence> {
    if occurrences.len() <= cap {
        return occurrences.to_vec();
    }
    let stride = occurrences.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| occurrences[(i as f64 * stride) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{OntologyBuilder, Relation};
    use ppi_graph::{Graph, VertexId};

    /// Build a tiny world: ontology root -> F -> {f1, f2}; network of 12
    /// triangle occurrences whose corners are annotated (f1, f1, f2).
    fn world() -> (Ontology, Annotations, Graph, Motif) {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().unwrap();

        let n_tri = 12u32;
        let mut edges = Vec::new();
        let mut annotations = Annotations::new(3 * n_tri as usize + 4, ontology.term_count());
        let mut occs = Vec::new();
        for t in 0..n_tri {
            let b = t * 3;
            edges.extend_from_slice(&[(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
            annotations.annotate(ProteinId(b), f1);
            annotations.annotate(ProteinId(b + 1), f1);
            annotations.annotate(ProteinId(b + 2), f2);
            occs.push(Occurrence::new(vec![
                VertexId(b),
                VertexId(b + 1),
                VertexId(b + 2),
            ]));
        }
        // Padding proteins so F itself is informative (threshold 3).
        for p in 0..4 {
            annotations.annotate(ProteinId(3 * n_tri + p), f);
        }
        let network = Graph::from_edges(3 * n_tri as usize + 4, &edges);
        let motif = Motif {
            pattern: Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]),
            occurrences: occs,
            frequency: n_tri as usize,
            uniqueness: Some(1.0),
        };
        (ontology, annotations, network, motif)
    }

    fn config() -> LaMoFinderConfig {
        LaMoFinderConfig {
            informative: InformativeConfig {
                min_direct: 3,
                ..Default::default()
            },
            clustering: ClusteringConfig {
                sigma: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn labels_triangle_motif() {
        let (ontology, annotations, network, motif) = world();
        assert!(motif.validate_against(&network));
        let finder = LaMoFinder::new(&ontology, &annotations, config());
        let labeled = finder.label_motifs(&[motif]);
        assert_eq!(labeled.len(), 1, "{labeled:?}");
        let lm = &labeled[0];
        assert_eq!(lm.support(), 12);
        assert_eq!(lm.motif_frequency, 12);
        // The triangle is fully symmetric: after alignment, labels must
        // be two f1 vertices and one f2 vertex.
        let mut label_sets: Vec<Vec<TermId>> =
            lm.scheme.labels.iter().map(|l| l.terms.clone()).collect();
        label_sets.sort();
        assert_eq!(
            label_sets,
            vec![vec![TermId(2)], vec![TermId(2)], vec![TermId(3)]]
        );
    }

    #[test]
    fn subsample_caps_occurrences() {
        let occs: Vec<Occurrence> = (0..100)
            .map(|i| Occurrence::new(vec![VertexId(i)]))
            .collect();
        let s = subsample(&occs, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].vertices[0], VertexId(0));
        // Strided, not prefix-biased.
        assert!(s[9].vertices[0].0 >= 80);
        let all = subsample(&occs, 200);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn namespace_filter_excludes_other_branches() {
        let (ontology, mut annotations, _network, motif) = world();
        // Re-annotate protein 0 with a CC term only: it must be treated
        // as unannotated in the BP run. (CC term added to the ontology in
        // a fresh build would be cleaner; simply check the filter here.)
        let finder = LaMoFinder::new(&ontology, &annotations, config());
        assert_eq!(finder.terms_by_protein[0], vec![TermId(2)]);
        // All terms are BP in this fixture, so filtering keeps them.
        let labeled = finder.label_motifs(&[motif]);
        assert!(!labeled.is_empty());
        let _ = &mut annotations;
    }
}
