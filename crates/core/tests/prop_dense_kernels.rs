//! Property-based byte-identity tests for the dense labeling path:
//! running the full pipeline with [`SimilarityKernel::Dense`] must equal
//! the memoized-oracle run bit for bit — the SO matrix entry-wise at
//! thread counts {1, 2, 4}, and the end-to-end labeled output.

use go_ontology::{
    Annotations, DenseSimPlanes, InformativeConfig, Namespace, Ontology, OntologyBuilder,
    ProteinId, Relation, TermId, TermSimilarity, TermWeights,
};
use lamofinder::{
    so_matrix, ClusteringConfig, LaMoFinder, LaMoFinderConfig, MotifSymmetry, OccurrenceScorer,
    SimilarityKernel,
};
use motif_finder::{Motif, Occurrence};
use par_util::RunContext;
use ppi_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Random world: chain-DAG ontology, random annotations and triangle
/// occurrences — triangles so a non-singleton orbit (all three positions
/// interchange) exercises the flat-assignment path.
#[derive(Debug, Clone)]
struct World {
    terms: usize,
    parent_seed: Vec<u32>,
    protein_terms: Vec<Vec<u32>>,
    occ_triples: Vec<(u32, u32, u32)>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        5usize..14,
        proptest::collection::vec(any::<u32>(), 16),
        proptest::collection::vec(proptest::collection::vec(0u32..14, 0..4), 9..24),
        proptest::collection::vec((0u32..24, 0u32..24, 0u32..24), 3..12),
    )
        .prop_map(|(terms, parent_seed, protein_terms, occ_triples)| World {
            terms,
            parent_seed,
            protein_terms,
            occ_triples,
        })
}

fn build(w: &World) -> (Ontology, Annotations, Vec<Occurrence>) {
    let mut b = OntologyBuilder::new();
    for i in 0..w.terms {
        b.add_term(format!("GO:{i}"), format!("t{i}"), Namespace::BiologicalProcess);
    }
    for i in 1..w.terms {
        let p = (w.parent_seed[i % w.parent_seed.len()] as usize) % i;
        b.add_edge(TermId(i as u32), TermId(p as u32), Relation::IsA);
    }
    let ontology = b.build().unwrap();
    let n = w.protein_terms.len();
    let mut ann = Annotations::new(n, w.terms);
    for (p, terms) in w.protein_terms.iter().enumerate() {
        for &t in terms {
            ann.annotate(ProteinId(p as u32), TermId(t % w.terms as u32));
        }
    }
    let occs: Vec<Occurrence> = w
        .occ_triples
        .iter()
        .map(|&(a, b, c)| (a % n as u32, b % n as u32, c % n as u32))
        .filter(|&(a, b, c)| a != b && b != c && a != c)
        .map(|(a, b, c)| Occurrence::new(vec![VertexId(a), VertexId(b), VertexId(c)]))
        .collect();
    (ontology, ann, occs)
}

fn terms_by_protein(ann: &Annotations) -> Vec<Vec<TermId>> {
    (0..ann.protein_count())
        .map(|p| ann.terms_of(ProteinId(p as u32)).to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_so_matrix_equals_memoized_at_every_thread_count(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        if occs.is_empty() {
            return Ok(());
        }
        let weights = TermWeights::compute(&ontology, &ann);
        let sim = TermSimilarity::new(&ontology, &weights);
        let lists = terms_by_protein(&ann);
        let planes = DenseSimPlanes::build(
            &ontology, &weights, &lists, 2, &RunContext::unbounded(),
        )
        .expect("no faults injected")
        .expect("passive context never cancels");
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let symmetry = MotifSymmetry::undirected(&pattern, 64);
        let run = RunContext::unbounded();

        let matrix = |dense: bool, threads: usize| {
            let mut scorer = OccurrenceScorer::from_orbits(
                symmetry.orbits.clone(),
                symmetry.size,
                &sim,
                &lists,
            );
            if dense {
                scorer = scorer.with_dense(&planes);
                scorer.precompute_sv_plane(&occs, &run);
            }
            so_matrix(&scorer, &occs, threads, &run).expect("no faults injected")
        };

        let reference = matrix(false, 1);
        for threads in [1usize, 2, 4] {
            let dense = matrix(true, threads);
            for (i, (dr, rr)) in dense.iter().zip(&reference).enumerate() {
                for (j, (d, r)) in dr.iter().zip(rr).enumerate() {
                    prop_assert_eq!(
                        d.to_bits(),
                        r.to_bits(),
                        "SO[{}][{}] at {} threads: {} vs {}",
                        i, j, threads, d, r
                    );
                }
            }
        }
    }

    #[test]
    fn dense_label_motifs_equals_memoized(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        if occs.is_empty() {
            return Ok(());
        }
        let pattern = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let motifs = vec![Motif {
            pattern,
            occurrences: occs.clone(),
            frequency: occs.len(),
            uniqueness: None,
        }];
        let label = |kernel: SimilarityKernel, threads: usize| {
            let finder = LaMoFinder::new(&ontology, &ann, LaMoFinderConfig {
                informative: InformativeConfig {
                    min_direct: 1,
                    ..Default::default()
                },
                clustering: ClusteringConfig {
                    sigma: 2,
                    ..Default::default()
                },
                threads,
                kernel,
                ..Default::default()
            });
            finder.label_motifs(&motifs)
        };
        let memoized = label(SimilarityKernel::Memoized, 1);
        for threads in [1usize, 2, 4] {
            let dense = label(SimilarityKernel::Dense, threads);
            prop_assert_eq!(memoized.len(), dense.len());
            for (a, b) in memoized.iter().zip(&dense) {
                prop_assert_eq!(&a.scheme, &b.scheme);
                prop_assert_eq!(&a.occurrences, &b.occurrences);
                prop_assert_eq!(a.motif_frequency, b.motif_frequency);
            }
        }
    }
}
