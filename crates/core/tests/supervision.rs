//! Interruption determinism for supervised labeling: a labeling run
//! cancelled at any work-tick budget and resumed from its
//! `LabelCheckpoint` must produce byte-identical output to an
//! uninterrupted run, at every thread count; injected worker panics (at
//! the motif level and inside the similarity rows) surface as typed
//! errors whose checkpoints resume just as cleanly.

use go_ontology::{
    Annotations, InformativeConfig, Namespace, Ontology, OntologyBuilder, ProteinId, Relation,
};
use lamofinder::{ClusteringConfig, LaMoFinder, LaMoFinderConfig, LabelCheckpoint, LabeledMotif};
use motif_finder::{Motif, Occurrence};
use par_util::{FaultAction, FaultPlan, Interrupted, RunContext};
use ppi_graph::{Graph, VertexId};

/// Tiny world: ontology root -> F -> {f1, f2}; 12 triangle occurrences
/// whose corners are annotated (f1, f1, f2) — the `lamofinder` unit-test
/// fixture, rebuilt here for the integration surface.
fn world() -> (Ontology, Annotations, Motif) {
    let mut ob = OntologyBuilder::new();
    let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
    let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
    let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
    let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
    ob.add_edge(f, root, Relation::IsA);
    ob.add_edge(f1, f, Relation::IsA);
    ob.add_edge(f2, f, Relation::IsA);
    let ontology = ob.build().expect("the fixture ontology is well-formed");

    let n_tri = 12u32;
    let mut annotations = Annotations::new(3 * n_tri as usize + 4, ontology.term_count());
    let mut occs = Vec::new();
    for t in 0..n_tri {
        let b = t * 3;
        annotations.annotate(ProteinId(b), f1);
        annotations.annotate(ProteinId(b + 1), f1);
        annotations.annotate(ProteinId(b + 2), f2);
        occs.push(Occurrence::new(vec![
            VertexId(b),
            VertexId(b + 1),
            VertexId(b + 2),
        ]));
    }
    // Padding proteins so F itself is informative (threshold 3).
    for p in 0..4 {
        annotations.annotate(ProteinId(3 * n_tri + p), f);
    }
    let motif = Motif {
        pattern: Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]),
        occurrences: occs,
        frequency: n_tri as usize,
        uniqueness: Some(1.0),
    };
    (ontology, annotations, motif)
}

fn config(threads: usize) -> LaMoFinderConfig {
    LaMoFinderConfig {
        informative: InformativeConfig {
            min_direct: 3,
            ..Default::default()
        },
        clustering: ClusteringConfig {
            sigma: 5,
            ..Default::default()
        },
        threads,
        ..Default::default()
    }
}

/// Several motifs so the motif-level fan-out and the per-motif
/// checkpoint both engage (occurrence order varies per motif).
fn workload_motifs(base: &Motif) -> Vec<Motif> {
    let reversed = Motif {
        occurrences: base.occurrences.iter().rev().cloned().collect(),
        ..base.clone()
    };
    vec![base.clone(), reversed, base.clone()]
}

/// Full byte-level equality of two labeled-motif lists.
fn assert_labels_identical(a: &[LabeledMotif], b: &[LabeledMotif], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: labeled count");
    for (i, (la, lb)) in a.iter().zip(b).enumerate() {
        assert_eq!(la.pattern, lb.pattern, "{what}: motif {i} pattern");
        assert_eq!(la.namespace, lb.namespace, "{what}: motif {i} namespace");
        assert_eq!(la.scheme, lb.scheme, "{what}: motif {i} scheme");
        assert_eq!(la.occurrences, lb.occurrences, "{what}: motif {i} occurrences");
        assert_eq!(
            la.motif_frequency, lb.motif_frequency,
            "{what}: motif {i} frequency"
        );
        assert_eq!(
            la.uniqueness.map(f64::to_bits),
            lb.uniqueness.map(f64::to_bits),
            "{what}: motif {i} uniqueness"
        );
    }
}

#[test]
fn cancel_sweep_and_resume_is_byte_identical_across_threads() {
    let (ontology, annotations, motif) = world();
    let motifs = workload_motifs(&motif);
    let reference =
        LaMoFinder::new(&ontology, &annotations, config(1)).label_motifs(&motifs);
    assert!(!reference.is_empty(), "workload must label motifs");

    // Total tick volume of an uninterrupted run sizes the sweep.
    let metered = RunContext::metered();
    LaMoFinder::new(&ontology, &annotations, config(1))
        .label_motifs_supervised(&motifs, &metered)
        .expect("a metered context never trips, so labeling completes");
    let total = metered.ticks_spent();
    assert!(total > 0, "labeling must spend work ticks");

    let step = (total / 16).max(1);
    for threads in [1usize, 2, 4] {
        let finder = LaMoFinder::new(&ontology, &annotations, config(threads));
        let mut interrupted_runs = 0;
        let mut t = 0;
        while t <= total + step {
            let what = format!("threads={threads} budget={t}");
            let labeled = match finder
                .label_motifs_supervised(&motifs, &RunContext::with_tick_budget(t))
            {
                Ok(labeled) => labeled,
                Err(Interrupted::Cancelled { checkpoint }) => {
                    interrupted_runs += 1;
                    finder
                        .resume_label_motifs(&motifs, checkpoint, &RunContext::unbounded())
                        .unwrap_or_else(|_| {
                            panic!("{what}: unbounded resume must complete")
                        })
                }
                Err(Interrupted::WorkerPanicked { panic, .. }) => {
                    panic!("{what}: no fault was injected, yet a worker panicked: {panic}")
                }
            };
            assert_labels_identical(&reference, &labeled, &what);
            t += step;
        }
        assert!(
            interrupted_runs > 0,
            "threads={threads}: the sweep must actually interrupt some runs"
        );
    }
}

#[test]
fn budget_zero_interrupts_before_any_motif() {
    let (ontology, annotations, motif) = world();
    let motifs = workload_motifs(&motif);
    let finder = LaMoFinder::new(&ontology, &annotations, config(2));
    let err = finder
        .label_motifs_supervised(&motifs, &RunContext::with_tick_budget(0))
        .expect_err("a zero budget trips at the first tick");
    match err {
        Interrupted::Cancelled { checkpoint } => {
            assert!(checkpoint.done.is_empty(), "no motif completed");
        }
        Interrupted::WorkerPanicked { panic, .. } => {
            panic!("no fault injected, yet a worker panicked: {panic}")
        }
    }
}

#[test]
fn injected_worker_panic_is_typed_and_checkpoint_resumes() {
    let (ontology, annotations, motif) = world();
    let motifs = workload_motifs(&motif);
    let reference =
        LaMoFinder::new(&ontology, &annotations, config(1)).label_motifs(&motifs);

    // Hits are 0-based: arm 0 fires at the site's first execution.
    for (site, hit, threads) in [
        ("core.label_motif", 0u64, 1usize),
        ("core.label_motif", 2, 4),
        ("core.so_row", 3, 1),
        ("core.so_row", 1, 2),
    ] {
        let plan = FaultPlan::new().inject(site, hit, FaultAction::Panic);
        let ctx = RunContext::unbounded().with_faults(plan);
        let finder = LaMoFinder::new(&ontology, &annotations, config(threads));
        let err = finder
            .label_motifs_supervised(&motifs, &ctx)
            .expect_err("the injected panic must interrupt the run");
        let checkpoint = match err {
            Interrupted::WorkerPanicked { panic, checkpoint } => {
                assert!(
                    panic.detail.contains(site),
                    "panic detail names the site: {panic}"
                );
                checkpoint
            }
            Interrupted::Cancelled { .. } => {
                panic!("site {site}: expected a typed worker panic, got plain cancellation")
            }
        };
        let labeled = finder
            .resume_label_motifs(&motifs, checkpoint, &RunContext::unbounded())
            .expect("resume after a contained panic completes");
        assert_labels_identical(&reference, &labeled, &format!("panic at {site} hit {hit}"));
    }
}

#[test]
fn checkpoint_resume_recomputes_only_missing_motifs() {
    let (ontology, annotations, motif) = world();
    let motifs = workload_motifs(&motif);
    let finder = LaMoFinder::new(&ontology, &annotations, config(1));
    let reference = finder.label_motifs(&motifs);

    // A checkpoint holding motif 1 only: the resume must splice it back
    // untouched while recomputing motifs 0 and 2 in input order.
    let full = finder
        .label_motifs_supervised(&motifs, &RunContext::unbounded())
        .expect("passive labeling completes");
    assert_labels_identical(&reference, &full, "passive run");
    let per_motif: Vec<LabeledMotif> = finder.label_motifs(&motifs[1..2]);
    let checkpoint = LabelCheckpoint {
        done: vec![(1, per_motif)],
    };
    let resumed = finder
        .resume_label_motifs(&motifs, checkpoint, &RunContext::unbounded())
        .expect("resume from a partial checkpoint completes");
    assert_labels_identical(&reference, &resumed, "resume from partial checkpoint");
}
