//! Property-based tests for the labeling core: conformance invariants of
//! the clustering output over randomized worlds.

use go_ontology::{
    Annotations, InformativeClasses, InformativeConfig, Namespace, Ontology, OntologyBuilder,
    ProteinId, Relation, TermId, TermSimilarity, TermWeights,
};
use lamofinder::{
    cluster_occurrences, compute_frontier, ClusteringConfig, LaMoFinder, LaMoFinderConfig,
    LabelContext, LabelingScheme, VertexLabel,
};
use motif_finder::{Motif, Occurrence};
use ppi_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Random world: chain-of-`n` ontology DAG, `p` proteins with random
/// annotations, and a set of edge occurrences over those proteins.
#[derive(Debug, Clone)]
struct World {
    terms: usize,
    parent_seed: Vec<u32>,
    protein_terms: Vec<Vec<u32>>,
    occ_pairs: Vec<(u32, u32)>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (
        5usize..14,
        proptest::collection::vec(any::<u32>(), 16),
        proptest::collection::vec(proptest::collection::vec(0u32..14, 0..4), 8..24),
        proptest::collection::vec((0u32..24, 0u32..24), 3..12),
    )
        .prop_map(|(terms, parent_seed, protein_terms, occ_pairs)| World {
            terms,
            parent_seed,
            protein_terms,
            occ_pairs,
        })
}

fn build(w: &World) -> (Ontology, Annotations, Vec<Occurrence>) {
    let mut b = OntologyBuilder::new();
    for i in 0..w.terms {
        b.add_term(format!("GO:{i}"), format!("t{i}"), Namespace::BiologicalProcess);
    }
    for i in 1..w.terms {
        let p = (w.parent_seed[i % w.parent_seed.len()] as usize) % i;
        b.add_edge(TermId(i as u32), TermId(p as u32), Relation::IsA);
    }
    let ontology = b.build().unwrap();
    let n = w.protein_terms.len();
    let mut ann = Annotations::new(n, w.terms);
    for (p, terms) in w.protein_terms.iter().enumerate() {
        for &t in terms {
            ann.annotate(ProteinId(p as u32), TermId(t % w.terms as u32));
        }
    }
    let occs: Vec<Occurrence> = w
        .occ_pairs
        .iter()
        .filter(|&&(a, b)| a as usize % n != b as usize % n)
        .map(|&(a, b)| {
            Occurrence::new(vec![
                VertexId(a % n as u32),
                VertexId(b % n as u32),
            ])
        })
        .collect();
    (ontology, ann, occs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clustering_output_always_conforms(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        if occs.is_empty() {
            return Ok(());
        }
        let weights = TermWeights::compute(&ontology, &ann);
        let sim = TermSimilarity::new(&ontology, &weights);
        let informative = InformativeClasses::compute(&ontology, &ann, InformativeConfig {
            min_direct: 1,
            ..Default::default()
        });
        let frontier = compute_frontier(&ontology, &informative);
        let terms_by_protein: Vec<Vec<TermId>> = (0..ann.protein_count())
            .map(|p| ann.terms_of(ProteinId(p as u32)).to_vec())
            .collect();
        let ctx = LabelContext {
            ontology: &ontology,
            sim: &sim,
            informative: &informative,
            terms_by_protein: &terms_by_protein,
            frontier: &frontier,
            dense: None,
        };
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        let config = ClusteringConfig {
            sigma: 2,
            ..Default::default()
        };
        for cluster in cluster_occurrences(&pattern, &occs, &ctx, &config) {
            prop_assert!(cluster.occurrences.len() >= 2);
            prop_assert!(!cluster.scheme.is_all_unknown());
            for o in &cluster.occurrences {
                prop_assert!(
                    cluster.scheme.conforms_to(o, &ontology, &ann),
                    "scheme {:?} vs occurrence {:?}",
                    cluster.scheme,
                    o
                );
            }
            // Emitted labels live in the vocabulary.
            for label in &cluster.scheme.labels {
                for &t in &label.terms {
                    prop_assert!(informative.in_vocabulary(t));
                }
            }
        }
    }

    #[test]
    fn label_motifs_is_thread_count_invariant(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        if occs.is_empty() {
            return Ok(());
        }
        let pattern = Graph::from_edges(2, &[(0, 1)]);
        // Two motifs over the same occurrences (one reversed) so the
        // motif-level fan-out engages alongside the row-level one.
        let motifs = vec![
            Motif {
                pattern: pattern.clone(),
                occurrences: occs.clone(),
                frequency: occs.len(),
                uniqueness: None,
            },
            Motif {
                pattern,
                occurrences: occs.iter().rev().cloned().collect(),
                frequency: occs.len(),
                uniqueness: None,
            },
        ];
        let label = |threads: usize| {
            let finder = LaMoFinder::new(&ontology, &ann, LaMoFinderConfig {
                informative: InformativeConfig {
                    min_direct: 1,
                    ..Default::default()
                },
                clustering: ClusteringConfig {
                    sigma: 2,
                    ..Default::default()
                },
                threads,
                ..Default::default()
            });
            finder.label_motifs(&motifs)
        };
        let serial = label(1);
        let threaded = label(4);
        prop_assert_eq!(serial.len(), threaded.len());
        for (a, b) in serial.iter().zip(&threaded) {
            prop_assert_eq!(&a.scheme, &b.scheme);
            prop_assert_eq!(&a.occurrences, &b.occurrences);
            prop_assert_eq!(a.motif_frequency, b.motif_frequency);
            prop_assert_eq!(a.namespace, b.namespace);
        }
    }

    #[test]
    fn generalizing_a_label_preserves_conformance(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        // For any conforming scheme, replacing a label term by one of its
        // ancestors must keep it conforming (labels grow more general).
        for occ in occs.iter().take(4) {
            let scheme = LabelingScheme::new(
                occ.vertices
                    .iter()
                    .map(|&v| VertexLabel::new(ann.terms_of(ProteinId(v.0)).to_vec()))
                    .collect(),
            );
            prop_assert!(scheme.conforms_to(occ, &ontology, &ann));
            for (vi, label) in scheme.labels.iter().enumerate() {
                for (ti, &t) in label.terms.iter().enumerate() {
                    for &(parent, _) in ontology.parents(t) {
                        let mut lifted = scheme.clone();
                        lifted.labels[vi].terms[ti] = parent;
                        lifted.labels[vi] = VertexLabel::new(lifted.labels[vi].terms.clone());
                        prop_assert!(
                            lifted.conforms_to(occ, &ontology, &ann),
                            "ancestor labels must conform"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn support_never_decreases_under_generalization(w in world_strategy()) {
        let (ontology, ann, occs) = build(&w);
        if occs.is_empty() {
            return Ok(());
        }
        let occ = &occs[0];
        let scheme = LabelingScheme::new(
            occ.vertices
                .iter()
                .map(|&v| VertexLabel::new(ann.terms_of(ProteinId(v.0)).to_vec()))
                .collect(),
        );
        let base = scheme.support(&occs, &ontology, &ann);
        // Lift every label to the root (term 0): support can only grow.
        let lifted = LabelingScheme::new(
            scheme
                .labels
                .iter()
                .map(|l| {
                    if l.is_unknown() {
                        l.clone()
                    } else {
                        VertexLabel::new(vec![TermId(0)])
                    }
                })
                .collect(),
        );
        let lifted_support = lifted.support(&occs, &ontology, &ann);
        prop_assert!(lifted_support >= base, "{lifted_support} < {base}");
    }
}
