#![forbid(unsafe_code)]
//! Shared parallelism utilities.
//!
//! Every parallel stage in the workspace follows the same conventions:
//! a `threads` knob where `0` means one worker per available core, work
//! split deterministically so output is byte-identical for any thread
//! count, and pure-function memo tables shared between workers. The
//! pieces implementing those conventions live here so the labeling
//! pipeline (`lamofinder`), the uniqueness null model and the discovery
//! front-end (`motif-finder`) do not each carry a private copy.

pub mod sharded;
pub mod threads;

pub use sharded::ShardedCache;
pub use threads::{resolve_threads, split_chunks};
