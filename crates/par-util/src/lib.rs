#![forbid(unsafe_code)]
//! Shared parallelism utilities.
//!
//! Every parallel stage in the workspace follows the same conventions:
//! a `threads` knob where `0` means one worker per available core, work
//! split deterministically so output is byte-identical for any thread
//! count, and pure-function memo tables shared between workers. The
//! pieces implementing those conventions live here so the labeling
//! pipeline (`lamofinder`), the uniqueness null model and the discovery
//! front-end (`motif-finder`) do not each carry a private copy.
//!
//! PR 4 adds the supervision layer (DESIGN.md §13): [`RunContext`]
//! carries a cooperative [`CancelToken`] plus a deterministic work-tick
//! budget, [`run_supervised`] isolates worker panics behind
//! `catch_unwind`, and [`FaultPlan`] + the [`faultpoint!`] macro inject
//! deterministic faults for the containment test suites. The only
//! wall-clock-aware piece is [`realtime::Deadline`], confined to the
//! bench/CLI boundary.

pub mod batch;
pub mod realtime;
pub mod sharded;
pub mod supervise;
pub mod threads;

pub use batch::{BatchQueue, EpochCell, PushOutcome, ResponseSlot};
pub use sharded::ShardedCache;
pub use supervise::{
    run_supervised, CancelToken, FaultAction, FaultArm, FaultPlan, InjectedFault, Interrupted,
    PoolOutcome, RunContext, WorkQueue, WorkerPanic,
};
pub use threads::{resolve_threads, split_chunks, strided};
