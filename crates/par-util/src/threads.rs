//! Thread-budget resolution and deterministic work chunking.
//!
//! All `threads` configuration knobs in the workspace share one
//! convention: `0` means one worker per available core, any other value
//! is taken literally. Work is split with [`split_chunks`] so that the
//! chunking — and therefore the merged output — depends only on the
//! item order and the chunk count, never on scheduling.

/// Resolve a `threads` knob: `0` = one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Round-robin split of `items` into at most `parts` non-empty chunks.
/// Round-robin balances workloads that vary monotonically with the item
/// index (e.g. SO matrix row `i` has `n − i − 1` entries); within each
/// chunk the original item order is preserved.
pub fn split_chunks<T: Copy>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let mut chunks: Vec<Vec<T>> = vec![Vec::new(); parts];
    for (i, &item) in items.iter().enumerate() {
        chunks[i % parts].push(item);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_count_is_literal() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn chunks_cover_all_items_in_order() {
        let items: Vec<u32> = (0..10).collect();
        let chunks = split_chunks(&items, 3);
        assert_eq!(chunks.len(), 3);
        for chunk in &chunks {
            assert!(chunk.windows(2).all(|w| w[0] < w[1]));
        }
        let mut all: Vec<u32> = chunks.concat();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn more_parts_than_items_drops_empty_chunks() {
        let chunks = split_chunks(&[1, 2], 8);
        assert_eq!(chunks, vec![vec![1], vec![2]]);
    }

    #[test]
    fn zero_parts_treated_as_one() {
        let chunks = split_chunks(&[1, 2, 3], 0);
        assert_eq!(chunks, vec![vec![1, 2, 3]]);
    }
}
