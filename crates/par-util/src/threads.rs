//! Thread-budget resolution and deterministic work chunking.
//!
//! All `threads` configuration knobs in the workspace share one
//! convention: `0` means one worker per available core, any other value
//! is taken literally. Work is split with [`split_chunks`] so that the
//! chunking — and therefore the merged output — depends only on the
//! item order and the chunk count, never on scheduling.

/// Resolve a `threads` knob: `0` = one worker per available core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Deterministic interleaved shard assignment: the indices of `0..total`
/// that worker `worker` owns when `workers` workers each take every
/// `workers`-th item. Contiguous range sharding concentrates expensive
/// items (e.g. high-degree ESU roots, which come first in degree-skewed
/// vertex numberings) on one worker; interleaving spreads them evenly
/// while staying a pure function of `(total, workers, worker)` — no
/// atomic pulls in the hot loop, and each worker's stream is an
/// ascending (hence tag-ordered) subsequence of the serial order.
pub fn strided(total: usize, workers: usize, worker: usize) -> impl Iterator<Item = usize> {
    (worker..total).step_by(workers.max(1))
}

/// Round-robin split of `items` into at most `parts` non-empty chunks.
/// Round-robin balances workloads that vary monotonically with the item
/// index (e.g. SO matrix row `i` has `n − i − 1` entries); within each
/// chunk the original item order is preserved.
pub fn split_chunks<T: Copy>(items: &[T], parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let mut chunks: Vec<Vec<T>> = vec![Vec::new(); parts];
    for (i, &item) in items.iter().enumerate() {
        chunks[i % parts].push(item);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_thread_count_is_literal() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn chunks_cover_all_items_in_order() {
        let items: Vec<u32> = (0..10).collect();
        let chunks = split_chunks(&items, 3);
        assert_eq!(chunks.len(), 3);
        for chunk in &chunks {
            assert!(chunk.windows(2).all(|w| w[0] < w[1]));
        }
        let mut all: Vec<u32> = chunks.concat();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn more_parts_than_items_drops_empty_chunks() {
        let chunks = split_chunks(&[1, 2], 8);
        assert_eq!(chunks, vec![vec![1], vec![2]]);
    }

    #[test]
    fn zero_parts_treated_as_one() {
        let chunks = split_chunks(&[1, 2, 3], 0);
        assert_eq!(chunks, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn strided_shards_partition_the_index_range() {
        for total in [0usize, 1, 7, 10, 64] {
            for workers in [1usize, 2, 3, 5, 8] {
                let mut all: Vec<usize> = (0..workers)
                    .flat_map(|w| strided(total, workers, w).collect::<Vec<_>>())
                    .collect();
                for w in 0..workers {
                    let shard: Vec<usize> = strided(total, workers, w).collect();
                    assert!(
                        shard.windows(2).all(|p| p[0] < p[1]),
                        "shard {w} not ascending"
                    );
                }
                all.sort_unstable();
                assert_eq!(all, (0..total).collect::<Vec<_>>(), "{total}/{workers}");
            }
        }
    }

    #[test]
    fn strided_zero_workers_treated_as_one() {
        let shard: Vec<usize> = strided(4, 0, 0).collect();
        assert_eq!(shard, vec![0, 1, 2, 3]);
    }
}
