//! Request batching for the serving layer (DESIGN.md §16).
//!
//! [`BatchQueue`] is a closeable MPMC queue whose consumers drain *runs*
//! of pending items instead of single elements: a worker blocks until
//! something is queued, then takes everything available up to its batch
//! cap in FIFO order. Batch composition is therefore a pure function of
//! arrival order and cap — no timers, no wall clock — which keeps the
//! serving read path inside the workspace determinism rules.
//!
//! [`ResponseSlot`] is the matching one-shot reply cell. Producers park
//! on [`ResponseSlot::wait`]; the serving worker fulfills every slot of
//! a batch exactly once, even when a query panics (the server wraps
//! batches in `catch_unwind` and fulfills survivors with an error).
//!
//! Both types synchronize *coordination*, not shared prediction state:
//! the artifact itself is read lock-free behind an `Arc`, and lamolint's
//! `serve-read-lock` rule keeps lock acquisitions out of `lamo-serve`
//! entirely — which is why these primitives live here.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Condvar;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Closeable FIFO queue with batched consumption.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for BatchQueue<T> {
    fn default() -> Self {
        BatchQueue::new()
    }
}

impl<T> BatchQueue<T> {
    /// An open, empty queue.
    pub fn new() -> BatchQueue<T> {
        BatchQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue one item. Returns `false` (dropping the item) when the
    /// queue is closed — producers racing a shutdown see the refusal
    /// instead of a silently lost request.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock();
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Block until at least one item is queued (or the queue closes),
    /// then move up to `max_batch` items into `out` in FIFO order.
    /// Returns `false` once the queue is closed *and* drained — the
    /// consumer's signal to exit. `out` is cleared first, so a worker
    /// can reuse one buffer across its whole life.
    pub fn pop_batch(&self, max_batch: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let cap = max_batch.max(1);
        let mut state = self.state.lock();
        loop {
            if !state.items.is_empty() {
                while out.len() < cap {
                    match state.items.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                // More work left: wake a sibling consumer that may have
                // been notified for an item this batch just swallowed.
                let more = !state.items.is_empty();
                drop(state);
                if more {
                    self.ready.notify_one();
                }
                return true;
            }
            if state.closed {
                return false;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue: future `push`es are refused, blocked consumers
    /// drain what remains and then see `false`. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](BatchQueue::close) has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Items currently queued (snapshot; for tests and reporting).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum SlotState<R> {
    Empty,
    Full(R),
    Taken,
}

/// One-shot rendezvous cell: a producer parks on [`wait`]
/// (ResponseSlot::wait) until a consumer [`fulfill`]s
/// (ResponseSlot::fulfill) it.
pub struct ResponseSlot<R> {
    state: Mutex<SlotState<R>>,
    filled: Condvar,
}

impl<R> Default for ResponseSlot<R> {
    fn default() -> Self {
        ResponseSlot::new()
    }
}

impl<R> ResponseSlot<R> {
    /// An unfulfilled slot.
    pub fn new() -> ResponseSlot<R> {
        ResponseSlot {
            state: Mutex::new(SlotState::Empty),
            filled: Condvar::new(),
        }
    }

    /// Deliver the response. Returns `false` if the slot was already
    /// fulfilled (the value is dropped) — double delivery is a caller
    /// bug the server's panic-recovery path must tolerate, not a panic.
    pub fn fulfill(&self, value: R) -> bool {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Full(value);
            drop(state);
            self.filled.notify_all();
            true
        } else {
            false
        }
    }

    /// Block until the response arrives and take it. A second `wait` on
    /// the same slot would block forever, so slots are single-consumer
    /// by convention (the server hands each one to exactly one client).
    pub fn wait(&self) -> R {
        let mut state = self.state.lock();
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Full(value) => return value,
                other => *state = other,
            }
            state = self
                .filled
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Take the response if it has already arrived (non-blocking).
    pub fn try_take(&self) -> Option<R> {
        let mut state = self.state.lock();
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Full(value) => Some(value),
            other => {
                *state = other;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batches_preserve_fifo_order() {
        let q = BatchQueue::new();
        for i in 0..7 {
            assert!(q.push(i));
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![3, 4, 5]);
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![6]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new();
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2), "closed queue must refuse new work");
        let mut batch = Vec::new();
        assert!(q.pop_batch(8, &mut batch), "pending work survives close");
        assert_eq!(batch, vec![1]);
        assert!(!q.pop_batch(8, &mut batch), "drained + closed ⇒ exit");
        assert!(batch.is_empty());
        assert!(q.is_closed());
    }

    #[test]
    fn zero_cap_still_makes_progress() {
        let q = BatchQueue::new();
        assert!(q.push(9));
        let mut batch = Vec::new();
        assert!(q.pop_batch(0, &mut batch));
        assert_eq!(batch, vec![9]);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BatchQueue::new());
        let total: usize = 100;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut batch = Vec::new();
                while q.pop_batch(4, &mut batch) {
                    seen.extend(batch.iter().copied());
                }
                seen
            })
        };
        for i in 0..total {
            assert!(q.push(i));
        }
        q.close();
        let seen = consumer.join().expect("consumer thread must not panic");
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn slot_fulfill_then_wait() {
        let slot = ResponseSlot::new();
        assert!(slot.try_take().is_none());
        assert!(slot.fulfill(41));
        assert!(!slot.fulfill(42), "second delivery is refused");
        assert_eq!(slot.wait(), 41);
        assert!(slot.try_take().is_none(), "a response is taken once");
    }

    #[test]
    fn slot_wait_blocks_until_fulfilled() {
        let slot = Arc::new(ResponseSlot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        slot.fulfill("done");
        assert_eq!(
            waiter.join().expect("waiter thread must not panic"),
            "done"
        );
    }
}
