//! Request batching for the serving layer (DESIGN.md §16).
//!
//! [`BatchQueue`] is a closeable MPMC queue whose consumers drain *runs*
//! of pending items instead of single elements: a worker blocks until
//! something is queued, then takes everything available up to its batch
//! cap in FIFO order. Batch composition is therefore a pure function of
//! arrival order and cap — no timers, no wall clock — which keeps the
//! serving read path inside the workspace determinism rules.
//!
//! The queue may carry a *capacity* ([`BatchQueue::bounded`]): a full
//! queue refuses new work with [`PushOutcome::Full`] (load shedding) or
//! parks the producer in [`BatchQueue::push_wait`] until a consumer
//! drains space (bounded-wait admission). Either way memory and queueing
//! delay are bounded by the capacity — overload degrades into typed
//! refusals, never into unbounded growth.
//!
//! [`ResponseSlot`] is the matching one-shot reply cell. Producers park
//! on [`ResponseSlot::wait`]; the serving worker fulfills every slot of
//! a batch exactly once, even when a query panics (the server wraps
//! batches in `catch_unwind` and fulfills survivors with an error). A
//! client that stops caring can [`ResponseSlot::abandon`] its slot: the
//! consumer's later `fulfill` is refused and the value dropped, so an
//! abandoned query can neither block its client nor leak its response.
//!
//! [`EpochCell`] is the artifact hot-swap cell: an epoch-counted slot
//! holding an `Arc<T>`. Readers snapshot `(epoch, Arc)` per batch — the
//! lock is held only for the clone, never across any user code — and a
//! swap installs a new value for *subsequent* loads, so every in-flight
//! batch finishes entirely on the epoch it started with.
//!
//! These types synchronize *coordination*, not shared prediction state:
//! the artifact itself is read lock-free behind an `Arc`, and lamolint's
//! `serve-read-lock` rule keeps lock acquisitions out of `lamo-serve`
//! entirely — which is why these primitives live here.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Condvar;
use std::sync::Arc;

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// What happened to a pushed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued.
    Queued,
    /// The queue was at capacity and the item was refused (shed).
    /// `depth` is the capacity it was full at.
    Full { depth: usize },
    /// The queue is closed; the item was refused — producers racing a
    /// shutdown see the refusal instead of a silently lost request.
    Closed,
}

impl PushOutcome {
    /// Whether the item made it into the queue.
    pub fn is_queued(self) -> bool {
        self == PushOutcome::Queued
    }
}

/// Closeable FIFO queue with batched consumption and optional capacity.
pub struct BatchQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Capacity; `usize::MAX` means unbounded.
    capacity: usize,
    /// Signalled when items arrive or the queue closes (consumer side).
    ready: Condvar,
    /// Signalled when space frees up or the queue closes (producer
    /// side, only used by [`BatchQueue::push_wait`]).
    space: Condvar,
}

impl<T> Default for BatchQueue<T> {
    fn default() -> Self {
        BatchQueue::new()
    }
}

impl<T> BatchQueue<T> {
    /// An open, empty, *unbounded* queue.
    pub fn new() -> BatchQueue<T> {
        BatchQueue::with_capacity(usize::MAX)
    }

    /// An open, empty queue refusing pushes beyond `capacity` pending
    /// items. A zero capacity is promoted to 1 — a queue that can hold
    /// nothing could never hand a request to a worker.
    pub fn bounded(capacity: usize) -> BatchQueue<T> {
        BatchQueue::with_capacity(capacity.max(1))
    }

    fn with_capacity(capacity: usize) -> BatchQueue<T> {
        BatchQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// The capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        (self.capacity != usize::MAX).then_some(self.capacity)
    }

    /// Enqueue one item without ever blocking. A closed queue refuses
    /// with [`PushOutcome::Closed`]; a full one sheds with
    /// [`PushOutcome::Full`]. The item is dropped on refusal.
    pub fn push(&self, item: T) -> PushOutcome {
        let mut state = self.state.lock();
        if state.closed {
            return PushOutcome::Closed;
        }
        if state.items.len() >= self.capacity {
            return PushOutcome::Full {
                depth: self.capacity,
            };
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        PushOutcome::Queued
    }

    /// Enqueue one item, parking while the queue is full until a
    /// consumer drains space or the queue closes. Never returns
    /// [`PushOutcome::Full`]: the outcome is `Queued`, or `Closed` when
    /// the queue shut down before space appeared.
    pub fn push_wait(&self, item: T) -> PushOutcome {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return PushOutcome::Closed;
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.ready.notify_one();
                return PushOutcome::Queued;
            }
            state = self
                .space
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Block until at least one item is queued (or the queue closes),
    /// then move up to `max_batch` items into `out` in FIFO order.
    /// Returns `false` once the queue is closed *and* drained — the
    /// consumer's signal to exit. `out` is cleared first, so a worker
    /// can reuse one buffer across its whole life.
    pub fn pop_batch(&self, max_batch: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let cap = max_batch.max(1);
        let mut state = self.state.lock();
        loop {
            if !state.items.is_empty() {
                while out.len() < cap {
                    match state.items.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                // More work left: wake a sibling consumer that may have
                // been notified for an item this batch just swallowed.
                let more = !state.items.is_empty();
                drop(state);
                if more {
                    self.ready.notify_one();
                }
                // Space freed: wake producers parked in push_wait.
                self.space.notify_all();
                return true;
            }
            if state.closed {
                return false;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue: future pushes are refused, parked producers and
    /// blocked consumers wake, consumers drain what remains and then see
    /// `false`. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Whether [`close`](BatchQueue::close) has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Items currently queued (snapshot; for tests and reporting).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum SlotState<R> {
    Empty,
    Full(R),
    Taken,
}

/// One-shot rendezvous cell: a producer parks on [`wait`]
/// (ResponseSlot::wait) until a consumer [`fulfill`]s
/// (ResponseSlot::fulfill) it.
pub struct ResponseSlot<R> {
    state: Mutex<SlotState<R>>,
    filled: Condvar,
}

impl<R> Default for ResponseSlot<R> {
    fn default() -> Self {
        ResponseSlot::new()
    }
}

impl<R> ResponseSlot<R> {
    /// An unfulfilled slot.
    pub fn new() -> ResponseSlot<R> {
        ResponseSlot {
            state: Mutex::new(SlotState::Empty),
            filled: Condvar::new(),
        }
    }

    /// Deliver the response. Returns `false` if the slot was already
    /// fulfilled, taken, or abandoned (the value is dropped) — double
    /// delivery is a caller bug the server's panic-recovery path must
    /// tolerate, not a panic; delivery to an abandoned slot is the
    /// normal fate of a query whose client stopped waiting.
    pub fn fulfill(&self, value: R) -> bool {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Full(value);
            drop(state);
            self.filled.notify_all();
            true
        } else {
            false
        }
    }

    /// Block until the response arrives and take it. A second `wait` on
    /// the same slot would block forever, so slots are single-consumer
    /// by convention (the server hands each one to exactly one client).
    pub fn wait(&self) -> R {
        let mut state = self.state.lock();
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Full(value) => return value,
                other => *state = other,
            }
            state = self
                .filled
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Take the response if it has already arrived (non-blocking).
    pub fn try_take(&self) -> Option<R> {
        let mut state = self.state.lock();
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Full(value) => Some(value),
            other => {
                *state = other;
                None
            }
        }
    }

    /// Abandon the slot: the client stops caring about the response. A
    /// response already delivered is dropped here; one delivered later
    /// is refused by [`fulfill`](ResponseSlot::fulfill) and dropped
    /// there. Either way nothing leaks and no future `wait` could hang
    /// on this slot. Returns `true` if a delivered response was
    /// discarded.
    pub fn abandon(&self) -> bool {
        let mut state = self.state.lock();
        matches!(
            std::mem::replace(&mut *state, SlotState::Taken),
            SlotState::Full(_)
        )
    }
}

/// Epoch-counted hot-swap cell for an immutable shared value.
///
/// Readers call [`EpochCell::load`] to snapshot `(epoch, Arc<T>)`; a
/// writer calls [`EpochCell::swap`] to install a new value and bump the
/// epoch. The internal lock is held only long enough to clone the `Arc`
/// (a reference-count increment), so readers never block behind user
/// code and a swap never waits for readers: queries in flight keep the
/// `Arc` they loaded and finish entirely on that epoch.
pub struct EpochCell<T> {
    state: Mutex<(u64, Arc<T>)>,
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell {
            state: Mutex::new((0, initial)),
        }
    }

    /// Snapshot the current `(epoch, value)` pair. The two are read
    /// under one lock, so a load never pairs an old epoch with a new
    /// value or vice versa.
    pub fn load(&self) -> (u64, Arc<T>) {
        let state = self.state.lock();
        (state.0, Arc::clone(&state.1))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().0
    }

    /// Install `value` as the new current, bumping the epoch. Returns
    /// the new epoch. Loads that already happened keep their old `Arc`;
    /// loads from now on see the new pair.
    pub fn swap(&self, value: Arc<T>) -> u64 {
        let mut state = self.state.lock();
        state.0 += 1;
        state.1 = value;
        state.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batches_preserve_fifo_order() {
        let q = BatchQueue::new();
        for i in 0..7 {
            assert!(q.push(i).is_queued());
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![3, 4, 5]);
        assert!(q.pop_batch(3, &mut batch));
        assert_eq!(batch, vec![6]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new();
        assert!(q.push(1).is_queued());
        q.close();
        assert_eq!(q.push(2), PushOutcome::Closed, "closed queue must refuse new work");
        let mut batch = Vec::new();
        assert!(q.pop_batch(8, &mut batch), "pending work survives close");
        assert_eq!(batch, vec![1]);
        assert!(!q.pop_batch(8, &mut batch), "drained + closed ⇒ exit");
        assert!(batch.is_empty());
        assert!(q.is_closed());
    }

    #[test]
    fn zero_cap_still_makes_progress() {
        let q = BatchQueue::new();
        assert!(q.push(9).is_queued());
        let mut batch = Vec::new();
        assert!(q.pop_batch(0, &mut batch));
        assert_eq!(batch, vec![9]);
    }

    #[test]
    fn bounded_queue_sheds_at_capacity() {
        let q = BatchQueue::bounded(2);
        assert_eq!(q.capacity(), Some(2));
        assert!(q.push(1).is_queued());
        assert!(q.push(2).is_queued());
        assert_eq!(q.push(3), PushOutcome::Full { depth: 2 });
        assert_eq!(q.len(), 2, "the shed item was dropped, not queued");
        // Draining restores admission.
        let mut batch = Vec::new();
        assert!(q.pop_batch(1, &mut batch));
        assert_eq!(batch, vec![1]);
        assert!(q.push(3).is_queued());
        assert_eq!(q.push(4), PushOutcome::Full { depth: 2 });
    }

    #[test]
    fn zero_capacity_promoted_to_one() {
        let q = BatchQueue::bounded(0);
        assert_eq!(q.capacity(), Some(1));
        assert!(q.push(7).is_queued());
        assert_eq!(q.push(8), PushOutcome::Full { depth: 1 });
    }

    #[test]
    fn unbounded_queue_reports_no_capacity() {
        let q: BatchQueue<u32> = BatchQueue::new();
        assert_eq!(q.capacity(), None);
    }

    #[test]
    fn push_wait_parks_until_space() {
        let q = Arc::new(BatchQueue::bounded(1));
        assert!(q.push(0).is_queued());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(1))
        };
        // Drain one item; the parked producer must then get through.
        let mut batch = Vec::new();
        assert!(q.pop_batch(1, &mut batch));
        assert_eq!(batch, vec![0]);
        assert_eq!(
            producer.join().expect("producer thread must not panic"),
            PushOutcome::Queued
        );
        assert!(q.pop_batch(1, &mut batch));
        assert_eq!(batch, vec![1]);
    }

    #[test]
    fn push_wait_wakes_on_close() {
        let q = Arc::new(BatchQueue::bounded(1));
        assert!(q.push(0).is_queued());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(1))
        };
        q.close();
        assert_eq!(
            producer.join().expect("producer thread must not panic"),
            PushOutcome::Closed
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BatchQueue::new());
        let total: usize = 100;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut batch = Vec::new();
                while q.pop_batch(4, &mut batch) {
                    seen.extend(batch.iter().copied());
                }
                seen
            })
        };
        for i in 0..total {
            assert!(q.push_wait(i).is_queued());
        }
        q.close();
        let seen = consumer.join().expect("consumer thread must not panic");
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_cross_thread_handoff_loses_nothing() {
        let q = Arc::new(BatchQueue::bounded(3));
        let total: usize = 200;
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut batch = Vec::new();
                while q.pop_batch(2, &mut batch) {
                    seen.extend(batch.iter().copied());
                }
                seen
            })
        };
        for i in 0..total {
            assert!(q.push_wait(i).is_queued());
        }
        q.close();
        let seen = consumer.join().expect("consumer thread must not panic");
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn slot_fulfill_then_wait() {
        let slot = ResponseSlot::new();
        assert!(slot.try_take().is_none());
        assert!(slot.fulfill(41));
        assert!(!slot.fulfill(42), "second delivery is refused");
        assert_eq!(slot.wait(), 41);
        assert!(slot.try_take().is_none(), "a response is taken once");
    }

    #[test]
    fn slot_wait_blocks_until_fulfilled() {
        let slot = Arc::new(ResponseSlot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        slot.fulfill("done");
        assert_eq!(
            waiter.join().expect("waiter thread must not panic"),
            "done"
        );
    }

    #[test]
    fn abandoned_slot_refuses_late_delivery() {
        let slot: ResponseSlot<u32> = ResponseSlot::new();
        assert!(!slot.abandon(), "nothing delivered yet, nothing discarded");
        assert!(!slot.fulfill(9), "delivery to an abandoned slot is refused");
        assert!(slot.try_take().is_none());
    }

    #[test]
    fn abandon_discards_a_delivered_response() {
        let slot = ResponseSlot::new();
        assert!(slot.fulfill(5));
        assert!(slot.abandon(), "the delivered response is discarded");
        assert!(slot.try_take().is_none());
    }

    #[test]
    fn epoch_cell_swaps_and_counts() {
        let cell = EpochCell::new(Arc::new(10u32));
        assert_eq!(cell.epoch(), 0);
        let (e0, v0) = cell.load();
        assert_eq!((e0, *v0), (0, 10));
        assert_eq!(cell.swap(Arc::new(20)), 1);
        let (e1, v1) = cell.load();
        assert_eq!((e1, *v1), (1, 20));
        // The old snapshot is untouched by the swap.
        assert_eq!(*v0, 10);
        assert_eq!(cell.swap(Arc::new(30)), 2);
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn epoch_cell_pairs_epoch_with_value() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let reader = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    let (epoch, value) = cell.load();
                    // The invariant: value == epoch, atomically paired.
                    assert_eq!(*value, epoch);
                }
            })
        };
        for i in 1..=100u64 {
            assert_eq!(cell.swap(Arc::new(i)), i);
        }
        reader.join().expect("reader thread must not panic");
    }
}
