//! Real-time deadline adapter — the *only* wall-clock-aware component
//! of the supervision layer, exempted from the `wall-clock` lint via
//! `lamolint.toml` (DESIGN.md §13).
//!
//! Pipeline deadlines are deterministic work-tick budgets; nothing in
//! library code may read the clock. But at the bench/CLI boundary an
//! operator legitimately wants "stop after N seconds". This adapter
//! bridges the two worlds without contaminating the pipeline: a
//! watchdog thread owns a clone of the run's [`CancelToken`] and trips
//! it when the timeout elapses, after which the pipeline drains through
//! the exact same cooperative-cancellation path a tick budget uses.
//! The pipeline itself stays byte-deterministic — only *whether* it was
//! interrupted depends on the clock, never what a completed or resumed
//! run outputs.

use crate::supervise::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Watchdog polling interval; disarming latency is bounded by this.
const POLL: Duration = Duration::from_millis(10);

/// A one-shot wall-clock deadline armed against a [`CancelToken`].
///
/// Dropping the guard disarms the watchdog (without cancelling) and
/// joins its thread, so a `Deadline` can never outlive its scope.
pub struct Deadline {
    disarm: Arc<AtomicBool>,
    watchdog: Option<JoinHandle<()>>,
}

impl Deadline {
    /// Spawn a watchdog that trips `token` once `timeout` has elapsed,
    /// unless disarmed first.
    pub fn arm(token: CancelToken, timeout: Duration) -> Deadline {
        let disarm = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&disarm);
        let watchdog = std::thread::spawn(move || {
            let start = Instant::now();
            while !flag.load(Ordering::Relaxed) {
                if start.elapsed() >= timeout {
                    token.cancel();
                    return;
                }
                std::thread::sleep(POLL.min(timeout));
            }
        });
        Deadline {
            disarm,
            watchdog: Some(watchdog),
        }
    }

    /// Stop the watchdog without cancelling the run. Idempotent; also
    /// invoked by `Drop`.
    pub fn disarm(&mut self) {
        self.disarm.store(true, Ordering::Relaxed);
        if let Some(handle) = self.watchdog.take() {
            // The watchdog only sleeps and polls; joining it cannot
            // fail except if it panicked, which its body cannot do.
            let _ = handle.join();
        }
    }
}

impl Drop for Deadline {
    fn drop(&mut self) {
        self.disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_trips_the_token() {
        let token = CancelToken::new();
        let _deadline = Deadline::arm(token.clone(), Duration::from_millis(1));
        // Cooperative wait: the watchdog must trip the shared flag.
        while !token.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(token.is_cancelled());
    }

    #[test]
    fn disarm_prevents_cancellation() {
        let token = CancelToken::new();
        let mut deadline = Deadline::arm(token.clone(), Duration::from_secs(3600));
        deadline.disarm();
        assert!(!token.is_cancelled(), "disarmed watchdog must not cancel");
        drop(deadline);
        assert!(!token.is_cancelled());
    }
}
