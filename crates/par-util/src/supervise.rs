//! Pipeline supervision: cooperative cancellation, deterministic
//! work-tick budgets, worker panic isolation, and seeded fault
//! injection (DESIGN.md §13).
//!
//! A long discovery or labeling run must be interruptible without
//! losing determinism. The mechanism is a [`RunContext`] threaded by
//! reference through every parallel stage: workers call
//! [`RunContext::tick`] once per unit of work (candidate visited,
//! SO cell scored) and stop pulling work the moment it returns `false`.
//! Deadlines are counted in *ticks*, never wall time, so a metered run
//! is replayable and the `wall-clock` lint stays intact; the only
//! wall-time component lives in [`crate::realtime`], which merely trips
//! the same [`CancelToken`].
//!
//! Interrupted stages return [`Interrupted`] carrying a checkpoint of
//! every *completed* unit of work. Which checkpoint a cancelled run
//! produces may depend on thread interleaving — but resuming any of
//! them replays only whole units, each a pure function of its inputs,
//! so `resume(checkpoint)` is byte-identical to an uninterrupted run at
//! any thread count.
//!
//! Fault injection is first-class: a [`FaultPlan`] schedules a panic,
//! a cancellation, or a cache-shard poisoning at the n-th execution of
//! a named [`faultpoint!`] site, which is how the containment and
//! resume-equality suites drive the layer deterministically.

use crate::ShardedCache;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared cooperative cancellation flag.
///
/// Cloning yields a handle to the *same* flag, so one copy can be
/// handed to a watchdog (see [`crate::realtime`]) while the pipeline
/// polls another through [`RunContext::tick`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// What an armed fault does when its site/hit pair comes up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic inside the worker that reaches the site (exercises the
    /// `catch_unwind` containment path).
    Panic,
    /// Trip the run's [`CancelToken`] (exercises cooperative draining
    /// and checkpointing).
    Cancel,
    /// Poison one shard of the [`ShardedCache`] passed at the site
    /// (exercises first-writer-wins shard recovery). Ignored at sites
    /// without a cache argument.
    PoisonShard,
}

/// One scheduled fault: the `hit`-th execution (0-based, counted
/// per-site across all threads) of `site` performs `action`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultArm {
    pub site: String,
    pub hit: u64,
    pub action: FaultAction,
}

/// A deterministic schedule of injected faults, keyed by faultpoint
/// site name and per-site execution count.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    arms: Vec<FaultArm>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arm `action` at the `hit`-th execution of `site`.
    pub fn inject(mut self, site: &str, hit: u64, action: FaultAction) -> FaultPlan {
        self.arms.push(FaultArm {
            site: site.to_string(),
            hit,
            action,
        });
        self
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The scheduled arms.
    pub fn arms(&self) -> &[FaultArm] {
        &self.arms
    }

    /// A pseudo-random plan drawn from a SplitMix64 stream: `n` arms
    /// over `sites`, each at a hit count below `max_hit`. Same seed,
    /// same plan — sweeps in tests stay replayable.
    pub fn seeded(seed: u64, sites: &[&str], n: usize, max_hit: u64) -> FaultPlan {
        let mut state = seed;
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        for _ in 0..n {
            let site = sites[(splitmix64(&mut state) as usize) % sites.len()];
            let hit = splitmix64(&mut state) % max_hit.max(1);
            let action = match splitmix64(&mut state) % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Cancel,
                _ => FaultAction::PoisonShard,
            };
            plan = plan.inject(site, hit, action);
        }
        plan
    }
}

/// SplitMix64 step — a tiny, dependency-free deterministic stream for
/// [`FaultPlan::seeded`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Panic payload used by [`FaultAction::Panic`], recognizable in
/// [`WorkerPanic::detail`] as `injected fault at <site>`.
#[derive(Debug)]
pub struct InjectedFault {
    pub site: String,
}

/// Per-run fault bookkeeping: the plan plus per-site execution counts.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    hits: Mutex<HashMap<String, u64>>,
}

/// Execution context threaded through every supervised pipeline stage.
///
/// Two modes:
/// * **passive** ([`RunContext::unbounded`]) — `tick` is a single
///   relaxed load of the cancel flag; this is what the legacy
///   non-supervised entry points run under.
/// * **metered** ([`RunContext::with_tick_budget`]) — `tick`
///   additionally counts work units and trips the cancel token once
///   the budget is spent. A budget of `0` stops at the very first
///   tick, which is what cancel-at-every-tick sweeps iterate over.
#[derive(Debug)]
pub struct RunContext {
    cancel: CancelToken,
    /// Tick budget; `u64::MAX` means unlimited.
    budget: u64,
    /// Whether ticks are counted at all (passive contexts skip the
    /// `fetch_add` so the legacy hot path pays one load per tick).
    metered: bool,
    ticks: AtomicU64,
    panicked: AtomicBool,
    faults: Option<FaultState>,
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::unbounded()
    }
}

impl RunContext {
    fn with_mode(budget: u64, metered: bool) -> RunContext {
        RunContext {
            cancel: CancelToken::new(),
            budget,
            metered,
            ticks: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            faults: None,
        }
    }

    /// Passive context: never trips on its own; only an external
    /// [`CancelToken::cancel`] (or an injected fault) stops the run.
    pub fn unbounded() -> RunContext {
        RunContext::with_mode(u64::MAX, false)
    }

    /// Metered context that counts ticks but never trips by itself —
    /// for measuring tick overhead and reporting progress.
    pub fn metered() -> RunContext {
        RunContext::with_mode(u64::MAX, true)
    }

    /// Metered context that trips its own cancel token after `budget`
    /// work ticks.
    pub fn with_tick_budget(budget: u64) -> RunContext {
        RunContext::with_mode(budget, true)
    }

    /// Attach a fault plan (builder style; used by the injection
    /// suites).
    pub fn with_faults(mut self, plan: FaultPlan) -> RunContext {
        self.faults = Some(FaultState {
            plan,
            hits: Mutex::new(HashMap::new()),
        });
        self
    }

    /// Record `n` units of work. Returns `true` when the stage may
    /// continue, `false` once cancellation has been requested (budget
    /// spent, external cancel, injected cancel, or a sibling panic).
    /// The boolean matches the ESU visit-closure convention, so hot
    /// loops can return `ctx.tick(1)` directly.
    #[inline]
    pub fn tick(&self, n: u64) -> bool {
        if self.metered && n > 0 {
            let spent = self.ticks.fetch_add(n, Ordering::Relaxed).saturating_add(n);
            if spent >= self.budget {
                self.cancel.cancel();
            }
        }
        !self.cancel.is_cancelled()
    }

    /// Whether the stage should stop pulling work.
    #[inline]
    pub fn should_stop(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Ticks recorded so far (metered contexts only; passive contexts
    /// report 0).
    pub fn ticks_spent(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Request cancellation of this run.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the underlying cancel token, e.g. to arm a
    /// [`crate::realtime::Deadline`] against it.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether a supervised worker panicked during this run.
    pub fn worker_panicked(&self) -> bool {
        self.panicked.load(Ordering::Relaxed)
    }

    fn mark_panicked(&self) {
        self.panicked.store(true, Ordering::Relaxed);
        self.cancel.cancel();
    }

    /// The action armed for the current execution of `site`, if any.
    /// Costs one `Option` check when no plan is attached.
    fn faultpoint_action(&self, site: &str) -> Option<FaultAction> {
        let state = self.faults.as_ref()?;
        let hit = {
            let mut hits = state.hits.lock();
            let count = hits.entry(site.to_string()).or_insert(0);
            let hit = *count;
            *count += 1;
            hit
        };
        state
            .plan
            .arms
            .iter()
            .find(|a| a.site == site && a.hit == hit)
            .map(|a| a.action)
    }

    /// Execute the faultpoint `site` (prefer the [`faultpoint!`]
    /// macro, which the `faultpoint-hygiene` lint checks for placement
    /// and name uniqueness). [`FaultAction::PoisonShard`] is ignored
    /// here; sites with a cache use [`RunContext::faultpoint_cache`].
    pub fn faultpoint(&self, site: &str) {
        match self.faultpoint_action(site) {
            Some(FaultAction::Panic) => injected_panic(site),
            Some(FaultAction::Cancel) => self.cancel.cancel(),
            Some(FaultAction::PoisonShard) | None => {}
        }
    }

    /// Faultpoint variant for sites with a [`ShardedCache`] in scope:
    /// [`FaultAction::PoisonShard`] poisons the shard holding `key`.
    pub fn faultpoint_cache<K: Hash + Eq, V: Copy>(
        &self,
        site: &str,
        cache: &ShardedCache<K, V>,
        key: &K,
    ) {
        match self.faultpoint_action(site) {
            Some(FaultAction::Panic) => injected_panic(site),
            Some(FaultAction::Cancel) => self.cancel.cancel(),
            Some(FaultAction::PoisonShard) => cache.poison_shard(key),
            None => {}
        }
    }
}

/// Panic with an [`InjectedFault`] payload. `panic_any` carries the
/// typed payload through `catch_unwind` so [`WorkerPanic::detail`] can
/// name the site.
fn injected_panic(site: &str) -> ! {
    std::panic::panic_any(InjectedFault {
        site: site.to_string(),
    })
}

/// Mark a fault-injection site. Forms:
///
/// ```ignore
/// faultpoint!(ctx, "stage.site");
/// faultpoint!(ctx, "stage.cache_site", &cache, &key);
/// ```
///
/// Site names must be unique string literals and the macro may only
/// appear in library code — both enforced by lamolint's
/// `faultpoint-hygiene` rule.
#[macro_export]
macro_rules! faultpoint {
    ($ctx:expr, $site:literal) => {
        $ctx.faultpoint($site)
    };
    ($ctx:expr, $site:literal, $cache:expr, $key:expr) => {
        $ctx.faultpoint_cache($site, $cache, $key)
    };
}

/// A panic caught at a supervised worker boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Stage label supplied by the pool (`"nemo.seed"`, …).
    pub stage: &'static str,
    /// Rendered panic payload.
    pub detail: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked in {}: {}", self.stage, self.detail)
    }
}

/// Typed interruption outcome of a supervised stage. Both variants
/// carry a checkpoint of every completed unit of work; resuming from
/// it reproduces the uninterrupted output byte-for-byte.
#[derive(Clone, Debug)]
pub enum Interrupted<C> {
    /// The cancel token tripped (budget spent, external cancel, or an
    /// injected cancel) and the stage drained cooperatively.
    Cancelled { checkpoint: C },
    /// A worker panicked; siblings were drained and the panic was
    /// converted into this typed error instead of unwinding the
    /// caller.
    WorkerPanicked { panic: WorkerPanic, checkpoint: C },
}

impl<C> Interrupted<C> {
    /// The carried checkpoint.
    pub fn checkpoint(&self) -> &C {
        match self {
            Interrupted::Cancelled { checkpoint } => checkpoint,
            Interrupted::WorkerPanicked { checkpoint, .. } => checkpoint,
        }
    }

    /// Consume into the carried checkpoint.
    pub fn into_checkpoint(self) -> C {
        match self {
            Interrupted::Cancelled { checkpoint } => checkpoint,
            Interrupted::WorkerPanicked { checkpoint, .. } => checkpoint,
        }
    }

    /// Map the checkpoint type (for layering one stage's interruption
    /// over another's).
    pub fn map_checkpoint<D>(self, f: impl FnOnce(C) -> D) -> Interrupted<D> {
        match self {
            Interrupted::Cancelled { checkpoint } => Interrupted::Cancelled {
                checkpoint: f(checkpoint),
            },
            Interrupted::WorkerPanicked { panic, checkpoint } => Interrupted::WorkerPanicked {
                panic,
                checkpoint: f(checkpoint),
            },
        }
    }
}

impl<C> fmt::Display for Interrupted<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupted::Cancelled { .. } => {
                write!(f, "run cancelled at a checkpoint boundary")
            }
            Interrupted::WorkerPanicked { panic, .. } => write!(f, "{panic}"),
        }
    }
}

/// Outcome of a supervised worker pool: results of the workers that
/// completed, plus the first caught panic (by worker index) if any.
/// Sibling results survive a panic — they are collected, not thrown
/// away — which is what lets checkpoints keep completed work.
pub struct PoolOutcome<T> {
    pub results: Vec<T>,
    pub panic: Option<WorkerPanic>,
}

/// Run `worker` on `threads` scoped workers with per-worker panic
/// isolation. Each worker body runs under `catch_unwind`; a panic
/// marks the context ([`RunContext::worker_panicked`]) and trips the
/// cancel token so siblings drain cooperatively, then all workers are
/// joined and the first panic (in worker-index order, deterministic)
/// is reported in the [`PoolOutcome`]. `threads <= 1` runs inline with
/// identical semantics.
pub fn run_supervised<T, F>(
    threads: usize,
    stage: &'static str,
    ctx: &RunContext,
    worker: F,
) -> PoolOutcome<T>
where
    T: Send,
    F: Fn() -> T + Sync,
{
    let guarded = || match catch_unwind(AssertUnwindSafe(&worker)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            ctx.mark_panicked();
            Err(WorkerPanic {
                stage,
                detail: panic_detail(payload.as_ref()),
            })
        }
    };
    if threads <= 1 {
        return match guarded() {
            Ok(v) => PoolOutcome {
                results: vec![v],
                panic: None,
            },
            Err(p) => PoolOutcome {
                results: Vec::new(),
                panic: Some(p),
            },
        };
    }
    crossbeam::scope(|scope| {
        let guarded = &guarded;
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(move |_| guarded())).collect();
        let mut results = Vec::new();
        let mut panic = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(v)) => results.push(v),
                Ok(Err(p)) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
                // Unreachable in practice: the worker body is fully
                // wrapped in catch_unwind. Kept as a typed fallback so
                // a join failure can never unwind the supervisor.
                Err(_) => {
                    ctx.mark_panicked();
                    if panic.is_none() {
                        panic = Some(WorkerPanic {
                            stage,
                            detail: "worker panicked outside the unwind guard".to_string(),
                        });
                    }
                }
            }
        }
        PoolOutcome { results, panic }
    })
    .expect("all worker panics are caught inside the scope")
}

/// Render a caught panic payload: injected faults, `&str` and `String`
/// messages are recognized; anything else gets a placeholder.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        format!("injected fault at {}", fault.site)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared atomic work counter for pools whose workers pull item
/// indices; a thin convenience so call sites stay uniform.
pub struct WorkQueue {
    next: AtomicUsize,
    len: usize,
}

impl WorkQueue {
    /// Queue over `0..len`.
    pub fn new(len: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Next unclaimed index, or `None` when the queue is drained.
    pub fn pull(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_context_never_trips() {
        let ctx = RunContext::unbounded();
        for _ in 0..10_000 {
            assert!(ctx.tick(1));
        }
        assert!(!ctx.should_stop());
        assert_eq!(ctx.ticks_spent(), 0, "passive contexts do not count");
    }

    #[test]
    fn budget_trips_exactly_at_spend() {
        let ctx = RunContext::with_tick_budget(5);
        assert!(ctx.tick(2));
        assert!(ctx.tick(2));
        assert!(!ctx.tick(2), "5th/6th tick crosses the budget");
        assert!(ctx.should_stop());
        assert_eq!(ctx.ticks_spent(), 6);
    }

    #[test]
    fn zero_budget_stops_at_first_tick() {
        let ctx = RunContext::with_tick_budget(0);
        assert!(!ctx.should_stop(), "no work attempted yet");
        assert!(!ctx.tick(1));
        assert!(ctx.should_stop());
    }

    #[test]
    fn external_token_cancels() {
        let ctx = RunContext::unbounded();
        let token = ctx.cancel_token();
        assert!(ctx.tick(1));
        token.cancel();
        assert!(!ctx.tick(1));
        assert!(ctx.should_stop());
    }

    #[test]
    fn fault_plan_counts_hits_per_site() {
        let plan = FaultPlan::new().inject("a.site", 2, FaultAction::Cancel);
        let ctx = RunContext::unbounded().with_faults(plan);
        faultpoint!(&ctx, "a.site");
        assert!(!ctx.should_stop());
        faultpoint!(&ctx, "a.site");
        assert!(!ctx.should_stop());
        faultpoint!(&ctx, "a.site");
        assert!(ctx.should_stop(), "third hit (index 2) trips the cancel");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let sites = ["x.a", "x.b", "x.c"];
        let p1 = FaultPlan::seeded(42, &sites, 8, 100);
        let p2 = FaultPlan::seeded(42, &sites, 8, 100);
        assert_eq!(p1.arms(), p2.arms());
        assert_eq!(p1.arms().len(), 8);
        let p3 = FaultPlan::seeded(43, &sites, 8, 100);
        assert_ne!(p1.arms(), p3.arms(), "different seeds draw different plans");
    }

    #[test]
    fn injected_panic_is_caught_and_named() {
        let plan = FaultPlan::new().inject("boom.site", 0, FaultAction::Panic);
        let ctx = RunContext::unbounded().with_faults(plan);
        let outcome = run_supervised(1, "test.stage", &ctx, || {
            faultpoint!(&ctx, "boom.site");
            7u32
        });
        assert!(outcome.results.is_empty());
        let panic = outcome.panic.expect("the injected panic must surface");
        assert_eq!(panic.stage, "test.stage");
        assert!(panic.detail.contains("boom.site"), "detail: {}", panic.detail);
        assert!(ctx.worker_panicked());
        assert!(ctx.should_stop(), "a panic cancels the run for siblings");
    }

    #[test]
    fn sibling_results_survive_a_panic() {
        let queue = WorkQueue::new(64);
        let ctx = RunContext::unbounded();
        let hits = AtomicU64::new(0);
        let outcome = run_supervised(4, "test.stage", &ctx, || {
            let mut local = 0u64;
            while let Some(i) = queue.pull() {
                if ctx.should_stop() {
                    break;
                }
                if i == 5 && hits.fetch_add(1, Ordering::Relaxed) == 0 {
                    std::panic::panic_any(InjectedFault {
                        site: "manual".to_string(),
                    });
                }
                local += 1;
            }
            local
        });
        assert!(outcome.panic.is_some(), "the panic must be reported");
        assert_eq!(
            outcome.results.len(),
            3,
            "the three sibling workers drain and return their results"
        );
    }

    #[test]
    fn interrupted_accessors() {
        let cancelled: Interrupted<u32> = Interrupted::Cancelled { checkpoint: 9 };
        assert_eq!(*cancelled.checkpoint(), 9);
        let mapped = cancelled.map_checkpoint(|c| c + 1);
        assert_eq!(mapped.into_checkpoint(), 10);
        let panicked = Interrupted::WorkerPanicked {
            panic: WorkerPanic {
                stage: "s",
                detail: "d".to_string(),
            },
            checkpoint: 3u32,
        };
        assert!(panicked.to_string().contains("worker panicked in s"));
        assert_eq!(panicked.into_checkpoint(), 3);
    }

    #[test]
    fn work_queue_drains_once() {
        let queue = WorkQueue::new(3);
        assert_eq!(queue.pull(), Some(0));
        assert_eq!(queue.pull(), Some(1));
        assert_eq!(queue.pull(), Some(2));
        assert_eq!(queue.pull(), None);
        assert_eq!(queue.pull(), None);
    }
}
