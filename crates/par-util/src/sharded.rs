//! A sharded, insert-once concurrent memo table.
//!
//! The labeling pipeline memoizes pure functions (`ST`, lowest common
//! parents, `SV`) and the discovery front-end memoizes canonical codes
//! of bit-packed candidate subgraphs; in both cases the results are
//! recomputed identically by every thread. One global `RwLock<HashMap>`
//! serializes all writers during cache warm-up — the hottest phase of a
//! parallel run — so the map is split into shards, each behind its own
//! lock, selected by key hash.
//! Values are computed *outside* any lock and inserted with first-writer
//! wins (`entry().or_insert`): concurrent computes waste a little work
//! but, being pure, always agree, so reads are deterministic regardless
//! of thread interleaving.
//!
//! ## Poisoning
//!
//! The shards use `std::sync::RwLock`, whose guards poison the lock if
//! a holder panics. Because every entry is a memoized *pure* value,
//! a poisoned shard carries no irreplaceable state: the recovery path
//! ([`ShardedCache::poison_shard`] documents how tests poison one)
//! clears the poison flag and discards the shard's entries, and every
//! later lookup simply recomputes — first-writer-wins means the rebuilt
//! entries are identical. A panicking compute closure never poisons at
//! all, since computes run outside the lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of shards; a power of two so shard selection is a mask.
const SHARDS: usize = 16;

type Shard<K, V> = RwLock<HashMap<K, V>>;

/// Sharded concurrent memo table for a pure function of `K`.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl<K: Hash + Eq, V: Copy> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Copy> ShardedCache<K, V> {
    /// Empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// Read-lock a shard, recovering it first if a previous holder
    /// panicked (see the module docs on why recovery is safe here).
    fn read_shard<'a>(&'a self, shard: &'a Shard<K, V>) -> RwLockReadGuard<'a, HashMap<K, V>> {
        for _ in 0..2 {
            if let Ok(guard) = shard.read() {
                return guard;
            }
            Self::recover(shard);
        }
        // Poisoned again between recovery and re-acquisition: the
        // half-written state was already discarded, so reading through
        // the poison is sound.
        shard.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-lock a shard, recovering it first if poisoned.
    fn write_shard<'a>(&'a self, shard: &'a Shard<K, V>) -> RwLockWriteGuard<'a, HashMap<K, V>> {
        for _ in 0..2 {
            if let Ok(guard) = shard.write() {
                return guard;
            }
            Self::recover(shard);
        }
        shard.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Discard a poisoned shard: clear the poison flag and drop its
    /// entries. Entries are memoized pure values inserted first-writer
    /// wins, so clearing loses nothing but warm-cache work — later
    /// lookups recompute and re-insert byte-identical values.
    fn recover(shard: &Shard<K, V>) {
        shard.clear_poison();
        match shard.write() {
            Ok(mut guard) => guard.clear(),
            Err(poisoned) => {
                shard.clear_poison();
                poisoned.into_inner().clear();
            }
        }
    }

    /// Cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        self.read_shard(shard).get(key).copied()
    }

    /// The memoized value of `compute(key)`: a cache hit returns the
    /// stored value; a miss runs `compute` outside the lock and inserts
    /// the result unless another thread got there first (whose value is
    /// then returned — identical for a pure `compute`).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(&v) = self.read_shard(shard).get(&key) {
            return v;
        }
        let v = compute();
        *self.write_shard(shard).entry(key).or_insert(v)
    }

    /// Fault-injection support: poison the shard holding `key` by
    /// panicking while its write guard is held (the panic is caught
    /// right here and never escapes). The next operation touching the
    /// shard takes the recovery path.
    pub fn poison_shard(&self, key: &K) {
        let shard = self.shard(key);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.write().unwrap_or_else(PoisonError::into_inner);
            std::panic::panic_any(ShardPoisonInjection);
        }));
        debug_assert!(result.is_err(), "the injection closure always panics");
        drop(result);
    }

    /// Total number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_shard(s).len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Panic payload used by [`ShardedCache::poison_shard`], so the caught
/// injection is distinguishable from a real panic in a debugger.
struct ShardPoisonInjection;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: ShardedCache<(u32, u32), f64> = ShardedCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&(1, 2)), None);
        let mut calls = 0;
        let v = cache.get_or_insert_with((1, 2), || {
            calls += 1;
            0.5
        });
        assert_eq!(v, 0.5);
        let v = cache.get_or_insert_with((1, 2), || {
            calls += 1;
            0.9
        });
        assert_eq!(v, 0.5, "first insert wins");
        assert_eq!(calls, 1, "hit takes the read fast path");
        assert_eq!(cache.get(&(1, 2)), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..1000 {
            cache.get_or_insert_with(k, || k * 2);
        }
        assert_eq!(cache.len(), 1000);
        for k in 0..1000 {
            assert_eq!(cache.get(&k), Some(k * 2));
        }
    }

    #[test]
    fn shared_across_threads() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for k in 0..256 {
                        assert_eq!(cache.get_or_insert_with(k, || k + 1), k + 1);
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn panicking_compute_closure_does_not_poison() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        cache.get_or_insert_with(1, || 10);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert_with(2, || panic!("compute blew up"))
        }));
        assert!(attempt.is_err());
        // Computes run outside the lock, so the cache is fully usable
        // and the earlier entry survives.
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get_or_insert_with(2, || 20), 20);
    }

    #[test]
    fn poisoned_shard_recovers_on_get() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..64 {
            cache.get_or_insert_with(k, || k + 100);
        }
        cache.poison_shard(&3);
        // The shard holding 3 was discarded; the lookup recovers the
        // lock and reports a (correct) miss instead of panicking.
        assert_eq!(cache.get(&3), None);
        // Other shards are untouched: at least one key must still hit.
        assert!((0..64).any(|k| cache.get(&k) == Some(k + 100)));
        // First-writer-wins rebuild: the recomputed value is identical.
        assert_eq!(cache.get_or_insert_with(3, || 103), 103);
        assert_eq!(cache.get(&3), Some(103));
    }

    #[test]
    fn poisoned_shard_recovers_on_insert_and_len() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        cache.get_or_insert_with(7, || 700);
        cache.poison_shard(&7);
        assert_eq!(cache.get_or_insert_with(7, || 700), 700, "rebuilt entry");
        assert_eq!(cache.get(&7), Some(700));
        assert!(cache.len() >= 1, "len traverses every shard post-recovery");
    }

    #[test]
    fn concurrent_use_during_poisoning_stays_consistent() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        let cache = &cache;
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..16 {
                    cache.poison_shard(&1);
                }
            });
            for t in 0..2 {
                s.spawn(move || {
                    for k in 0..512u32 {
                        let v = cache.get_or_insert_with(k, || k * 3);
                        assert_eq!(v, k * 3, "worker {t}: value is always the pure result");
                    }
                });
            }
        });
        // Post-recovery reads are either hits with the pure value or
        // misses (cleared shard) — never garbage.
        for k in 0..512u32 {
            if let Some(v) = cache.get(&k) {
                assert_eq!(v, k * 3);
            }
        }
    }
}
