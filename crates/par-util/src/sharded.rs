//! A sharded, insert-once concurrent memo table.
//!
//! The labeling pipeline memoizes pure functions (`ST`, lowest common
//! parents, `SV`) and the discovery front-end memoizes canonical codes
//! of bit-packed candidate subgraphs; in both cases the results are
//! recomputed identically by every thread. One global `RwLock<HashMap>`
//! serializes all writers during cache warm-up — the hottest phase of a
//! parallel run — so the map is split into shards, each behind its own
//! lock, selected by key hash.
//! Values are computed *outside* any lock and inserted with first-writer
//! wins (`entry().or_insert`): concurrent computes waste a little work
//! but, being pure, always agree, so reads are deterministic regardless
//! of thread interleaving.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};

/// Number of shards; a power of two so shard selection is a mask.
const SHARDS: usize = 16;

/// Sharded concurrent memo table for a pure function of `K`.
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl<K: Hash + Eq, V: Copy> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Copy> ShardedCache<K, V> {
    /// Empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & (SHARDS - 1)]
    }

    /// Cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).copied()
    }

    /// The memoized value of `compute(key)`: a cache hit returns the
    /// stored value; a miss runs `compute` outside the lock and inserts
    /// the result unless another thread got there first (whose value is
    /// then returned — identical for a pure `compute`).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(&v) = shard.read().get(&key) {
            return v;
        }
        let v = compute();
        *shard.write().entry(key).or_insert(v)
    }

    /// Total number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: ShardedCache<(u32, u32), f64> = ShardedCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&(1, 2)), None);
        let mut calls = 0;
        let v = cache.get_or_insert_with((1, 2), || {
            calls += 1;
            0.5
        });
        assert_eq!(v, 0.5);
        let v = cache.get_or_insert_with((1, 2), || {
            calls += 1;
            0.9
        });
        assert_eq!(v, 0.5, "first insert wins");
        assert_eq!(calls, 1, "hit takes the read fast path");
        assert_eq!(cache.get(&(1, 2)), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..1000 {
            cache.get_or_insert_with(k, || k * 2);
        }
        assert_eq!(cache.len(), 1000);
        for k in 0..1000 {
            assert_eq!(cache.get(&k), Some(k * 2));
        }
    }

    #[test]
    fn shared_across_threads() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for k in 0..256 {
                        assert_eq!(cache.get_or_insert_with(k, || k + 1), k + 1);
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(cache.len(), 256);
    }
}
