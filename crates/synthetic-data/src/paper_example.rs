//! The paper's worked example: Figure 1 (GO subset), Table 1 (genome
//! annotation counts), Figure 2 (motif g), Figure 3 (occurrences in the
//! PPI network G) and Table 2 (protein annotations).
//!
//! The paper never lists the example DAG's edges and its prose is
//! partially inconsistent with Table 1 (see DESIGN.md §6). The edge set
//! below is the unique reconstruction that reproduces **every** count in
//! Table 1 and the prose statements about G04, G05 and G06:
//!
//! ```text
//! G01 → {G02, G03}
//! G02 → {G04, G05}            G03 → {G05, G06, G08}
//! G04 → {G07, G08}            G05 → {G09, G10, G11}
//! G06 → G09 (part-of)         G07 → G10
//! G08 → {G10, G11}
//! ```

use go_ontology::{Annotations, Namespace, Ontology, OntologyBuilder, ProteinId, Relation, TermId};
use motif_finder::{Motif, Occurrence};
use ppi_graph::{Graph, VertexId};

/// All fixtures of the worked example.
pub struct PaperExample {
    /// The Figure 1 GO subset (terms `G01..G11` as ids `0..11`).
    pub ontology: Ontology,
    /// The 585-protein genome annotation table behind Table 1's counts
    /// (each genome protein carries exactly one term, matching the
    /// table's arithmetic).
    pub genome: Annotations,
    /// Table 2's annotations for the network proteins `p1..p22`
    /// (protein `pK` is id `K-1`; `p17..p22` are unannotated).
    pub proteins: Annotations,
    /// The Figure 3 PPI network over `p1..p22`.
    pub network: Graph,
    /// The Figure 2 motif (square `v1-v2-v3-v4` plus diagonal `v1-v3`)
    /// with its four occurrences `o1..o4`.
    pub motif: Motif,
}

impl PaperExample {
    /// Build the example. Deterministic; no RNG involved.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let ontology = build_ontology();
        let genome = build_genome(&ontology);
        let proteins = build_proteins(&ontology);
        let (network, motif) = build_network();
        PaperExample {
            ontology,
            genome,
            proteins,
            network,
            motif,
        }
    }

    /// Term id of `G01..G11` (1-based, as in the paper).
    pub fn g(&self, i: u32) -> TermId {
        assert!((1..=11).contains(&i), "terms are G01..G11");
        TermId(i - 1)
    }

    /// Protein id of `p1..p22` (1-based, as in the paper).
    pub fn p(&self, i: u32) -> ProteinId {
        assert!((1..=22).contains(&i), "proteins are p1..p22");
        ProteinId(i - 1)
    }

    /// The four occurrences `o1..o4` (1-based).
    pub fn occurrence(&self, i: usize) -> &Occurrence {
        &self.motif.occurrences[i - 1]
    }
}

fn build_ontology() -> Ontology {
    let mut b = OntologyBuilder::new();
    for i in 1..=11 {
        b.add_term(format!("G{i:02}"), format!("term G{i:02}"), Namespace::BiologicalProcess);
    }
    let edges: &[(u32, u32, Relation)] = &[
        (2, 1, Relation::IsA),
        (3, 1, Relation::IsA),
        (4, 2, Relation::IsA),
        (5, 2, Relation::IsA),
        (5, 3, Relation::IsA),
        (6, 3, Relation::PartOf),
        (8, 3, Relation::IsA),
        (7, 4, Relation::IsA),
        (8, 4, Relation::IsA),
        (9, 5, Relation::IsA),
        (10, 5, Relation::IsA),
        (11, 5, Relation::IsA),
        (9, 6, Relation::PartOf),
        (10, 7, Relation::IsA),
        (10, 8, Relation::IsA),
        (11, 8, Relation::IsA),
    ];
    for &(c, p, rel) in edges {
        b.add_edge(TermId(c - 1), TermId(p - 1), rel);
    }
    b.build().expect("example DAG is valid")
}

/// Table 1, column 2: direct annotation counts per term.
const DIRECT_COUNTS: [(u32, usize); 11] = [
    (1, 0),
    (2, 0),
    (3, 20),
    (4, 100),
    (5, 70),
    (6, 150),
    (7, 10),
    (8, 25),
    (9, 100),
    (10, 90),
    (11, 20),
];

fn build_genome(ontology: &Ontology) -> Annotations {
    let total: usize = DIRECT_COUNTS.iter().map(|&(_, c)| c).sum();
    debug_assert_eq!(total, 585, "Table 1 SUM");
    let mut ann = Annotations::new(total, ontology.term_count());
    let mut next = 0u32;
    for &(term, count) in &DIRECT_COUNTS {
        for _ in 0..count {
            ann.annotate(ProteinId(next), TermId(term - 1));
            next += 1;
        }
    }
    ann
}

/// Table 2: GO annotations of `p1..p16`.
const PROTEIN_ANNOTATIONS: [(u32, &[u32]); 16] = [
    (1, &[4, 9, 10]),
    (2, &[10, 3]),
    (3, &[8]),
    (4, &[9, 7]),
    (5, &[3]),
    (6, &[10]),
    (7, &[3]),
    (8, &[5]),
    (9, &[11, 10]),
    (10, &[3, 5, 7]),
    (11, &[5]),
    (12, &[9]),
    (13, &[11]),
    (14, &[4, 5]),
    (15, &[4]),
    (16, &[4, 9]),
];

fn build_proteins(ontology: &Ontology) -> Annotations {
    let mut ann = Annotations::new(22, ontology.term_count());
    for &(p, terms) in &PROTEIN_ANNOTATIONS {
        for &t in terms {
            ann.annotate(ProteinId(p - 1), TermId(t - 1));
        }
    }
    ann
}

fn build_network() -> (Graph, Motif) {
    // Motif g: square v1-v2-v3-v4 with diagonal v1-v3 (vertices 0..3).
    let pattern = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);

    // Occurrences (pattern position -> protein), matching the paper's
    // worked alignment: o2 pairs {p1,p2,p3,p4} with {p12,p9,p10,p11}.
    let occ_proteins: [[u32; 4]; 4] = [
        [1, 2, 3, 4],
        [12, 9, 10, 11],
        [5, 6, 7, 8],
        [13, 14, 15, 16],
    ];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut occurrences = Vec::new();
    for occ in &occ_proteins {
        let v: Vec<u32> = occ.iter().map(|&p| p - 1).collect();
        edges.extend_from_slice(&[
            (v[0], v[1]),
            (v[1], v[2]),
            (v[2], v[3]),
            (v[3], v[0]),
            (v[0], v[2]),
        ]);
        occurrences.push(Occurrence::new(v.into_iter().map(VertexId).collect()));
    }
    // p17..p22 (ids 16..21): a separate path component so no extra
    // occurrences of g arise.
    for i in 16..21 {
        edges.push((i, i + 1));
    }
    let network = Graph::from_edges(22, &edges);
    let frequency = occurrences.len();
    (
        network,
        Motif {
            pattern,
            occurrences,
            frequency,
            uniqueness: Some(1.0),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermWeights;

    #[test]
    fn table1_weights_reproduce_exactly() {
        let ex = PaperExample::new();
        let w = TermWeights::compute(&ex.ontology, &ex.genome);
        // (term, subtree occurrences, weight rounded to 2 decimals).
        let expected = [
            (1, 585, 1.00),
            (2, 415, 0.71),
            (3, 475, 0.81),
            (4, 245, 0.42),
            (5, 280, 0.48),
            (6, 250, 0.43),
            (7, 100, 0.17),
            (8, 135, 0.23),
            (9, 100, 0.17),
            (10, 90, 0.15),
            (11, 20, 0.03),
        ];
        for (g, subtree, weight) in expected {
            let t = ex.g(g);
            assert_eq!(
                w.subtree_occurrences(t),
                subtree,
                "G{g:02} subtree occurrences"
            );
            assert!(
                ((w.weight(t) * 100.0).round() / 100.0 - weight).abs() < 1e-9,
                "G{g:02} weight: got {}",
                w.weight(t)
            );
        }
    }

    #[test]
    fn prose_statements_hold() {
        let ex = PaperExample::new();
        let o = &ex.ontology;
        // "G04 is a child of G02 following the is-a relationship."
        assert!(o.parents(ex.g(4)).contains(&(ex.g(2), Relation::IsA)));
        // "G06 is a child of G03 following the part-of relationship."
        assert!(o.parents(ex.g(6)).contains(&(ex.g(3), Relation::PartOf)));
        // "G05 has G02 and G03 as its parents."
        let parents: Vec<TermId> = o.parents(ex.g(5)).iter().map(|&(t, _)| t).collect();
        assert_eq!(parents, vec![ex.g(2), ex.g(3)]);
    }

    #[test]
    fn informative_classes_match_paper() {
        use go_ontology::{InformativeClasses, InformativeConfig};
        let ex = PaperExample::new();
        let ic = InformativeClasses::compute(&ex.ontology, &ex.genome, InformativeConfig::default());
        // "G04, G05, G06, G09, and G10 are informative FC."
        let informative: Vec<TermId> = ic.informative_terms();
        assert_eq!(
            informative,
            vec![ex.g(4), ex.g(5), ex.g(6), ex.g(9), ex.g(10)]
        );
        // Border (formal definition): G04, G05, G06 — G09 and G10 are
        // excluded since G05 is an informative ancestor of both.
        assert_eq!(ic.border_terms(), vec![ex.g(4), ex.g(5), ex.g(6)]);
    }

    #[test]
    fn motif_occurrences_are_valid() {
        let ex = PaperExample::new();
        assert!(ex.motif.validate_against(&ex.network));
        assert_eq!(ex.motif.frequency, 4);
        assert_eq!(ex.network.vertex_count(), 22);
    }

    #[test]
    fn motif_symmetric_sets_match_section2() {
        let ex = PaperExample::new();
        // "{v1, v3} and {v2, v4}" — positions {0,2} and {1,3}.
        let orbits = ppi_graph::symmetric_vertex_sets(&ex.motif.pattern);
        assert_eq!(
            orbits,
            vec![
                vec![VertexId(0), VertexId(2)],
                vec![VertexId(1), VertexId(3)],
            ]
        );
    }

    #[test]
    fn table2_annotations_loaded() {
        let ex = PaperExample::new();
        assert_eq!(
            ex.proteins.terms_of(ex.p(1)),
            &[ex.g(4), ex.g(9), ex.g(10)]
        );
        assert_eq!(ex.proteins.terms_of(ex.p(3)), &[ex.g(8)]);
        assert!(ex.proteins.terms_of(ex.p(17)).is_empty());
        assert_eq!(ex.proteins.total_occurrences(), 25);
    }

    #[test]
    fn section3_conformance_example() {
        use lamofinder_check::check_conformance;
        let ex = PaperExample::new();
        // "{G04, G08, G04, G05} is consistent with the occurrence o1."
        assert!(check_conformance(
            &ex,
            &[&[4], &[8], &[4], &[5]],
            ex.occurrence(1)
        ));
        // A wrong scheme: the leaf G11 covers none of p1's annotations.
        assert!(!check_conformance(
            &ex,
            &[&[11], &[8], &[4], &[5]],
            ex.occurrence(1)
        ));
    }

    /// Minimal conformance checker local to the tests (the full
    /// implementation lives in the `lamofinder` crate; this avoids a
    /// dev-dependency cycle).
    mod lamofinder_check {
        use super::*;

        pub fn check_conformance(
            ex: &PaperExample,
            labels: &[&[u32]],
            occ: &Occurrence,
        ) -> bool {
            labels.iter().zip(&occ.vertices).all(|(ls, &v)| {
                let protein_terms = ex.proteins.terms_of(ProteinId(v.0));
                ls.iter().all(|&l| {
                    protein_terms
                        .iter()
                        .any(|&a| ex.ontology.is_same_or_ancestor(TermId(l - 1), a))
                })
            })
        }
    }
}
