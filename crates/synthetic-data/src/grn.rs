//! Synthetic gene regulatory network — the directed-network testbed for
//! the paper's future-work extension (Section 6: "many real-world
//! networks can also be modelled with directed graphs"). Gene
//! regulatory networks are the canonical source of directed motifs:
//! feed-forward loops, bi-fans and regulator cascades [Milo et al.].

use crate::annotate::ModuleTheme;
use crate::go_gen::{generate_ontology, top_categories, GoGenConfig};
use go_ontology::{Annotations, Namespace, Ontology, ProteinId, TermId};
use ppi_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Planted directed module kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirectedModuleKind {
    /// Feed-forward loop: regulator → intermediate → target, plus the
    /// shortcut regulator → target.
    FeedForwardLoop,
    /// Bi-fan: two regulators each driving the same two targets.
    BiFan,
    /// A regulator driving `targets` genes directly.
    FanOut(usize),
}

impl DirectedModuleKind {
    /// Genes consumed by one instance.
    pub fn vertex_count(&self) -> usize {
        match *self {
            DirectedModuleKind::FeedForwardLoop => 3,
            DirectedModuleKind::BiFan => 4,
            DirectedModuleKind::FanOut(t) => t + 1,
        }
    }
}

/// One planted directed module.
#[derive(Clone, Debug)]
pub struct DirectedModule {
    /// What was planted.
    pub kind: DirectedModuleKind,
    /// Members: regulators first, then downstream genes.
    pub members: Vec<VertexId>,
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct GrnConfig {
    /// Number of genes.
    pub n_genes: usize,
    /// Number of regulatory arcs.
    pub n_arcs: usize,
    /// Feed-forward loops to plant.
    pub n_ffl: usize,
    /// Bi-fans to plant.
    pub n_bifan: usize,
    /// Fan-outs to plant (each 1 regulator + 5 targets).
    pub n_fanout: usize,
    /// Ontology shape.
    pub go: GoGenConfig,
    /// Annotation coverage.
    pub coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GrnConfig {
    fn default() -> Self {
        GrnConfig {
            n_genes: 600,
            n_arcs: 1100,
            n_ffl: 30,
            n_bifan: 15,
            n_fanout: 10,
            go: GoGenConfig {
                terms_per_namespace: 150,
                ..GoGenConfig::default()
            },
            coverage: 0.85,
            seed: 77,
        }
    }
}

/// The generated regulatory network.
pub struct GrnDataset {
    /// The directed network (arcs point regulator → regulated).
    pub network: DiGraph,
    /// The synthetic GO DAG.
    pub ontology: Ontology,
    /// Gene annotations. Regulator roles draw from one theme per module,
    /// downstream roles from another — so directed motif positions carry
    /// functional signal.
    pub annotations: Annotations,
    /// Ground-truth planted modules.
    pub modules: Vec<DirectedModule>,
    /// Role themes per module: `terms[0]` = regulator theme,
    /// `terms[1]` = downstream theme.
    pub themes: Vec<ModuleTheme>,
}

impl GrnDataset {
    /// Generate the dataset.
    pub fn generate(config: &GrnConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let ontology = generate_ontology(&config.go, &mut rng);

        let mut network = DiGraph::empty(config.n_genes);
        let mut modules = Vec::new();
        let mut next = 0u32;
        let alloc = |k: usize, next: &mut u32| -> Vec<VertexId> {
            let members: Vec<VertexId> = (*next..*next + k as u32).map(VertexId).collect();
            *next += k as u32;
            members
        };
        for _ in 0..config.n_ffl {
            let m = alloc(3, &mut next);
            network.add_arc(m[0], m[1]);
            network.add_arc(m[0], m[2]);
            network.add_arc(m[1], m[2]);
            modules.push(DirectedModule {
                kind: DirectedModuleKind::FeedForwardLoop,
                members: m,
            });
        }
        for _ in 0..config.n_bifan {
            let m = alloc(4, &mut next);
            for r in 0..2 {
                for t in 2..4 {
                    network.add_arc(m[r], m[t]);
                }
            }
            modules.push(DirectedModule {
                kind: DirectedModuleKind::BiFan,
                members: m,
            });
        }
        for _ in 0..config.n_fanout {
            let m = alloc(6, &mut next);
            for t in 1..6 {
                network.add_arc(m[0], m[t]);
            }
            modules.push(DirectedModule {
                kind: DirectedModuleKind::FanOut(5),
                members: m,
            });
        }
        assert!(
            (next as usize) <= config.n_genes,
            "module plan exceeds gene budget"
        );

        // Background regulation: out-hub-biased random arcs.
        let n = config.n_genes as u32;
        let mut guard = 0;
        while network.arc_count() < config.n_arcs && guard < 100 * config.n_arcs {
            guard += 1;
            // Bias sources toward low ids (planted regulators + a few
            // global TFs), targets uniform.
            let s = if rng.gen_bool(0.3) {
                rng.gen_range(0..(next.max(1)))
            } else {
                rng.gen_range(0..n)
            };
            let t = rng.gen_range(0..n);
            network.add_arc(VertexId(s), VertexId(t));
        }

        // Role-correlated annotations.
        let bp_terms: Vec<TermId> = ontology
            .terms_in_namespace(Namespace::BiologicalProcess)
            .into_iter()
            .filter(|&t| !ontology.parents(t).is_empty())
            .collect();
        let categories = top_categories(&ontology, Namespace::BiologicalProcess);
        let mut annotations = Annotations::new(config.n_genes, ontology.term_count());
        let mut themes = Vec::with_capacity(modules.len());
        // A handful of recurring "regulatory programs": real regulons
        // reuse the same regulator/target function pairs across many
        // module instances, which is what lets labeled motifs accumulate
        // support. Program i pairs category 2i with category 2i+1.
        let n_programs = (categories.len() / 2).clamp(1, 3);
        // Each program fixes one concrete regulator role term and one
        // target role term (a child of its category), drawn once and
        // reused by every module instance of that program. Per-gene
        // draws would spread direct annotations across sibling terms,
        // leaving each role term with too little support to anchor a
        // labeled motif.
        let program_roles: Vec<(TermId, TermId)> = (0..n_programs)
            .map(|p| {
                let reg = random_role_term(&ontology, categories[2 * p], &mut rng);
                let tgt = random_role_term(&ontology, categories[2 * p + 1], &mut rng);
                (reg, tgt)
            })
            .collect();
        for (mi, module) in modules.iter().enumerate() {
            let program = mi % n_programs;
            let reg_theme = categories[2 * program];
            let tgt_theme = categories[2 * program + 1];
            themes.push(ModuleTheme {
                terms: [reg_theme, tgt_theme, reg_theme],
            });
            let regulators = match module.kind {
                DirectedModuleKind::FeedForwardLoop => 1,
                DirectedModuleKind::BiFan => 2,
                DirectedModuleKind::FanOut(_) => 1,
            };
            let (reg_term, tgt_term) = program_roles[program];
            for (i, &v) in module.members.iter().enumerate() {
                if !rng.gen_bool(config.coverage) {
                    continue;
                }
                let term = if i < regulators { reg_term } else { tgt_term };
                annotations.annotate(ProteinId(v.0), term);
            }
        }
        // Background genes: one random term.
        for g in next as usize..config.n_genes {
            if rng.gen_bool(config.coverage) {
                let t = *bp_terms.choose(&mut rng).expect("the BP term pool is non-empty by generator construction");
                annotations.annotate(ProteinId(g as u32), t);
            }
        }

        GrnDataset {
            network,
            ontology,
            annotations,
            modules,
            themes,
        }
    }
}

/// A role term under category `t`: one of its direct children (or `t`
/// itself when it has none). Keeping the pool small concentrates direct
/// annotation counts, as real curated annotations do.
fn random_role_term<R: Rng>(ontology: &Ontology, t: TermId, rng: &mut R) -> TermId {
    let children: Vec<TermId> = ontology.children(t).iter().map(|&(c, _)| c).collect();
    if children.is_empty() {
        t
    } else {
        *children.choose(rng).expect("child terms exist because the parent is non-leaf")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_determinism() {
        let d = GrnDataset::generate(&GrnConfig::default());
        assert_eq!(d.network.vertex_count(), 600);
        assert!(d.network.arc_count() >= 1100);
        let d2 = GrnDataset::generate(&GrnConfig::default());
        let a1: Vec<_> = d.network.arcs().collect();
        let a2: Vec<_> = d2.network.arcs().collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn planted_ffls_are_intact() {
        let d = GrnDataset::generate(&GrnConfig::default());
        let mut ffls = 0;
        for m in &d.modules {
            if m.kind == DirectedModuleKind::FeedForwardLoop {
                ffls += 1;
                let v = &m.members;
                assert!(d.network.has_arc(v[0], v[1]));
                assert!(d.network.has_arc(v[0], v[2]));
                assert!(d.network.has_arc(v[1], v[2]));
            }
        }
        assert_eq!(ffls, 30);
    }

    #[test]
    fn regulator_and_target_themes_differ() {
        let d = GrnDataset::generate(&GrnConfig::default());
        for theme in &d.themes {
            assert_ne!(theme.terms[0], theme.terms[1]);
        }
    }

    #[test]
    fn annotations_cover_most_genes() {
        let d = GrnDataset::generate(&GrnConfig::default());
        let covered = d.annotations.annotated_protein_count() as f64 / 600.0;
        assert!((0.7..1.0).contains(&covered), "coverage {covered}");
    }
}
