//! Synthetic Gene Ontology generator — the substitute for a real GO
//! release (see DESIGN.md §5).
//!
//! Produces a three-namespace DAG with is-a and part-of edges,
//! multi-parent terms and controllable depth/width. Every GO-side
//! algorithm in the pipeline (weights, informative classes, Lin
//! similarity, LCA search) depends only on DAG shape and annotation
//! counts, both of which this generator matches to the real ontology's
//! regime.

use go_ontology::{Namespace, Ontology, OntologyBuilder, Relation, TermId};
use rand::Rng;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GoGenConfig {
    /// Terms per namespace (including the root).
    pub terms_per_namespace: usize,
    /// Number of children directly under each namespace root. For the
    /// MIPS-style dataset this doubles as the number of top functional
    /// categories (13 in the paper).
    pub root_fanout: usize,
    /// Maximum DAG depth (root = depth 0).
    pub max_depth: usize,
    /// Probability that a term receives a second parent.
    pub multi_parent_prob: f64,
    /// Probability that an edge is part-of rather than is-a.
    pub part_of_prob: f64,
}

impl Default for GoGenConfig {
    fn default() -> Self {
        GoGenConfig {
            terms_per_namespace: 400,
            root_fanout: 13,
            max_depth: 7,
            multi_parent_prob: 0.15,
            part_of_prob: 0.2,
        }
    }
}

/// Generate a synthetic three-namespace ontology.
pub fn generate_ontology<R: Rng>(config: &GoGenConfig, rng: &mut R) -> Ontology {
    assert!(config.terms_per_namespace > config.root_fanout);
    assert!(config.max_depth >= 2);
    let mut builder = OntologyBuilder::new();
    for (ns_idx, ns) in Namespace::ALL.into_iter().enumerate() {
        generate_namespace(&mut builder, ns, ns_idx, config, rng);
    }
    builder.build().expect("generated DAG is valid by construction")
}

fn generate_namespace<R: Rng>(
    builder: &mut OntologyBuilder,
    ns: Namespace,
    ns_idx: usize,
    config: &GoGenConfig,
    rng: &mut R,
) {
    let n = config.terms_per_namespace;
    let acc = |i: usize| format!("GO:{ns_idx}{i:06}");
    let root = builder.add_term(acc(0), format!("{ns} root"), ns);
    // depth[i] for terms of this namespace, in creation order.
    let mut terms: Vec<(TermId, usize)> = vec![(root, 0)];

    for i in 1..n {
        let t = builder.add_term(acc(i), format!("{ns} term {i}"), ns);
        let depth = if i <= config.root_fanout {
            // Fixed top layer under the root.
            builder.add_edge(t, root, Relation::IsA);
            1
        } else {
            // Primary parent: uniform among non-root terms shallower than
            // max_depth (biasing away from the root keeps the DAG deep).
            let candidates: Vec<(TermId, usize)> = terms
                .iter()
                .copied()
                .filter(|&(_, d)| d >= 1 && d < config.max_depth)
                .collect();
            let &(parent, pd) = &candidates[rng.gen_range(0..candidates.len())];
            let rel = if rng.gen_bool(config.part_of_prob) {
                Relation::PartOf
            } else {
                Relation::IsA
            };
            builder.add_edge(t, parent, rel);
            let mut depth = pd + 1;
            // Optional second parent from the already-created terms
            // (creation order keeps the DAG acyclic). Depths are longest
            // ancestor chains, so the bound holds through either parent.
            if rng.gen_bool(config.multi_parent_prob) {
                let &(extra, ed) = &candidates[rng.gen_range(0..candidates.len())];
                if extra != parent {
                    builder.add_edge(t, extra, Relation::IsA);
                    depth = depth.max(ed + 1);
                }
            }
            depth
        };
        terms.push((t, depth));
    }
}

/// Terms of a namespace with no children — the most specific annotation
/// targets.
pub fn leaf_terms(ontology: &Ontology, ns: Namespace) -> Vec<TermId> {
    ontology
        .terms_in_namespace(ns)
        .into_iter()
        .filter(|&t| ontology.children(t).is_empty())
        .collect()
}

/// The direct children of a namespace's root — the "top categories"
/// (e.g. the 13 key yeast functions of Section 5.2).
pub fn top_categories(ontology: &Ontology, ns: Namespace) -> Vec<TermId> {
    let root = ontology
        .roots()
        .iter()
        .copied()
        .find(|&t| ontology.namespace(t) == ns)
        .expect("each namespace has a root");
    let mut cats: Vec<TermId> = ontology.children(root).iter().map(|&(c, _)| c).collect();
    cats.sort_unstable();
    cats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn generate(seed: u64) -> Ontology {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate_ontology(&GoGenConfig::default(), &mut rng)
    }

    #[test]
    fn three_namespaces_with_requested_sizes() {
        let o = generate(1);
        assert_eq!(o.term_count(), 3 * 400);
        for ns in Namespace::ALL {
            assert_eq!(o.terms_in_namespace(ns).len(), 400);
        }
        assert_eq!(o.roots().len(), 3);
    }

    #[test]
    fn root_fanout_is_respected() {
        let o = generate(2);
        for ns in Namespace::ALL {
            assert_eq!(top_categories(&o, ns).len(), 13, "{ns}");
        }
    }

    #[test]
    fn depth_is_bounded_and_nontrivial() {
        let o = generate(3);
        let mut max_depth = 0;
        for t in o.term_ids() {
            // Depth = longest ancestor chain; approximate with ancestor
            // count lower bound and explicit path walk.
            let d = depth_of(&o, t);
            max_depth = max_depth.max(d);
            assert!(d <= 7, "term {t} depth {d}");
        }
        assert!(max_depth >= 4, "expected a deep DAG, got {max_depth}");
    }

    fn depth_of(o: &Ontology, t: TermId) -> usize {
        o.parents(t)
            .iter()
            .map(|&(p, _)| depth_of(o, p) + 1)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn multi_parent_terms_exist() {
        let o = generate(4);
        let multi = o.term_ids().filter(|&t| o.parents(t).len() >= 2).count();
        assert!(multi > 20, "only {multi} multi-parent terms");
    }

    #[test]
    fn part_of_edges_exist() {
        let o = generate(5);
        let part_of = o
            .term_ids()
            .flat_map(|t| o.parents(t).to_vec())
            .filter(|&(_, r)| r == Relation::PartOf)
            .count();
        assert!(part_of > 30);
    }

    #[test]
    fn leaf_terms_are_leaves() {
        let o = generate(6);
        let leaves = leaf_terms(&o, Namespace::BiologicalProcess);
        assert!(leaves.len() > 100);
        for t in leaves {
            assert!(o.children(t).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.term_count(), b.term_count());
        for t in a.term_ids() {
            assert_eq!(a.term(t).accession, b.term(t).accession);
            assert_eq!(a.parents(t), b.parents(t));
        }
    }
}
