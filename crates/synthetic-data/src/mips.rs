//! MIPS-scale synthetic dataset — the substitute for the MIPS PPI data
//! of Section 5.2 (1877 proteins, 2448 physical interactions, top-13
//! functional categories).
//!
//! Functional assignment is *role-aware*: complex (clique) members share
//! one category — the regime where neighborhood methods shine — while
//! regulon hubs and targets carry *different* categories, so a target's
//! 1-hop neighborhood (hubs only) actively misleads neighbor-counting
//! methods while the motif position still identifies the target role.
//! This reproduces the paper's claimed advantage: "the exploitation of
//! remote but topologically similar proteins".

use crate::annotate::ModuleTheme;
use crate::go_gen::{generate_ontology, top_categories, GoGenConfig};
use crate::modules::{add_background, plant_modules, ModuleKind, PlantedModule};
use go_ontology::{Annotations, Namespace, Ontology, ProteinId, TermId};
use ppi_graph::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct MipsConfig {
    /// Number of proteins (paper: 1877).
    pub n_proteins: usize,
    /// Number of interactions (paper: 2448).
    pub n_interactions: usize,
    /// Ontology shape; `root_fanout` fixes the number of top categories
    /// (paper: 13).
    pub go: GoGenConfig,
    /// Fraction of proteins annotated.
    pub coverage: f64,
    /// Probability a module member receives its role category term.
    pub fidelity: f64,
    /// Mean number of random noise terms per annotated protein.
    pub noise_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MipsConfig {
    fn default() -> Self {
        MipsConfig {
            n_proteins: 1877,
            n_interactions: 2448,
            go: GoGenConfig {
                terms_per_namespace: 300,
                root_fanout: 13,
                ..GoGenConfig::default()
            },
            coverage: 0.85,
            fidelity: 0.9,
            noise_mean: 0.4,
            seed: 546,
        }
    }
}

impl MipsConfig {
    /// Down-scaled configuration for tests (~20% scale).
    pub fn small() -> Self {
        MipsConfig {
            n_proteins: 380,
            n_interactions: 500,
            go: GoGenConfig {
                terms_per_namespace: 120,
                root_fanout: 13,
                ..GoGenConfig::default()
            },
            ..Default::default()
        }
    }
}

/// The generated dataset.
pub struct MipsDataset {
    /// The interactome.
    pub network: Graph,
    /// The synthetic GO DAG (13 top categories under the BP root).
    pub ontology: Ontology,
    /// Protein annotations (biological-process branch).
    pub annotations: Annotations,
    /// The 13 top functional categories (children of the BP root).
    pub categories: Vec<TermId>,
    /// Ground-truth planted modules.
    pub modules: Vec<PlantedModule>,
    /// Role themes per module: clique/ring → one theme duplicated;
    /// regulon → `[hub category theme, target category theme, _]`.
    pub themes: Vec<ModuleTheme>,
}

impl MipsDataset {
    /// Generate the dataset.
    pub fn generate(config: &MipsConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let ontology = generate_ontology(&config.go, &mut rng);
        let categories = top_categories(&ontology, Namespace::BiologicalProcess);
        assert_eq!(categories.len(), config.go.root_fanout);

        let plan = module_plan(config.n_proteins);
        let (builder, modules) = plant_modules(config.n_proteins, &plan);
        let protected: usize = plan.iter().map(|m| m.vertex_count()).sum();
        // Sparse interactomes are not fully connected (avg degree ~2.6);
        // skip stitching so the interaction count is exact.
        let network = add_background(builder, config.n_interactions, protected, false, &mut rng);

        let (annotations, themes) = annotate(
            &ontology,
            &categories,
            config,
            &modules,
            &mut rng,
        );

        MipsDataset {
            network,
            ontology,
            annotations,
            categories,
            modules,
            themes,
        }
    }

    /// The top-category functions of a protein: every category that is an
    /// ancestor-or-self of one of its annotations (the paper generalizes
    /// all annotations "to the top 13 key functions" for evaluation).
    pub fn category_functions(&self, p: ProteinId) -> Vec<TermId> {
        let mut cats: Vec<TermId> = self
            .annotations
            .terms_of(p)
            .iter()
            .flat_map(|&t| {
                self.categories
                    .iter()
                    .copied()
                    .filter(move |&c| self.ontology.is_same_or_ancestor(c, t))
                    .collect::<Vec<_>>()
            })
            .collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }
}

fn module_plan(n_proteins: usize) -> Vec<ModuleKind> {
    let f = n_proteins as f64 / 1877.0;
    let count = |base: usize| ((base as f64 * f).round() as usize).max(1);
    let mut plan = Vec::new();
    for _ in 0..count(15) {
        plan.push(ModuleKind::Clique(5));
    }
    for _ in 0..count(10) {
        plan.push(ModuleKind::Clique(6));
    }
    for _ in 0..count(25) {
        plan.push(ModuleKind::Regulon { hubs: 2, targets: 6 });
    }
    for _ in 0..count(10) {
        plan.push(ModuleKind::Regulon { hubs: 2, targets: 10 });
    }
    for _ in 0..count(8) {
        plan.push(ModuleKind::Ring(8));
    }
    plan
}

fn annotate<R: Rng>(
    ontology: &Ontology,
    categories: &[TermId],
    config: &MipsConfig,
    modules: &[PlantedModule],
    rng: &mut R,
) -> (Annotations, Vec<ModuleTheme>) {
    let n = config.n_proteins;
    let mut ann = Annotations::new(n, ontology.term_count());
    let annotated: Vec<bool> = (0..n).map(|_| rng.gen_bool(config.coverage)).collect();

    // Per-category term pools (descendants of each category).
    let pools: Vec<Vec<TermId>> = categories
        .iter()
        .map(|&c| ontology.descendants_or_self(c))
        .collect();

    let mut themes = Vec::with_capacity(modules.len());
    for module in modules {
        let (hub_cat, tgt_cat) = match module.kind {
            ModuleKind::Regulon { .. } => {
                // Distinct hub/target categories: the adversarial case for
                // neighborhood methods.
                let a = rng.gen_range(0..categories.len());
                let mut b = rng.gen_range(0..categories.len());
                while b == a {
                    b = rng.gen_range(0..categories.len());
                }
                (a, b)
            }
            _ => {
                let c = rng.gen_range(0..categories.len());
                (c, c)
            }
        };
        themes.push(ModuleTheme {
            terms: [categories[hub_cat], categories[tgt_cat], categories[hub_cat]],
        });
        let hubs = match module.kind {
            ModuleKind::Regulon { hubs, .. } => hubs,
            _ => module.members.len(),
        };
        for (i, &v) in module.members.iter().enumerate() {
            if !annotated[v.index()] || !rng.gen_bool(config.fidelity) {
                continue;
            }
            let cat = if i < hubs { hub_cat } else { tgt_cat };
            let term = *pools[cat].choose(rng).expect("category pool non-empty");
            ann.annotate(ProteinId(v.0), term);
        }
    }

    // Background proteins: one random category term; everyone annotated
    // gets geometric noise terms.
    let p_stop = 1.0 / (1.0 + config.noise_mean);
    for (v, &is_annotated) in annotated.iter().enumerate() {
        if !is_annotated {
            continue;
        }
        if ann.terms_of(ProteinId(v as u32)).is_empty() {
            let cat = rng.gen_range(0..categories.len());
            let term = *pools[cat].choose(rng).expect("category pools are non-empty by generator construction");
            ann.annotate(ProteinId(v as u32), term);
        }
        while !rng.gen_bool(p_stop) {
            let cat = rng.gen_range(0..categories.len());
            let term = *pools[cat].choose(rng).expect("category pools are non-empty by generator construction");
            ann.annotate(ProteinId(v as u32), term);
        }
    }
    (ann, themes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_counts() {
        let d = MipsDataset::generate(&MipsConfig::default());
        assert_eq!(d.network.vertex_count(), 1877);
        assert_eq!(d.network.edge_count(), 2448, "paper's interaction count");
        assert_eq!(d.categories.len(), 13);
    }

    #[test]
    fn category_functions_generalize_to_top13() {
        let d = MipsDataset::generate(&MipsConfig::small());
        let mut any = false;
        for p in 0..d.network.vertex_count() as u32 {
            let cats = d.category_functions(ProteinId(p));
            for c in &cats {
                assert!(d.categories.contains(c));
            }
            any |= !cats.is_empty();
        }
        assert!(any, "someone must have category functions");
    }

    #[test]
    fn regulon_hubs_and_targets_have_different_categories() {
        let d = MipsDataset::generate(&MipsConfig::small());
        let mut adversarial = 0;
        for (module, theme) in d.modules.iter().zip(&d.themes) {
            if let ModuleKind::Regulon { hubs, .. } = module.kind {
                assert_ne!(theme.terms[0], theme.terms[1]);
                // At least one annotated target whose category set
                // contains the target category.
                let tgt_cat = theme.terms[1];
                let hit = module.members[hubs..].iter().any(|&v| {
                    d.category_functions(ProteinId(v.0)).contains(&tgt_cat)
                });
                if hit {
                    adversarial += 1;
                }
            }
        }
        assert!(adversarial >= 3, "only {adversarial} adversarial regulons");
    }

    #[test]
    fn clique_members_share_category() {
        let d = MipsDataset::generate(&MipsConfig::small());
        let mut checked = 0;
        for (module, theme) in d.modules.iter().zip(&d.themes) {
            if let ModuleKind::Clique(_) = module.kind {
                let cat = theme.terms[0];
                let members_with_cat = module
                    .members
                    .iter()
                    .filter(|&&v| d.category_functions(ProteinId(v.0)).contains(&cat))
                    .count();
                if members_with_cat * 2 >= module.members.len() {
                    checked += 1;
                }
            }
        }
        assert!(checked >= 2, "cliques should mostly share their category");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MipsDataset::generate(&MipsConfig::small());
        let b = MipsDataset::generate(&MipsConfig::small());
        let ea: Vec<_> = a.network.edges().collect();
        let eb: Vec<_> = b.network.edges().collect();
        assert_eq!(ea, eb);
        for p in 0..a.network.vertex_count() as u32 {
            assert_eq!(
                a.annotations.terms_of(ProteinId(p)),
                b.annotations.terms_of(ProteinId(p))
            );
        }
    }
}
