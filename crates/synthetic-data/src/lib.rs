#![forbid(unsafe_code)]
//! Synthetic substitutes for the paper's datasets (DESIGN.md §5).
//!
//! * [`paper_example`] — the worked example of Figures 1–4 and Tables
//!   1–4, with the DAG reconstruction that reproduces Table 1 exactly;
//! * [`go_gen`] — synthetic three-namespace GO DAG generator;
//! * [`modules`] — planted network modules (complexes, regulons, rings);
//! * [`annotate`] — structure-correlated annotation generator;
//! * [`yeast`] — BIND-scale interactome (4141 proteins / 7095 edges);
//! * [`mips`] — MIPS-scale dataset (1877 proteins / 2448 interactions,
//!   13 top functional categories) for the Fig. 9 prediction benchmark;
//! * [`grn`] — a directed gene regulatory network with planted
//!   feed-forward loops and bi-fans for the directed-motif extension.

pub mod annotate;
pub mod go_gen;
pub mod grn;
pub mod mips;
pub mod modules;
pub mod paper_example;
pub mod yeast;

pub use annotate::{annotate_network, pick_themes, AnnotateConfig, ModuleTheme};
pub use go_gen::{generate_ontology, leaf_terms, top_categories, GoGenConfig};
pub use grn::{DirectedModule, DirectedModuleKind, GrnConfig, GrnDataset};
pub use mips::{MipsConfig, MipsDataset};
pub use modules::{add_background, plant_modules, ModuleKind, PlantedModule};
pub use paper_example::PaperExample;
pub use yeast::{YeastConfig, YeastDataset};
