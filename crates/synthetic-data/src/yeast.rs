//! Yeast-scale synthetic interactome — the substitute for the BIND Y2H
//! dataset of Section 4 (7903 raw interactions → cleaned network of
//! 7095 edges over 4141 proteins).
//!
//! Planted complexes (cliques), regulons (hub–target bipartite cores,
//! including meso-scale ones whose sub-bipartites recur >100 times) and
//! signaling rings provide genuinely repeated, above-random subgraph
//! structure; preferential-attachment background wiring provides the
//! heavy-tailed degree distribution. Annotations are theme-correlated
//! with module membership (≈86% coverage, matching 3554/4141).

use crate::annotate::{annotate_network, pick_themes, AnnotateConfig, ModuleTheme};
use crate::go_gen::{generate_ontology, GoGenConfig};
use crate::modules::{add_background, plant_modules, ModuleKind, PlantedModule};
use go_ontology::{Annotations, Ontology};
use ppi_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct YeastConfig {
    /// Number of proteins (paper: 4141).
    pub n_proteins: usize,
    /// Number of interactions (paper: 7095).
    pub n_interactions: usize,
    /// Ontology shape.
    pub go: GoGenConfig,
    /// Annotation statistics.
    pub annotate: AnnotateConfig,
    /// RNG seed (whole dataset is deterministic given the config).
    pub seed: u64,
}

impl Default for YeastConfig {
    fn default() -> Self {
        YeastConfig {
            n_proteins: 4141,
            n_interactions: 7095,
            go: GoGenConfig::default(),
            annotate: AnnotateConfig::default(),
            seed: 2007,
        }
    }
}

impl YeastConfig {
    /// A down-scaled configuration for unit tests and quick examples
    /// (~10% of the paper's scale).
    pub fn small() -> Self {
        YeastConfig {
            n_proteins: 420,
            n_interactions: 720,
            go: GoGenConfig {
                terms_per_namespace: 120,
                ..GoGenConfig::default()
            },
            ..Default::default()
        }
    }
}

/// The generated dataset.
pub struct YeastDataset {
    /// The interactome.
    pub network: Graph,
    /// The synthetic GO DAG.
    pub ontology: Ontology,
    /// Protein annotations.
    pub annotations: Annotations,
    /// The planted modules (ground truth for tests and sanity checks).
    pub modules: Vec<PlantedModule>,
    /// The functional theme of each module.
    pub themes: Vec<ModuleTheme>,
}

impl YeastDataset {
    /// Generate the dataset.
    pub fn generate(config: &YeastConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let ontology = generate_ontology(&config.go, &mut rng);

        let plan = module_plan(config.n_proteins);
        let (builder, modules) = plant_modules(config.n_proteins, &plan);
        let protected: usize = plan.iter().map(|m| m.vertex_count()).sum();
        let network = add_background(builder, config.n_interactions, protected, true, &mut rng);

        let themes = pick_themes(&ontology, modules.len(), &mut rng);
        let annotations = annotate_network(
            &ontology,
            config.n_proteins,
            &modules,
            &themes,
            &config.annotate,
            &mut rng,
        );

        YeastDataset {
            network,
            ontology,
            annotations,
            modules,
            themes,
        }
    }
}

/// Module plan scaled to the protein budget. At full scale (4141
/// proteins) this plants ~800 vertices and ~1450 edges of structured
/// modules; background wiring supplies the rest.
fn module_plan(n_proteins: usize) -> Vec<ModuleKind> {
    let f = n_proteins as f64 / 4141.0;
    let count = |base: usize| ((base as f64 * f).round() as usize).max(1);
    let mut plan = Vec::new();
    for _ in 0..count(20) {
        plan.push(ModuleKind::Clique(6));
    }
    for _ in 0..count(10) {
        plan.push(ModuleKind::Clique(7));
    }
    for _ in 0..count(6) {
        plan.push(ModuleKind::Clique(8));
    }
    for _ in 0..count(20) {
        plan.push(ModuleKind::Regulon { hubs: 2, targets: 6 });
    }
    for _ in 0..count(12) {
        plan.push(ModuleKind::Regulon { hubs: 1, targets: 9 });
    }
    // Meso-scale fan-outs: size-16 sub-bipartites of K_{2,16} recur
    // C(16,14) = 120 ≥ 100 times, feeding the Fig. 6 meso-scale peak.
    for _ in 0..count(8) {
        plan.push(ModuleKind::Regulon { hubs: 2, targets: 16 });
    }
    for _ in 0..count(12) {
        plan.push(ModuleKind::Ring(12));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_matches_budget() {
        let config = YeastConfig::small();
        let d = YeastDataset::generate(&config);
        assert_eq!(d.network.vertex_count(), 420);
        assert_eq!(d.network.edge_count(), 720, "exact interaction budget");
        assert!(ppi_graph::algo::is_connected(&d.network));
    }

    #[test]
    fn full_scale_counts() {
        let d = YeastDataset::generate(&YeastConfig::default());
        assert_eq!(d.network.vertex_count(), 4141);
        assert_eq!(d.network.edge_count(), 7095, "paper's interaction count");
        // Coverage close to 3554/4141.
        let covered = d.annotations.annotated_protein_count() as f64 / 4141.0;
        assert!((0.82..0.90).contains(&covered), "coverage {covered}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let d = YeastDataset::generate(&YeastConfig::small());
        let ds = d.network.degree_sequence();
        let mean = 2.0 * d.network.edge_count() as f64 / d.network.vertex_count() as f64;
        assert!(ds[0] as f64 > 4.0 * mean, "max degree {} vs mean {mean}", ds[0]);
    }

    #[test]
    fn planted_cliques_survive_background() {
        let d = YeastDataset::generate(&YeastConfig::small());
        for module in &d.modules {
            if let ModuleKind::Clique(k) = module.kind {
                for i in 0..k {
                    for j in i + 1..k {
                        assert!(d
                            .network
                            .has_edge(module.members[i], module.members[j]));
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = YeastDataset::generate(&YeastConfig::small());
        let b = YeastDataset::generate(&YeastConfig::small());
        assert_eq!(a.network.edge_count(), b.network.edge_count());
        let ea: Vec<_> = a.network.edges().collect();
        let eb: Vec<_> = b.network.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn triangle_count_is_above_random() {
        // Planted cliques push triangle counts far above a degree-matched
        // random network — the motif premise.
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let d = YeastDataset::generate(&YeastConfig::small());
        let real = ppi_graph::algo::triangle_count(&d.network);
        let mut rng = SmallRng::seed_from_u64(77);
        let shuffled = ppi_graph::random::degree_preserving_shuffle(&d.network, 10, &mut rng);
        let random = ppi_graph::algo::triangle_count(&shuffled);
        assert!(
            real > 3 * random.max(1),
            "real {real} vs randomized {random}"
        );
    }
}
