//! Planted network modules — the recurring structures that make the
//! synthetic interactomes motif-rich.
//!
//! Real Y2H networks owe their motifs to protein complexes (cliques),
//! regulator–target fan-outs (complete bipartite cores) and signaling
//! chains (rings/paths). Planting many instances of such modules and
//! wiring the rest of the network with preferential attachment yields a
//! degree-heterogeneous network whose subgraph statistics exercise the
//! frequency and uniqueness machinery the way BIND/MIPS data does
//! (DESIGN.md §5).

use ppi_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Kinds of planted module.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModuleKind {
    /// A protein complex: a clique of the given size.
    Clique(usize),
    /// Regulators fanning out to shared targets: `K_{hubs,targets}` plus
    /// a clique among the hubs.
    Regulon {
        /// Number of regulator proteins.
        hubs: usize,
        /// Number of shared target proteins.
        targets: usize,
    },
    /// A signaling ring of the given length.
    Ring(usize),
}

impl ModuleKind {
    /// Number of vertices the module consumes.
    pub fn vertex_count(&self) -> usize {
        match *self {
            ModuleKind::Clique(n) => n,
            ModuleKind::Regulon { hubs, targets } => hubs + targets,
            ModuleKind::Ring(n) => n,
        }
    }

    /// Number of edges the module contributes.
    pub fn edge_count(&self) -> usize {
        match *self {
            ModuleKind::Clique(n) => n * (n - 1) / 2,
            ModuleKind::Regulon { hubs, targets } => hubs * (hubs - 1) / 2 + hubs * targets,
            ModuleKind::Ring(n) => n,
        }
    }
}

/// One planted module instance.
#[derive(Clone, Debug)]
pub struct PlantedModule {
    /// What was planted.
    pub kind: ModuleKind,
    /// The vertices it occupies (for regulons: hubs first).
    pub members: Vec<VertexId>,
}

/// Plant `plan` into a fresh builder over `n_vertices`, assigning module
/// members from consecutive vertex ids starting at 0. Panics if the plan
/// needs more vertices than available.
pub fn plant_modules(n_vertices: usize, plan: &[ModuleKind]) -> (GraphBuilder, Vec<PlantedModule>) {
    let needed: usize = plan.iter().map(ModuleKind::vertex_count).sum();
    assert!(
        needed <= n_vertices,
        "plan needs {needed} vertices, only {n_vertices} available"
    );
    let mut builder = GraphBuilder::new(n_vertices);
    let mut next = 0u32;
    let mut planted = Vec::with_capacity(plan.len());
    for &kind in plan {
        let k = kind.vertex_count();
        let members: Vec<VertexId> = (next..next + k as u32).map(VertexId).collect();
        next += k as u32;
        match kind {
            ModuleKind::Clique(_) => {
                for i in 0..k {
                    for j in i + 1..k {
                        builder.add_edge(members[i], members[j]);
                    }
                }
            }
            ModuleKind::Regulon { hubs, targets } => {
                for i in 0..hubs {
                    for j in i + 1..hubs {
                        builder.add_edge(members[i], members[j]);
                    }
                    for j in 0..targets {
                        builder.add_edge(members[i], members[hubs + j]);
                    }
                }
            }
            ModuleKind::Ring(_) => {
                for i in 0..k {
                    builder.add_edge(members[i], members[(i + 1) % k]);
                }
            }
        }
        planted.push(PlantedModule { kind, members });
    }
    (builder, planted)
}

/// Add preferential-attachment background edges until the graph has
/// `target_edges` edges. With `stitch = true`, disconnected components
/// are then joined and the surplus trimmed back to the exact target by
/// removing non-bridge background edges (edges with both endpoints below
/// `protected_vertices` — the planted-module prefix — are never
/// trimmed). With `stitch = false` the graph may stay disconnected (like
/// real sparse interactomes) and the edge count is exact by
/// construction.
pub fn add_background<R: Rng>(
    builder: GraphBuilder,
    target_edges: usize,
    protected_vertices: usize,
    stitch: bool,
    rng: &mut R,
) -> Graph {
    let n = builder.vertex_count();
    let mut g = builder.build();
    // Endpoint list for degree-proportional sampling, seeded with a +1
    // smoothing so isolated vertices can be drawn.
    let mut endpoints: Vec<u32> = Vec::with_capacity(4 * target_edges);
    for v in g.vertices() {
        endpoints.push(v.0); // smoothing
        for _ in 0..g.degree(v) {
            endpoints.push(v.0);
        }
    }
    let mut guard = 0usize;
    while g.edge_count() < target_edges && guard < 100 * target_edges {
        guard += 1;
        let a = endpoints[rng.gen_range(0..endpoints.len())];
        // Mix preferential and uniform choice to keep the tail heavy but
        // the graph connected-ish.
        let b = if rng.gen_bool(0.5) {
            endpoints[rng.gen_range(0..endpoints.len())]
        } else {
            rng.gen_range(0..n as u32)
        };
        if g.add_edge(VertexId(a), VertexId(b)) {
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    if !stitch {
        return g;
    }
    // Stitch components: connect every component's representative to the
    // largest component.
    let comps = ppi_graph::algo::connected_components(&g);
    if comps.len() > 1 {
        let main = comps
            .iter()
            .max_by_key(|c| c.len())
            .expect("a non-empty graph has at least one component")
            .clone();
        for comp in &comps {
            if comp[0] == main[0] {
                continue;
            }
            let a = comp[rng.gen_range(0..comp.len())];
            let b = main[rng.gen_range(0..main.len())];
            g.add_edge(a, b);
        }
    }
    // Stitching overshoots the edge budget; trim back by removing random
    // non-bridge edges so connectivity is preserved and the final count
    // matches the paper's exactly.
    let mut guard = 0usize;
    while g.edge_count() > target_edges && guard < 100 {
        guard += 1;
        let bridges: std::collections::HashSet<_> =
            ppi_graph::algo::bridges(&g).into_iter().collect();
        let candidates: Vec<_> = g
            .edges()
            .filter(|e| {
                !bridges.contains(e)
                    && (e.0.index() >= protected_vertices || e.1.index() >= protected_vertices)
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        let surplus = g.edge_count() - target_edges;
        // Removing one non-bridge can turn another edge into a bridge,
        // so remove in small batches and repair any (rare) split.
        let batch = surplus.min(candidates.len()).min(64);
        for _ in 0..batch {
            let e = candidates[rng.gen_range(0..candidates.len())];
            g.remove_edge(e.0, e.1);
        }
        if !ppi_graph::algo::is_connected(&g) {
            let comps = ppi_graph::algo::connected_components(&g);
            let main = comps
                .iter()
                .max_by_key(|c| c.len())
                .expect("a non-empty graph has at least one component")
                .clone();
            for comp in &comps {
                if comp[0] != main[0] {
                    g.add_edge(comp[0], main[rng.gen_range(0..main.len())]);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn module_sizes_add_up() {
        let plan = [
            ModuleKind::Clique(5),
            ModuleKind::Regulon { hubs: 2, targets: 6 },
            ModuleKind::Ring(7),
        ];
        assert_eq!(plan.iter().map(ModuleKind::vertex_count).sum::<usize>(), 20);
        let (b, planted) = plant_modules(30, &plan);
        let g = b.build();
        assert_eq!(planted.len(), 3);
        let expected_edges: usize = plan.iter().map(ModuleKind::edge_count).sum();
        assert_eq!(g.edge_count(), expected_edges);
    }

    #[test]
    fn clique_is_complete() {
        let (b, planted) = plant_modules(10, &[ModuleKind::Clique(4)]);
        let g = b.build();
        let m = &planted[0].members;
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(g.has_edge(m[i], m[j]));
            }
        }
    }

    #[test]
    fn regulon_structure() {
        let (b, planted) =
            plant_modules(10, &[ModuleKind::Regulon { hubs: 2, targets: 5 }]);
        let g = b.build();
        let m = &planted[0].members;
        assert!(g.has_edge(m[0], m[1]), "hubs interconnected");
        for t in 2..7 {
            assert!(g.has_edge(m[0], m[t]));
            assert!(g.has_edge(m[1], m[t]));
        }
        // Targets are mutually unconnected.
        assert!(!g.has_edge(m[2], m[3]));
    }

    #[test]
    fn ring_has_cycle_degrees() {
        let (b, planted) = plant_modules(8, &[ModuleKind::Ring(6)]);
        let g = b.build();
        for &v in &planted[0].members {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "vertices")]
    fn oversized_plan_panics() {
        plant_modules(3, &[ModuleKind::Clique(5)]);
    }

    #[test]
    fn background_reaches_target_and_connects() {
        let mut rng = SmallRng::seed_from_u64(11);
        let (b, _) = plant_modules(500, &[ModuleKind::Clique(6), ModuleKind::Ring(10)]);
        let g = add_background(b, 1200, 16, true, &mut rng);
        assert_eq!(g.edge_count(), 1200);
        assert!(
            ppi_graph::algo::is_connected(&g),
            "stitching must connect the graph"
        );
    }

    #[test]
    fn background_preserves_planted_edges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let (b, planted) = plant_modules(200, &[ModuleKind::Clique(5)]);
        let g = add_background(b, 400, 5, true, &mut rng);
        let m = &planted[0].members;
        for i in 0..5 {
            for j in i + 1..5 {
                assert!(g.has_edge(m[i], m[j]));
            }
        }
    }
}
