//! Structure-correlated annotation generator.
//!
//! Assigns GO terms to network proteins such that (a) planted-module
//! membership carries functional signal — members of a module receive
//! descendants of the module's "theme" term — and (b) global statistics
//! match the paper's regime (≈86% of proteins annotated; multiple terms
//! per protein). The signal-through-structure property is what makes
//! the function-prediction experiment (Fig. 9) learnable at all, for
//! every method being compared.

use crate::modules::PlantedModule;
use go_ontology::{Annotations, Namespace, Ontology, ProteinId, TermId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Annotator parameters.
#[derive(Clone, Debug)]
pub struct AnnotateConfig {
    /// Fraction of proteins that receive any annotation (paper:
    /// 3554/4141 ≈ 0.86).
    pub coverage: f64,
    /// Probability that a module member receives a term from its
    /// module's theme subtree (per namespace).
    pub module_fidelity: f64,
    /// Mean number of random background terms per annotated protein.
    pub background_mean: f64,
}

impl Default for AnnotateConfig {
    fn default() -> Self {
        AnnotateConfig {
            coverage: 0.86,
            module_fidelity: 0.9,
            background_mean: 2.0,
        }
    }
}

/// A module's functional theme: one subtree root per namespace.
#[derive(Clone, Debug)]
pub struct ModuleTheme {
    /// Theme term per namespace (indexed like [`Namespace::ALL`]).
    pub terms: [TermId; 3],
}

/// Pick one theme per module: random namespace terms of depth ≥ 2 (deep
/// enough that both the theme and its ancestors can become informative).
pub fn pick_themes<R: Rng>(
    ontology: &Ontology,
    n_modules: usize,
    rng: &mut R,
) -> Vec<ModuleTheme> {
    let pools: Vec<Vec<TermId>> = Namespace::ALL
        .iter()
        .map(|&ns| {
            let pool: Vec<TermId> = ontology
                .terms_in_namespace(ns)
                .into_iter()
                .filter(|&t| ontology.ancestors(t).len() >= 2)
                .collect();
            assert!(!pool.is_empty(), "namespace {ns} too shallow for themes");
            pool
        })
        .collect();
    (0..n_modules)
        .map(|_| ModuleTheme {
            terms: [
                *pools[0].choose(rng).expect("theme pools are non-empty by generator construction"),
                *pools[1].choose(rng).expect("theme pools are non-empty by generator construction"),
                *pools[2].choose(rng).expect("theme pools are non-empty by generator construction"),
            ],
        })
        .collect()
}

/// Annotate `n_proteins` proteins. Module members draw terms from their
/// theme subtrees; everyone annotated also draws background terms.
pub fn annotate_network<R: Rng>(
    ontology: &Ontology,
    n_proteins: usize,
    modules: &[PlantedModule],
    themes: &[ModuleTheme],
    config: &AnnotateConfig,
    rng: &mut R,
) -> Annotations {
    assert_eq!(modules.len(), themes.len(), "one theme per module");
    let mut ann = Annotations::new(n_proteins, ontology.term_count());

    // Decide who is annotated at all.
    let annotated: Vec<bool> = (0..n_proteins)
        .map(|_| rng.gen_bool(config.coverage))
        .collect();

    // Module-driven terms.
    for (module, theme) in modules.iter().zip(themes) {
        for &v in &module.members {
            if !annotated[v.index()] {
                continue;
            }
            for (ns_idx, &theme_term) in theme.terms.iter().enumerate() {
                let _ = ns_idx;
                if rng.gen_bool(config.module_fidelity) {
                    let term = random_descendant_or_self(ontology, theme_term, rng);
                    ann.annotate(ProteinId(v.0), term);
                }
            }
        }
    }

    // Background terms for every annotated protein (geometric count with
    // the requested mean).
    let all_terms: Vec<TermId> = ontology
        .term_ids()
        .filter(|&t| !ontology.parents(t).is_empty()) // skip roots
        .collect();
    let p_stop = 1.0 / (1.0 + config.background_mean);
    for (v, &is_annotated) in annotated.iter().enumerate() {
        if !is_annotated {
            continue;
        }
        loop {
            if rng.gen_bool(p_stop) {
                break;
            }
            let term = *all_terms.choose(rng).expect("ontology has non-root terms");
            ann.annotate(ProteinId(v as u32), term);
        }
        // Guarantee at least one term so coverage is exact.
        if ann.terms_of(ProteinId(v as u32)).is_empty() {
            let term = *all_terms.choose(rng).expect("theme pools are non-empty by generator construction");
            ann.annotate(ProteinId(v as u32), term);
        }
    }
    ann
}

/// Uniform random descendant-or-self of `t`.
pub fn random_descendant_or_self<R: Rng>(ontology: &Ontology, t: TermId, rng: &mut R) -> TermId {
    let pool = ontology.descendants_or_self(t);
    *pool.choose(rng).expect("descendants_or_self includes self")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::go_gen::{generate_ontology, GoGenConfig};
    use crate::modules::{plant_modules, ModuleKind};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Ontology, Vec<PlantedModule>, Vec<ModuleTheme>, Annotations) {
        let mut rng = SmallRng::seed_from_u64(5);
        let ontology = generate_ontology(&GoGenConfig::default(), &mut rng);
        let plan = [
            ModuleKind::Clique(6),
            ModuleKind::Regulon { hubs: 2, targets: 8 },
        ];
        let (_, modules) = plant_modules(200, &plan);
        let themes = pick_themes(&ontology, modules.len(), &mut rng);
        let ann = annotate_network(
            &ontology,
            200,
            &modules,
            &themes,
            &AnnotateConfig::default(),
            &mut rng,
        );
        (ontology, modules, themes, ann)
    }

    #[test]
    fn coverage_is_roughly_as_requested() {
        let (_, _, _, ann) = setup();
        let covered = ann.annotated_protein_count() as f64 / 200.0;
        assert!((0.7..1.0).contains(&covered), "coverage {covered}");
    }

    #[test]
    fn module_members_carry_theme_signal() {
        let (ontology, modules, themes, ann) = setup();
        for (module, theme) in modules.iter().zip(&themes) {
            let mut hits = 0;
            let mut annotated = 0;
            for &v in &module.members {
                let terms = ann.terms_of(ProteinId(v.0));
                if terms.is_empty() {
                    continue;
                }
                annotated += 1;
                let theme_hit = terms.iter().any(|&t| {
                    theme
                        .terms
                        .iter()
                        .any(|&th| ontology.is_same_or_ancestor(th, t))
                });
                if theme_hit {
                    hits += 1;
                }
            }
            assert!(
                annotated == 0 || hits * 2 >= annotated,
                "module signal too weak: {hits}/{annotated}"
            );
        }
    }

    #[test]
    fn themes_are_reasonably_deep() {
        let (ontology, _, themes, _) = setup();
        for theme in &themes {
            for &t in &theme.terms {
                assert!(ontology.ancestors(t).len() >= 2);
            }
        }
    }

    #[test]
    fn annotated_proteins_have_terms() {
        let (_, _, _, ann) = setup();
        for p in 0..200u32 {
            let terms = ann.terms_of(ProteinId(p));
            if ann.is_annotated(ProteinId(p)) {
                assert!(!terms.is_empty());
            }
        }
        assert!(ann.mean_terms_per_annotated_protein() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(9);
            let ontology = generate_ontology(&GoGenConfig::default(), &mut rng);
            let (_, modules) = plant_modules(50, &[ModuleKind::Clique(5)]);
            let themes = pick_themes(&ontology, 1, &mut rng);
            let ann = annotate_network(
                &ontology,
                50,
                &modules,
                &themes,
                &AnnotateConfig::default(),
                &mut rng,
            );
            ann.serialize(&ontology, |p| format!("P{}", p.0))
        };
        assert_eq!(run(), run());
    }
}
