//! Property-based contracts of the serving layer:
//!
//! * **Oracle parity** — every answer the server produces (single or
//!   batched, at 1/2/4 workers) is bitwise identical to the full-scan
//!   [`LabeledMotifPredictor`] oracle on the same world.
//! * **Format totality** — [`read_artifact`] never panics, on any byte
//!   string; corruption (truncation, bit flips) surfaces as a typed
//!   [`ArtifactError`] carrying a byte offset.
//! * **Roundtrip identity** — serialize → deserialize → re-serialize is
//!   the identity on bytes, and the decoded artifact equals the source.
//! * **Epoch atomicity** — under a mid-stream [`Server::swap_artifact`],
//!   every response is bit-identical to the oracle of the *single*
//!   epoch it reports; no answer mixes artifacts.
//! * **Shutdown totality** — [`Server::shutdown_now`] with requests
//!   still queued resolves every pending slot to `Closed` or a real
//!   (oracle-exact) prediction, at workers 1/2/4 — never a hang.

use std::sync::Arc;

use function_prediction::{
    rank_scores, FunctionPredictor, LabeledMotifPredictor, PredictionContext,
};
use go_ontology::{Namespace, TermId};
use lamo_serve::{
    read_artifact, write_artifact, ModelArtifact, PendingQuery, ServeConfig, ServeError, Server,
};
use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
use motif_finder::Occurrence;
use par_util::RunContext;
use ppi_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Random serving world (mirrors `prop_postings.rs`: mixed motif sizes,
/// arbitrary occupancy, optional uniqueness, sparse annotations).
#[derive(Debug, Clone)]
struct World {
    n: usize,
    cats: usize,
    functions: Vec<Vec<usize>>,
    motif_seeds: Vec<(usize, Vec<u32>, (bool, u8))>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (4usize..12, 2usize..5).prop_flat_map(|(n, cats)| {
        (
            proptest::collection::vec(proptest::collection::vec(0..cats, 0..3), n..=n),
            proptest::collection::vec(
                (
                    2usize..5,
                    proptest::collection::vec(any::<u32>(), 0..20),
                    (any::<bool>(), 0u8..=100),
                ),
                0..4,
            ),
        )
            .prop_map(move |(mut functions, motif_seeds)| {
                for f in &mut functions {
                    f.sort_unstable();
                    f.dedup();
                }
                World {
                    n,
                    cats,
                    functions,
                    motif_seeds,
                }
            })
    })
}

fn build_motifs(w: &World) -> Vec<LabeledMotif> {
    w.motif_seeds
        .iter()
        .enumerate()
        .map(|(mi, (k, seed, uniq))| {
            let occurrences: Vec<Occurrence> = seed
                .chunks_exact(*k)
                .map(|chunk| {
                    Occurrence::new(chunk.iter().map(|&v| VertexId(v % w.n as u32)).collect())
                })
                .collect();
            let edges: Vec<(u32, u32)> = (0..*k as u32 - 1).map(|i| (i, i + 1)).collect();
            LabeledMotif {
                pattern: Graph::from_edges(*k, &edges),
                // Alternate namespaces so the artifact's namespace column
                // carries more than one value through the roundtrip.
                namespace: match mi % 3 {
                    0 => Namespace::BiologicalProcess,
                    1 => Namespace::MolecularFunction,
                    _ => Namespace::CellularComponent,
                },
                scheme: LabelingScheme::new(vec![VertexLabel::unknown(); *k]),
                motif_frequency: occurrences.len(),
                occurrences,
                uniqueness: uniq.0.then(|| f64::from(uniq.1) / 100.0),
            }
        })
        .collect()
}

fn build_artifact(w: &World) -> (ModelArtifact, Vec<Vec<f64>>) {
    let motifs = build_motifs(w);
    let network = Graph::empty(w.n);
    let terms: Vec<TermId> = (0..w.cats as u32).map(TermId).collect();
    let ctx = PredictionContext {
        network: &network,
        functions: &w.functions,
        n_categories: w.cats,
        category_terms: &terms,
    };
    let oracle = LabeledMotifPredictor::new(motifs.clone()).predict_all(&ctx);
    let artifact = ModelArtifact::build(&motifs, &ctx);
    artifact.validate().expect("built artifact validates");
    (artifact, oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single and batched queries at 1, 2, and 4 workers all agree
    /// bitwise with the full-scan oracle.
    #[test]
    fn server_answers_match_oracle_at_every_worker_count(w in world_strategy()) {
        let (artifact, oracle) = build_artifact(&w);
        let artifact = Arc::new(artifact);
        let mut want = Vec::new();
        for workers in [1usize, 2, 4] {
            let server = Server::start(
                Arc::clone(&artifact),
                ServeConfig { workers, max_batch: 3, ..ServeConfig::default() },
                Arc::new(RunContext::unbounded()),
            );
            let proteins: Vec<usize> = (0..w.n).collect();
            let batched = server.query_batch(&proteins);
            for p in 0..w.n {
                let single = server.query(p).expect("in-range protein");
                let from_batch = batched[p].as_ref().expect("in-range protein");
                rank_scores(&oracle[p], &mut want);
                prop_assert_eq!(single.protein, p);
                prop_assert_eq!(&single.ranked, &want, "workers={} p={}", workers, p);
                prop_assert_eq!(&from_batch.ranked, &want, "workers={} p={}", workers, p);
                for (got, expect) in single.ranked.iter().zip(&want) {
                    prop_assert_eq!(got.1.to_bits(), expect.1.to_bits());
                }
            }
            server.shutdown();
        }
    }

    /// serialize → deserialize → serialize is the identity on bytes,
    /// and decoding reproduces the artifact exactly.
    #[test]
    fn roundtrip_is_byte_identical(w in world_strategy()) {
        let (artifact, _) = build_artifact(&w);
        let bytes = write_artifact(&artifact);
        let decoded = read_artifact(&bytes).expect("own output decodes");
        prop_assert_eq!(&decoded, &artifact);
        prop_assert_eq!(write_artifact(&decoded), bytes);
    }

    /// The decoder is total: arbitrary bytes produce `Ok` or a typed
    /// error whose offset stays within the input — never a panic.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        if let Err(e) = read_artifact(&bytes) {
            prop_assert!(e.offset <= bytes.len());
            prop_assert!(!e.to_string().is_empty());
        }
    }

    /// Every strict prefix of a valid artifact fails with a typed error
    /// (no partial decode), and its offset points into the input.
    #[test]
    fn truncation_yields_typed_error(w in world_strategy(), cut_seed in any::<u32>()) {
        let (artifact, _) = build_artifact(&w);
        let bytes = write_artifact(&artifact);
        let cut = cut_seed as usize % bytes.len();
        let err = read_artifact(&bytes[..cut]).expect_err("prefix cannot decode");
        prop_assert!(err.offset <= cut);
    }

    /// Any single bit flip is detected: magic/version/framing checks or
    /// a section checksum catch it, with the failing offset in range.
    #[test]
    fn bit_flip_yields_typed_error(w in world_strategy(), flip_seed in any::<u64>()) {
        let (artifact, _) = build_artifact(&w);
        let mut bytes = write_artifact(&artifact);
        let pos = flip_seed as usize % bytes.len();
        let bit = (flip_seed >> 32) % 8;
        bytes[pos] ^= 1 << bit;
        let err = read_artifact(&bytes).expect_err("corrupted artifact cannot decode");
        prop_assert!(err.offset <= bytes.len());
        prop_assert!(!err.to_string().is_empty());
    }

    /// Swap atomicity: queries race a hot swap between two different
    /// worlds, and every answer matches — bit for bit — the full-scan
    /// oracle of exactly the epoch it reports. A torn read (scores from
    /// one artifact, ranking or epoch from the other) cannot satisfy
    /// this for both oracles at once.
    #[test]
    fn every_response_is_bit_identical_to_one_epoch(
        w1 in world_strategy(),
        w2 in world_strategy(),
    ) {
        let (a1, oracle1) = build_artifact(&w1);
        let (a2, oracle2) = build_artifact(&w2);
        let a1 = Arc::new(a1);
        let a2 = Arc::new(a2);
        // Stay in the id range both epochs can answer, so every
        // response is a prediction carrying an epoch to check against.
        let shared = w1.n.min(w2.n);
        for workers in [1usize, 2, 4] {
            let server = Server::start(
                Arc::clone(&a1),
                ServeConfig { workers, max_batch: 3, ..ServeConfig::default() },
                Arc::new(RunContext::unbounded()),
            );
            let mut pending: Vec<(usize, PendingQuery)> = Vec::new();
            for round in 0..4usize {
                for p in 0..shared {
                    pending.push((p, server.submit(p).expect("in-range submit")));
                }
                if round == 1 {
                    server.swap_artifact(Arc::clone(&a2)).expect("valid swap");
                }
            }
            let mut want = Vec::new();
            for (p, handle) in pending {
                let got = handle.wait().expect("in-range query is served");
                let oracle = match got.epoch {
                    0 => &oracle1,
                    1 => &oracle2,
                    other => return Err(TestCaseError::fail(format!("epoch {other}"))),
                };
                rank_scores(&oracle[p], &mut want);
                prop_assert_eq!(&got.ranked, &want, "workers={} p={} epoch={}", workers, p, got.epoch);
                for (g, e) in got.ranked.iter().zip(&want) {
                    prop_assert_eq!(g.1.to_bits(), e.1.to_bits());
                }
            }
            server.shutdown();
        }
    }

    /// Shutdown totality: `shutdown_now` with a backlog still queued
    /// resolves every pending slot — each answer is either `Closed`
    /// (discarded at dequeue) or a real, oracle-exact prediction
    /// (already being served). Waiting on every handle also proves no
    /// hang at any worker count.
    #[test]
    fn shutdown_now_resolves_every_pending_slot(w in world_strategy()) {
        let (artifact, oracle) = build_artifact(&w);
        let artifact = Arc::new(artifact);
        for workers in [1usize, 2, 4] {
            let server = Server::start(
                Arc::clone(&artifact),
                ServeConfig { workers, max_batch: 2, ..ServeConfig::default() },
                Arc::new(RunContext::unbounded()),
            );
            let pending: Vec<(usize, PendingQuery)> = (0..3 * w.n)
                .map(|i| {
                    let p = i % w.n;
                    (p, server.submit(p).expect("in-range submit"))
                })
                .collect();
            let stats = server.shutdown_now();
            let mut served = 0usize;
            let mut want = Vec::new();
            for (p, handle) in pending {
                match handle.wait() {
                    Ok(prediction) => {
                        served += 1;
                        rank_scores(&oracle[p], &mut want);
                        prop_assert_eq!(&prediction.ranked, &want, "workers={} p={}", workers, p);
                    }
                    Err(ServeError::Closed) => {}
                    Err(other) => {
                        return Err(TestCaseError::fail(format!("unexpected error: {other}")));
                    }
                }
            }
            // Sanity: the counters agree with what the clients saw.
            prop_assert_eq!(served as u64, stats.answered);
        }
    }
}
