//! Delta-equivalence contracts of the incremental trainer:
//!
//! * **Byte identity** — after any sequence of random edge deltas
//!   (adds, removes, interleaved add-then-remove cancellations), the
//!   serialized artifact is bitwise identical to training from scratch
//!   on the post-delta network, at labeler thread counts 1/2/4 on
//!   either side.
//! * **Orphaning** — a removal batch that orphans every occurrence of
//!   a motif class drops the class, its labeled rows and its LMS rows
//!   from the artifact, still byte-identical to from-scratch.
//! * **No-op deltas** — add-then-remove of the same edge inside one
//!   delta cancels to a no-op; the artifact bytes do not move.
//! * **Typed rejection** — malformed deltas (duplicates, self-loops,
//!   already-present adds, absent removes) surface as the matching
//!   [`DeltaError`] carrying the offending pair, with the trainer and
//!   its artifact untouched.
//! * **Publish** — [`publish_delta`] persists through the crash-safe
//!   store and epoch-swaps the live server; answers on both sides of
//!   the swap are bit-exact against the artifact of their epoch.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use function_prediction::{CategoryView, PredictScratch};
use go_ontology::{
    Annotations, InformativeConfig, Namespace, Ontology, OntologyBuilder, ProteinId, Relation,
    TermId,
};
use lamo_serve::{
    publish_delta, write_artifact, ArtifactStore, IncrementalTrainer, ServeConfig, Server,
    TrainerConfig,
};
use lamofinder::{ClusteringConfig, LaMoFinder, LaMoFinderConfig};
use par_util::RunContext;
use ppi_graph::{DeltaError, EdgeDelta, Graph};
use proptest::prelude::*;
use synthetic_data::{GoGenConfig, MipsConfig, MipsDataset};

fn config() -> TrainerConfig {
    TrainerConfig {
        sizes: vec![3],
        frequency_threshold: 2,
        max_stored: 2_000,
        max_classes: 300,
    }
}

// ───────────────────────── randomized world ─────────────────────────

struct World {
    data: MipsDataset,
    view: CategoryView,
}

/// One shared synthetic interactome (generated once; each test builds
/// its own trainers over it).
fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let data = MipsDataset::generate(&MipsConfig {
            n_proteins: 150,
            n_interactions: 220,
            go: GoGenConfig {
                terms_per_namespace: 60,
                root_fanout: 8,
                ..GoGenConfig::default()
            },
            ..MipsConfig::small()
        });
        let view = CategoryView::new(&data.ontology, &data.annotations, &data.categories);
        World { data, view }
    })
}

fn labeler<'a>(
    ontology: &'a Ontology,
    annotations: &'a Annotations,
    threads: usize,
) -> LaMoFinder<'a> {
    LaMoFinder::new(
        ontology,
        annotations,
        LaMoFinderConfig {
            namespace: Namespace::BiologicalProcess,
            informative: InformativeConfig {
                min_direct: 5,
                ..Default::default()
            },
            clustering: ClusteringConfig {
                sigma: 5,
                ..Default::default()
            },
            threads,
            ..Default::default()
        },
    )
}

fn mips_trainer(network: &Graph, threads: usize) -> IncrementalTrainer<'static> {
    let w = world();
    IncrementalTrainer::new(
        network,
        labeler(&w.data.ontology, &w.data.annotations, threads),
        &w.view.functions,
        &w.data.categories,
        config(),
        &RunContext::unbounded(),
    )
    .expect("unbounded context never cancels")
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A valid random delta against `g`: up to 3 removals of existing
/// edges, 1–3 additions of absent edges, and (sometimes) one
/// add-then-remove pair that must cancel to a no-op.
fn random_delta(g: &Graph, s: &mut u64) -> EdgeDelta {
    let n = g.vertex_count() as u32;
    let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.0 .0, e.1 .0)).collect();
    let mut removed: Vec<(u32, u32)> = Vec::new();
    for _ in 0..xorshift(s) % 3 {
        let e = edges[(xorshift(s) % edges.len() as u64) as usize];
        if !removed.contains(&e) {
            removed.push(e);
        }
    }
    let mut added: Vec<(u32, u32)> = Vec::new();
    for _ in 0..1 + xorshift(s) % 3 {
        for _ in 0..64 {
            let a = (xorshift(s) % n as u64) as u32;
            let b = (xorshift(s) % n as u64) as u32;
            let e = (a.min(b), a.max(b));
            if a != b && !g.has_edge(e.0.into(), e.1.into()) && !added.contains(&e) {
                added.push(e);
                break;
            }
        }
    }
    // Interleave an add-then-remove of one present edge: it must
    // cancel during normalization, exercising the no-op path inline.
    if xorshift(s) % 2 == 0 && !edges.is_empty() {
        let e = edges[(xorshift(s) % edges.len() as u64) as usize];
        if !removed.contains(&e) {
            added.push(e);
            removed.push(e);
        }
    }
    EdgeDelta::new(&added, &removed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: incremental maintenance across a random
    /// delta sequence serializes byte-identically to a from-scratch
    /// rebuild on the post-delta network, independent of thread count.
    #[test]
    fn delta_sequences_rebuild_byte_identical(
        seed in any::<u64>(),
        steps in 1usize..=3usize,
        t_inc_pick in 0usize..3usize,
        t_scratch_pick in 0usize..3usize,
    ) {
        let (t_inc, t_scratch) = ([1usize, 2, 4][t_inc_pick], [1usize, 2, 4][t_scratch_pick]);
        let w = world();
        let mut s = seed | 1;
        let mut trainer = mips_trainer(&w.data.network, t_inc);
        for _ in 0..steps {
            let delta = random_delta(trainer.graph(), &mut s);
            let report = trainer
                .apply_delta(&delta, &RunContext::unbounded())
                .expect("generated deltas are valid");
            prop_assert_eq!(report.census.len(), 1);
        }
        let post = trainer.graph().clone();
        let scratch = mips_trainer(&post, t_scratch);
        prop_assert_eq!(
            write_artifact(trainer.artifact()),
            write_artifact(scratch.artifact()),
            "incremental artifact diverged from from-scratch rebuild"
        );
    }
}

// ──────────────────────── deterministic world ───────────────────────

/// Hand-built interactome whose size-3 census is exactly two classes:
/// 12 disjoint triangles and 6 disjoint 3-paths, each annotated
/// `f1,f1,f2` so both classes emit labeling schemes (σ = 5), plus
/// padding proteins keeping the parent class informative.
struct HandWorld {
    ontology: Ontology,
    annotations: Annotations,
    network: Graph,
    categories: Vec<TermId>,
    functions: Vec<Vec<usize>>,
}

const TRIANGLES: u32 = 12;
const PATHS: u32 = 6;

fn hand_world() -> &'static HandWorld {
    static W: OnceLock<HandWorld> = OnceLock::new();
    W.get_or_init(|| {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
        let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
        let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
        ob.add_edge(f, root, Relation::IsA);
        ob.add_edge(f1, f, Relation::IsA);
        ob.add_edge(f2, f, Relation::IsA);
        let ontology = ob.build().expect("static DAG is well-formed");

        let path_base = 3 * TRIANGLES;
        let pad_base = path_base + 3 * PATHS;
        let n = (pad_base + 4) as usize;
        let mut annotations = Annotations::new(n, ontology.term_count());
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut functions = vec![Vec::new(); n];
        for t in 0..TRIANGLES {
            let b = 3 * t;
            edges.extend([(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
            annotations.annotate(ProteinId(b), f1);
            annotations.annotate(ProteinId(b + 1), f1);
            annotations.annotate(ProteinId(b + 2), f2);
            functions[b as usize] = vec![0];
            functions[b as usize + 1] = vec![0];
            functions[b as usize + 2] = vec![1];
        }
        for p in 0..PATHS {
            let b = path_base + 3 * p;
            edges.extend([(b, b + 1), (b + 1, b + 2)]);
            annotations.annotate(ProteinId(b), f1);
            annotations.annotate(ProteinId(b + 1), f1);
            annotations.annotate(ProteinId(b + 2), f2);
            functions[b as usize] = vec![0];
            functions[b as usize + 1] = vec![0];
            functions[b as usize + 2] = vec![1];
        }
        for p in 0..4 {
            annotations.annotate(ProteinId(pad_base + p), f);
        }
        HandWorld {
            ontology,
            annotations,
            network: Graph::from_edges(n, &edges),
            categories: vec![f1, f2],
            functions,
        }
    })
}

fn hand_trainer(network: &Graph, threads: usize) -> IncrementalTrainer<'static> {
    let w = hand_world();
    IncrementalTrainer::new(
        network,
        LaMoFinder::new(
            &w.ontology,
            &w.annotations,
            LaMoFinderConfig {
                namespace: Namespace::BiologicalProcess,
                informative: InformativeConfig {
                    min_direct: 3,
                    ..Default::default()
                },
                clustering: ClusteringConfig {
                    sigma: 5,
                    ..Default::default()
                },
                threads,
                ..Default::default()
            },
        ),
        &w.functions,
        &w.categories,
        TrainerConfig {
            sizes: vec![3],
            frequency_threshold: 1,
            ..config()
        },
        &RunContext::unbounded(),
    )
    .expect("unbounded context never cancels")
}

/// Orphan every 3-path occurrence in one delta: the class vanishes
/// from the dictionary, its labeled rows and LMS rows leave the index,
/// and the result still matches a from-scratch rebuild byte for byte.
#[test]
fn orphaning_removal_drops_class_and_its_rows() {
    let w = hand_world();
    let mut trainer = hand_trainer(&w.network, 1);
    let before_labeled = trainer.artifact().motifs.motif_count();
    let path_base = 3 * TRIANGLES;
    let cuts: Vec<(u32, u32)> = (0..PATHS)
        .map(|p| (path_base + 3 * p + 1, path_base + 3 * p + 2))
        .collect();
    let report = trainer
        .apply_delta(&EdgeDelta::new(&[], &cuts), &RunContext::unbounded())
        .expect("cutting existing edges is valid");
    assert_eq!(report.motif_count, 1, "only the triangle class survives");
    let after_labeled = trainer.artifact().motifs.motif_count();
    assert!(
        after_labeled < before_labeled,
        "the path class's labeled rows must leave the dictionary \
         ({before_labeled} -> {after_labeled})"
    );
    assert_eq!(
        trainer.artifact().index.motif_count(),
        after_labeled,
        "LMS/posting rows track the shrunk dictionary"
    );
    let scratch = hand_trainer(trainer.graph(), 1);
    assert_eq!(
        write_artifact(trainer.artifact()),
        write_artifact(scratch.artifact())
    );
}

/// An add-then-remove of the same edge inside one delta cancels to a
/// no-op whether or not the edge exists; the artifact bytes hold still.
#[test]
fn add_then_remove_same_edge_is_a_noop() {
    let w = hand_world();
    let mut trainer = hand_trainer(&w.network, 1);
    let before = write_artifact(trainer.artifact());
    // Absent edge: add + remove cancels.
    let absent = (0u32, 3 * TRIANGLES);
    let report = trainer
        .apply_delta(
            &EdgeDelta::new(&[absent], &[absent]),
            &RunContext::unbounded(),
        )
        .expect("cancelling pair is a valid no-op");
    assert_eq!(report.census[0].dirty_roots, 0);
    assert_eq!(write_artifact(trainer.artifact()), before);
    // Present edge: same cancellation rule.
    trainer
        .apply_delta(&EdgeDelta::new(&[(0, 1)], &[(0, 1)]), &RunContext::unbounded())
        .expect("cancelling pair is a valid no-op");
    assert_eq!(write_artifact(trainer.artifact()), before);
}

/// Malformed deltas are rejected with the typed error carrying the
/// offending pair, and the trainer's artifact does not move.
#[test]
fn invalid_deltas_are_typed_and_leave_the_artifact_alone() {
    let w = hand_world();
    let mut trainer = hand_trainer(&w.network, 1);
    let before = write_artifact(trainer.artifact());
    let absent = (0u32, 3 * TRIANGLES);
    let cases: Vec<(EdgeDelta, DeltaError)> = vec![
        (
            EdgeDelta::new(&[absent, (absent.1, absent.0)], &[]),
            DeltaError::DuplicateEdge { edge: absent },
        ),
        (
            EdgeDelta::new(&[(5, 5)], &[]),
            DeltaError::SelfLoop { edge: (5, 5) },
        ),
        (
            EdgeDelta::new(&[(1, 0)], &[]),
            DeltaError::AlreadyPresent { edge: (0, 1) },
        ),
        (
            EdgeDelta::new(&[], &[absent]),
            DeltaError::NotPresent { edge: absent },
        ),
    ];
    for (delta, want) in cases {
        let got = trainer
            .apply_delta(&delta, &RunContext::unbounded())
            .expect_err("malformed delta must be rejected");
        assert_eq!(got, want);
        assert_eq!(write_artifact(trainer.artifact()), before);
    }
}

/// End to end: apply a delta, persist through the crash-safe store,
/// epoch-swap the live server; answers on both sides of the swap are
/// bit-exact against the artifact of the epoch they report.
#[test]
fn publish_delta_swaps_the_live_server() {
    let w = hand_world();
    let mut trainer = hand_trainer(&w.network, 1);
    let ctx = Arc::new(RunContext::unbounded());
    let store = ArtifactStore::open(test_dir("publish_delta_swaps")).expect("fresh store opens");
    let first = Arc::new(trainer.artifact().clone());
    let server = Server::start(first.clone(), ServeConfig::default(), ctx.clone());

    let probe = 0usize;
    let pre = server.query(probe).expect("in-range protein");
    let mut scratch = PredictScratch::new();
    let (want, _) = first.predict_into(probe, &mut scratch);
    assert_eq!(pre.ranked, want, "pre-swap answer matches epoch-0 artifact");

    trainer
        .apply_delta(&EdgeDelta::new(&[], &[(0, 1)]), &RunContext::unbounded())
        .expect("cutting an existing edge is valid");
    let (generation, epoch) =
        publish_delta(trainer.artifact(), &store, &server, &ctx).expect("publish succeeds");
    assert_eq!(epoch, 1, "swap bumps the served epoch");

    let post = server.query(probe).expect("in-range protein");
    assert_eq!(post.epoch, epoch);
    let (want, _) = trainer.artifact().predict_into(probe, &mut scratch);
    assert_eq!(post.ranked, want, "post-swap answer matches the patched artifact");

    let recovered = store.recover().expect("store recovers");
    assert_eq!(recovered.generation, generation);
    assert_eq!(
        write_artifact(&recovered.artifact),
        write_artifact(trainer.artifact()),
        "store round-trips the patched artifact byte-identically"
    );
    server.shutdown();
}

/// Fresh per-test directory under the cargo-managed tmp root.
fn test_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}
