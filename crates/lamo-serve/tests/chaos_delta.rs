//! Chaos contracts of the incremental-delta path: a crash or
//! cancellation injected anywhere in `apply_delta` → `publish_delta`
//! leaves the *served* state (live epoch, artifact store) and the
//! trainer's published artifact exactly as they were, and the trainer
//! remains usable afterwards.
//!
//! Sites exercised: `delta.patch` and `delta.census` (inside the
//! census repair), `delta.publish` (entry to the publish path) and
//! `serve.store_write` (the store's crash window from PR 9). As in
//! `chaos.rs`, every fault is seeded and injected — a failure here is
//! a repro, not a flake.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use go_ontology::{
    Annotations, InformativeConfig, Namespace, Ontology, OntologyBuilder, ProteinId, Relation,
    TermId,
};
use lamo_serve::{
    publish_delta, write_artifact, ArtifactStore, IncrementalTrainer, ServeConfig, Server,
    TrainerConfig,
};
use lamofinder::{ClusteringConfig, LaMoFinder, LaMoFinderConfig};
use par_util::{FaultAction, FaultPlan, RunContext};
use ppi_graph::{DeltaError, EdgeDelta, Graph};

/// Six triangles, annotated so labeling emits schemes; enough structure
/// that a delta actually moves the artifact.
struct World {
    ontology: Ontology,
    annotations: Annotations,
    network: Graph,
    categories: Vec<TermId>,
    functions: Vec<Vec<usize>>,
}

fn world() -> World {
    let mut ob = OntologyBuilder::new();
    let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
    let f = ob.add_term("GO:1", "F", Namespace::BiologicalProcess);
    let f1 = ob.add_term("GO:2", "f1", Namespace::BiologicalProcess);
    let f2 = ob.add_term("GO:3", "f2", Namespace::BiologicalProcess);
    ob.add_edge(f, root, Relation::IsA);
    ob.add_edge(f1, f, Relation::IsA);
    ob.add_edge(f2, f, Relation::IsA);
    let ontology = ob.build().expect("static DAG is well-formed");
    let n_tri = 6u32;
    let n = 3 * n_tri as usize + 4;
    let mut annotations = Annotations::new(n, ontology.term_count());
    let mut edges = Vec::new();
    let mut functions = vec![Vec::new(); n];
    for t in 0..n_tri {
        let b = 3 * t;
        edges.extend([(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
        annotations.annotate(ProteinId(b), f1);
        annotations.annotate(ProteinId(b + 1), f1);
        annotations.annotate(ProteinId(b + 2), f2);
        functions[b as usize] = vec![0];
        functions[b as usize + 1] = vec![0];
        functions[b as usize + 2] = vec![1];
    }
    for p in 0..4 {
        annotations.annotate(ProteinId(3 * n_tri + p), f);
    }
    World {
        ontology,
        annotations,
        network: Graph::from_edges(n, &edges),
        categories: vec![f1, f2],
        functions,
    }
}

fn trainer<'a>(w: &'a World, ctx: &RunContext) -> IncrementalTrainer<'a> {
    IncrementalTrainer::new(
        &w.network,
        LaMoFinder::new(
            &w.ontology,
            &w.annotations,
            LaMoFinderConfig {
                namespace: Namespace::BiologicalProcess,
                informative: InformativeConfig {
                    min_direct: 3,
                    ..Default::default()
                },
                clustering: ClusteringConfig {
                    sigma: 3,
                    ..Default::default()
                },
                threads: 1,
                ..Default::default()
            },
        ),
        &w.functions,
        &w.categories,
        TrainerConfig {
            sizes: vec![3],
            frequency_threshold: 1,
            max_stored: 2_000,
            max_classes: 300,
        },
        ctx,
    )
    .expect("unbounded build never cancels")
}

/// Cancellation tripped at `delta.patch` or `delta.census` (the two
/// faultpoints inside the census repair) leaves the trainer on the
/// pre-delta graph with its artifact untouched — and the same delta
/// then applies cleanly on a calm context, matching from-scratch.
#[test]
fn cancelled_delta_rolls_back_and_trainer_stays_usable() {
    let w = world();
    let delta = EdgeDelta::new(&[(0, 3)], &[(1, 2)]);
    for site in ["delta.patch", "delta.census"] {
        let mut tr = trainer(&w, &RunContext::unbounded());
        let before = write_artifact(tr.artifact());
        let pre_graph = tr.graph().clone();
        let storm = RunContext::unbounded()
            .with_faults(FaultPlan::new().inject(site, 0, FaultAction::Cancel));
        let err = tr
            .apply_delta(&delta, &storm)
            .expect_err("tripped cancel token must surface");
        assert_eq!(err, DeltaError::Cancelled, "site {site}");
        assert_eq!(write_artifact(tr.artifact()), before, "site {site}");
        assert_eq!(
            tr.graph().edges().collect::<Vec<_>>(),
            pre_graph.edges().collect::<Vec<_>>(),
            "site {site}: trainer must sit on the pre-delta graph"
        );
        // Same trainer, calm context: the delta goes through and the
        // result is byte-identical to a from-scratch rebuild.
        tr.apply_delta(&delta, &RunContext::unbounded())
            .expect("delta is valid on a calm context");
        let scratch_graph = tr.graph().clone();
        let scratch = {
            let mut t = trainer(&w, &RunContext::unbounded());
            t.apply_delta(&delta, &RunContext::unbounded())
                .expect("same delta, same graph");
            assert_eq!(
                t.graph().edges().collect::<Vec<_>>(),
                scratch_graph.edges().collect::<Vec<_>>()
            );
            write_artifact(t.artifact())
        };
        assert_eq!(write_artifact(tr.artifact()), scratch, "site {site}");
    }
}

/// A crash at `delta.publish` (before anything durable) or inside the
/// store's write window leaves the served epoch, the served bytes and
/// the store's recovery outcome unchanged; a calm retry then converges.
#[test]
fn mid_publish_crash_leaves_served_epoch_and_store_unchanged() {
    let w = world();
    for site in ["delta.publish", "serve.store_write"] {
        let mut tr = trainer(&w, &RunContext::unbounded());
        let serve_ctx = Arc::new(RunContext::unbounded());
        let store = ArtifactStore::open(test_dir(&format!("chaos_delta_{site}")))
            .expect("fresh store opens");
        let gen0 = store
            .publish(tr.artifact(), &RunContext::unbounded())
            .expect("baseline publish succeeds");
        let first = Arc::new(tr.artifact().clone());
        let server = Server::start(first.clone(), ServeConfig::default(), serve_ctx.clone());
        let epoch0 = server.epoch();
        let baseline = write_artifact(&first);

        tr.apply_delta(&EdgeDelta::new(&[], &[(0, 1)]), &RunContext::unbounded())
            .expect("cutting an existing edge is valid");
        assert_ne!(
            write_artifact(tr.artifact()),
            baseline,
            "the delta must actually move the artifact for this test to bite"
        );

        let storm =
            RunContext::unbounded().with_faults(FaultPlan::new().inject(site, 0, FaultAction::Panic));
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            publish_delta(tr.artifact(), &store, &server, &storm)
        }));
        assert!(crashed.is_err(), "site {site}: injected panic must fire");

        // Served state: same epoch, same bytes.
        assert_eq!(server.epoch(), epoch0, "site {site}");
        assert_eq!(write_artifact(&server.artifact()), baseline, "site {site}");
        // Store: recovery still lands on the baseline generation.
        let recovered = store.recover().expect("store recovers past the crash");
        assert_eq!(recovered.generation, gen0, "site {site}");
        assert_eq!(write_artifact(&recovered.artifact), baseline, "site {site}");

        // Calm retry converges: new generation, bumped epoch, new bytes.
        let (generation, epoch) = publish_delta(tr.artifact(), &store, &server, &serve_ctx)
            .expect("calm publish succeeds");
        assert!(generation > gen0, "site {site}");
        assert_eq!(epoch, epoch0 + 1, "site {site}");
        assert_eq!(
            write_artifact(&server.artifact()),
            write_artifact(tr.artifact()),
            "site {site}"
        );
        server.shutdown();
    }
}

/// Fresh per-test directory under the cargo-managed tmp root.
fn test_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}
