//! Chaos harness for the serving layer (ISSUE 9 tentpole, axis 4).
//!
//! Every test drives the server through a deterministic, seeded
//! [`FaultPlan`] over the `serve.*` faultpoint sites and checks the
//! three robustness invariants:
//!
//! 1. **No hang** — every test runs to completion; every `wait()`
//!    returns.
//! 2. **Exactly one typed answer** — each `submit` either refuses with
//!    a typed [`ServeError`] or yields a handle that resolves to
//!    exactly one `Ok(prediction)` / typed error; predictions are
//!    bit-exact against the artifact of the epoch they report.
//! 3. **The store always reopens good** — after any mix of crashed and
//!    successful publishes, [`ArtifactStore::recover`] returns the
//!    newest generation that actually completed.
//!
//! Faults are injected, never random at run time: the same seed replays
//! the same storm, so a failure here is a repro, not a flake.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use function_prediction::{PredictScratch, PredictionContext};
use go_ontology::{Namespace, TermId};
use lamo_serve::{
    AdmissionPolicy, ArtifactStore, ModelArtifact, Prediction, ServeConfig, ServeError, Server,
    StoreError,
};
use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
use motif_finder::Occurrence;
use par_util::{FaultAction, FaultPlan, RunContext};
use ppi_graph::{Graph, VertexId};

/// The serving-side injection sites (the store site is exercised by
/// [`crashed_publishes_never_cost_the_store_a_good_generation`]).
const SERVER_SITES: &[&str] = &[
    "serve.admission",
    "serve.dequeue",
    "serve.predict",
    "serve.fulfill",
    "serve.swap",
];

/// Number of proteins in every test artifact (one shared network, so
/// any protein id is valid against any epoch).
const PROTEINS: usize = 3;

/// Small deterministic artifact; `variant` perturbs the annotations so
/// distinct epochs rank differently.
fn artifact(variant: usize) -> Arc<ModelArtifact> {
    let motifs = vec![LabeledMotif {
        pattern: Graph::from_edges(2, &[(0, 1)]),
        namespace: Namespace::BiologicalProcess,
        scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
        occurrences: vec![
            Occurrence::new(vec![VertexId(0), VertexId(1)]),
            Occurrence::new(vec![VertexId(1), VertexId(2)]),
        ],
        motif_frequency: 2,
        uniqueness: Some(1.0),
    }];
    let network = Graph::from_edges(PROTEINS, &[(0, 1), (1, 2)]);
    let functions = vec![vec![variant % 2], vec![0], vec![1]];
    let terms = vec![TermId(10), TermId(20)];
    Arc::new(ModelArtifact::build(
        &motifs,
        &PredictionContext {
            network: &network,
            functions: &functions,
            n_categories: 2,
            category_terms: &terms,
        },
    ))
}

/// Assert a served prediction is bit-exact against the artifact of the
/// epoch it reports.
fn assert_oracle_exact(got: &Prediction, epochs: &[&ModelArtifact]) {
    let source = epochs
        .get(got.epoch as usize)
        .unwrap_or_else(|| panic!("prediction reports unknown epoch {}", got.epoch));
    let mut scratch = PredictScratch::new();
    let (want, postings) = source.predict_into(got.protein, &mut scratch);
    assert_eq!(got.postings, postings, "postings drift at p={}", got.protein);
    assert_eq!(got.ranked.len(), want.len());
    for ((gc, gs), (wc, ws)) in got.ranked.iter().zip(want) {
        assert_eq!(gc, wc, "ranking drift at p={}", got.protein);
        assert_eq!(
            gs.to_bits(),
            ws.to_bits(),
            "score drift at p={} epoch={}",
            got.protein,
            got.epoch
        );
    }
}

/// Seeded storms over every serving site, at 1/2/4 workers, with a
/// mid-stream (and itself fault-exposed) hot swap. Client-side tallies
/// must agree exactly with the server's counters.
#[test]
fn seeded_chaos_storms_never_drop_an_answer() {
    let a1 = artifact(0);
    let a2 = artifact(1);
    for seed in 0..6u64 {
        for workers in [1usize, 2, 4] {
            let plan = FaultPlan::seeded(seed, SERVER_SITES, 10, 24);
            let server = Server::start(
                Arc::clone(&a1),
                ServeConfig {
                    workers,
                    max_batch: 3,
                    ..ServeConfig::default()
                },
                Arc::new(RunContext::metered().with_faults(plan)),
            );
            let mut pending = Vec::new();
            for round in 0..4usize {
                for p in 0..PROTEINS {
                    match server.submit(p) {
                        Ok(handle) => pending.push(handle),
                        // A storm may refuse at admission — but only
                        // with a typed reason.
                        Err(
                            ServeError::WorkerPanicked
                            | ServeError::Cancelled
                            | ServeError::Overloaded { .. },
                        ) => {}
                        Err(other) => panic!("untyped admission refusal: {other}"),
                    }
                }
                if round == 1 {
                    // The swap races the storm; `serve.swap` may crash
                    // it, in which case the old epoch keeps serving.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        server.swap_artifact(Arc::clone(&a2))
                    }));
                }
            }
            let accepted = pending.len() as u64;
            let (mut ok, mut panicked) = (0u64, 0u64);
            for handle in pending {
                match handle.wait() {
                    Ok(prediction) => {
                        ok += 1;
                        assert_oracle_exact(&prediction, &[&a1, &a2]);
                    }
                    Err(ServeError::WorkerPanicked) => panicked += 1,
                    Err(ServeError::Cancelled) => {}
                    Err(other) => {
                        panic!("seed={seed} workers={workers}: untyped answer: {other}")
                    }
                }
            }
            let stats = server.stats();
            assert_eq!(stats.accepted, accepted, "seed={seed} workers={workers}");
            assert_eq!(stats.answered, ok, "seed={seed} workers={workers}");
            assert_eq!(stats.panicked, panicked, "seed={seed} workers={workers}");
            server.shutdown();
        }
    }
}

/// A panic storm that crashes the first K predictions outright: every
/// crashed request degrades to `WorkerPanicked`, every later request is
/// served exactly, and the counters account for each one.
#[test]
fn predict_panic_storm_degrades_each_crash_to_a_typed_answer() {
    const STORM: u64 = 8;
    const REQUESTS: usize = 24;
    let a = artifact(0);
    for workers in [1usize, 2, 4] {
        let mut plan = FaultPlan::new();
        for hit in 0..STORM {
            plan = plan.inject("serve.predict", hit, FaultAction::Panic);
        }
        let server = Server::start(
            Arc::clone(&a),
            ServeConfig {
                workers,
                max_batch: 2,
                ..ServeConfig::default()
            },
            Arc::new(RunContext::unbounded().with_faults(plan)),
        );
        let pending: Vec<_> = (0..REQUESTS)
            .map(|i| server.submit(i % PROTEINS).expect("in-range submit"))
            .collect();
        let (mut ok, mut panicked) = (0u64, 0u64);
        for handle in pending {
            match handle.wait() {
                Ok(prediction) => {
                    ok += 1;
                    assert_oracle_exact(&prediction, &[&a]);
                }
                Err(ServeError::WorkerPanicked) => panicked += 1,
                Err(other) => panic!("workers={workers}: unexpected answer: {other}"),
            }
        }
        assert_eq!(panicked, STORM, "exactly the armed hits crash");
        assert_eq!(ok, REQUESTS as u64 - STORM);
        // The pool survived the storm: it still serves, exactly.
        let after = server.query(0).expect("server alive after the storm");
        assert_oracle_exact(&after, &[&a]);
        let stats = server.stats();
        assert_eq!(stats.panicked, STORM);
        assert_eq!(stats.answered, ok + 1);
        server.shutdown();
    }
}

/// Multi-threaded submitters hammer a depth-1 queue under `Shed`:
/// client-observed refusals and acceptances must tally exactly with the
/// server's counters, and every accepted request resolves.
#[test]
fn saturation_storm_sheds_typed_and_loses_nothing() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 200;
    let a = artifact(0);
    let server = Server::start(
        Arc::clone(&a),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_depth: 1,
            admission: AdmissionPolicy::Shed,
        },
        Arc::new(RunContext::unbounded()),
    );
    let (ok, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|c| {
                let server = &server;
                let a = &a;
                scope.spawn(move || {
                    let (mut ok, mut shed) = (0u64, 0u64);
                    for i in 0..PER_THREAD {
                        match server.submit((c + i) % PROTEINS) {
                            Ok(handle) => {
                                let got = handle.wait().expect("accepted request is served");
                                assert_oracle_exact(&got, &[a.as_ref()]);
                                ok += 1;
                            }
                            Err(ServeError::Overloaded { depth }) => {
                                assert_eq!(depth, 1, "shed reports the configured depth");
                                shed += 1;
                            }
                            Err(other) => panic!("unexpected refusal: {other}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread must not panic"))
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });
    assert_eq!(ok + shed, (SUBMITTERS * PER_THREAD) as u64);
    let stats = server.stats();
    assert_eq!(stats.accepted, ok);
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.answered, ok);
    server.shutdown();
}

/// The same storm under `Block`: nothing is shed — submitters park on
/// the full queue and every one of them is eventually admitted and
/// served. Completing at all proves no lost wakeup.
#[test]
fn saturation_storm_under_block_parks_instead_of_shedding() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 100;
    let a = artifact(0);
    let server = Server::start(
        Arc::clone(&a),
        ServeConfig {
            workers: 2,
            max_batch: 1,
            queue_depth: 1,
            admission: AdmissionPolicy::Block,
        },
        Arc::new(RunContext::unbounded()),
    );
    let served = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|c| {
                let server = &server;
                let a = &a;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let got = server
                            .submit((c + i) % PROTEINS)
                            .expect("Block admission never sheds")
                            .wait()
                            .expect("admitted request is served");
                        assert_oracle_exact(&got, &[a.as_ref()]);
                    }
                    PER_THREAD as u64
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread must not panic"))
            .sum::<u64>()
    });
    let stats = server.stats();
    assert_eq!(served, (SUBMITTERS * PER_THREAD) as u64);
    assert_eq!(stats.accepted, served);
    assert_eq!(stats.answered, served);
    assert_eq!(stats.shed, 0, "Block parks; it never sheds");
    server.shutdown();
}

/// A crash injected inside `swap_artifact` leaves the old epoch
/// serving; the next swap succeeds and the epoch advances exactly once.
#[test]
fn crashed_swap_leaves_the_old_epoch_serving() {
    let a1 = artifact(0);
    let a2 = artifact(1);
    let plan = FaultPlan::new().inject("serve.swap", 0, FaultAction::Panic);
    let server = Server::start(
        Arc::clone(&a1),
        ServeConfig {
            workers: 2,
            max_batch: 2,
            ..ServeConfig::default()
        },
        Arc::new(RunContext::unbounded().with_faults(plan)),
    );

    let crashed = catch_unwind(AssertUnwindSafe(|| server.swap_artifact(Arc::clone(&a2))));
    assert!(crashed.is_err(), "armed swap crashes");
    assert_eq!(server.epoch(), 0, "crashed swap must not move the epoch");
    let got = server.query(0).expect("server alive after crashed swap");
    assert_eq!(got.epoch, 0);
    assert_oracle_exact(&got, &[&a1]);

    // Hit 1 is unarmed: the retry lands and the new epoch serves.
    assert_eq!(server.swap_artifact(Arc::clone(&a2)), Ok(1));
    assert_eq!(server.epoch(), 1);
    let got = server.query(0).expect("server alive after real swap");
    assert_eq!(got.epoch, 1);
    assert_oracle_exact(&got, &[&a1, &a2]);
    assert_eq!(server.stats().swaps, 1, "only the successful swap counts");
    server.shutdown();
}

/// Torn-write loop: interleave crashed publishes (injected at
/// `serve.store_write`) with successful ones. After every step the
/// store reopens to the newest *completed* generation, with nothing
/// skipped — crashes are invisible, not wreckage.
#[test]
fn crashed_publishes_never_cost_the_store_a_good_generation() {
    for seed in 0..4usize {
        let dir = chaos_store_dir(&format!("torn-writes-{seed}"));
        let store = ArtifactStore::open(&dir).expect("open");
        let mut published: Vec<(u64, Arc<ModelArtifact>)> = Vec::new();
        for step in 0..6usize {
            let a = artifact(step);
            if (seed + step) % 3 == 0 {
                let ctx = RunContext::unbounded().with_faults(FaultPlan::new().inject(
                    "serve.store_write",
                    0,
                    FaultAction::Panic,
                ));
                let crashed = catch_unwind(AssertUnwindSafe(|| store.publish(&a, &ctx)));
                assert!(crashed.is_err(), "armed publish crashes in the window");
            } else {
                let generation = store
                    .publish(&a, &RunContext::unbounded())
                    .expect("clean publish");
                published.push((generation, a));
            }
            // Invariant: the store reopens to a good generation after
            // *every* step (or reports typed emptiness before the
            // first success).
            let reopened = ArtifactStore::open(&dir).expect("reopen");
            match (reopened.recover(), published.last()) {
                (Ok(recovery), Some((generation, a))) => {
                    assert_eq!(recovery.generation, *generation);
                    assert_eq!(&recovery.artifact, a.as_ref());
                    assert!(recovery.skipped.is_empty(), "crashes leave no wreckage");
                }
                (Err(StoreError::NoGoodGeneration { skipped }), None) => {
                    assert!(skipped.is_empty())
                }
                (Ok(recovery), None) => {
                    panic!("recovered gen {} before any publish", recovery.generation)
                }
                (Err(err), _) => panic!("seed={seed} step={step}: {err}"),
            }
        }
        assert!(!published.is_empty(), "every seed lands some publishes");
    }
}

/// End-to-end crash loop: recover from the store, serve, hot-swap in a
/// freshly recovered artifact — the full restart path the fault model
/// promises.
#[test]
fn recovered_artifact_swaps_into_a_live_server() {
    let dir = chaos_store_dir("recover-swap");
    let store = ArtifactStore::open(&dir).expect("open");
    let ctx = RunContext::unbounded();
    store.publish(&artifact(0), &ctx).expect("gen 0");

    let recovered = Arc::new(store.recover().expect("good store").artifact);
    let server = Server::start(
        Arc::clone(&recovered),
        ServeConfig {
            workers: 2,
            max_batch: 2,
            ..ServeConfig::default()
        },
        Arc::new(RunContext::unbounded()),
    );
    let got = server.query(1).expect("recovered artifact serves");
    assert_oracle_exact(&got, &[&recovered]);

    // Publish a new generation and roll the live server onto it.
    store.publish(&artifact(1), &ctx).expect("gen 1");
    let next = Arc::new(store.recover().expect("good store").artifact);
    assert_eq!(server.swap_artifact(Arc::clone(&next)), Ok(1));
    let got = server.query(1).expect("swapped artifact serves");
    assert_eq!(got.epoch, 1);
    assert_oracle_exact(&got, &[&recovered, &next]);
    server.shutdown();
}

/// Fresh per-test directory under the cargo-managed tmp root.
fn chaos_store_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}
