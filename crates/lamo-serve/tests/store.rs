//! Crash-safety contracts of the [`ArtifactStore`]:
//!
//! * publish → recover is the identity on artifacts, and the manifest
//!   tracks the newest generation;
//! * recovery walks newest-first past torn and corrupt generations,
//!   classifying every file it skips;
//! * an empty (or fully wrecked) store fails with a typed
//!   [`StoreError::NoGoodGeneration`], never a panic;
//! * stray `.tmp` files — the only debris a crashed publish can leave —
//!   are invisible to recovery and swept at the next open;
//! * a crash injected inside the publish window (`serve.store_write`)
//!   leaves the store exactly as it was.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use function_prediction::PredictionContext;
use go_ontology::{Namespace, TermId};
use lamo_serve::{write_artifact, ArtifactStore, ModelArtifact, StoreError};
use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
use motif_finder::Occurrence;
use par_util::{FaultAction, FaultPlan, RunContext};
use ppi_graph::{Graph, VertexId};

/// Fresh per-test directory under the cargo-managed tmp root.
fn store_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}

/// Small deterministic artifact; `variant` perturbs the annotations so
/// successive generations have different bytes.
fn artifact(variant: usize) -> ModelArtifact {
    let motifs = vec![LabeledMotif {
        pattern: Graph::from_edges(2, &[(0, 1)]),
        namespace: Namespace::BiologicalProcess,
        scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
        occurrences: vec![
            Occurrence::new(vec![VertexId(0), VertexId(1)]),
            Occurrence::new(vec![VertexId(1), VertexId(2)]),
        ],
        motif_frequency: 2,
        uniqueness: Some(1.0),
    }];
    let network = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let functions = vec![vec![variant % 2], vec![0], vec![1]];
    let terms = vec![TermId(10), TermId(20)];
    ModelArtifact::build(
        &motifs,
        &PredictionContext {
            network: &network,
            functions: &functions,
            n_categories: 2,
            category_terms: &terms,
        },
    )
}

#[test]
fn publish_then_recover_roundtrips() {
    let store = ArtifactStore::open(store_dir("roundtrip")).expect("open");
    let ctx = RunContext::unbounded();
    let a0 = artifact(0);
    let a1 = artifact(1);
    assert_eq!(store.publish(&a0, &ctx).expect("publish gen 0"), 0);
    assert_eq!(store.publish(&a1, &ctx).expect("publish gen 1"), 1);
    assert_eq!(store.generations().expect("list"), vec![0, 1]);
    assert_eq!(store.manifest_latest(), Some(1));

    let recovery = store.recover().expect("two good generations");
    assert_eq!(recovery.generation, 1);
    assert_eq!(recovery.artifact, a1);
    assert!(recovery.skipped.is_empty());
}

#[test]
fn recovery_walks_newest_first_past_torn_and_corrupt_generations() {
    let store = ArtifactStore::open(store_dir("walk-back")).expect("open");
    let ctx = RunContext::unbounded();
    let good = artifact(0);
    for v in 0..3 {
        store.publish(&artifact(v), &ctx).expect("publish");
    }

    // Tear gen 2 (truncate mid-file) and corrupt gen 1 (bit flip).
    let gen2 = store.dir().join("gen-2.art");
    let bytes = std::fs::read(&gen2).expect("read gen 2");
    std::fs::write(&gen2, &bytes[..bytes.len() / 2]).expect("tear gen 2");
    let gen1 = store.dir().join("gen-1.art");
    let mut bytes = std::fs::read(&gen1).expect("read gen 1");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&gen1, &bytes).expect("corrupt gen 1");

    let recovery = store.recover().expect("gen 0 is still good");
    assert_eq!(recovery.generation, 0);
    assert_eq!(recovery.artifact, good);
    let skipped: Vec<u64> = recovery.skipped.iter().map(|(g, _)| *g).collect();
    assert_eq!(skipped, vec![2, 1], "wreckage reported newest-first");
    for (generation, err) in &recovery.skipped {
        assert!(
            !err.to_string().is_empty(),
            "gen {generation} skip carries a classification"
        );
    }
}

#[test]
fn empty_store_is_a_typed_error() {
    let store = ArtifactStore::open(store_dir("empty")).expect("open");
    match store.recover() {
        Err(StoreError::NoGoodGeneration { skipped }) => assert!(skipped.is_empty()),
        other => panic!("expected NoGoodGeneration, got {:?}", other.map(|r| r.generation)),
    }
}

#[test]
fn fully_wrecked_store_reports_every_casualty() {
    let store = ArtifactStore::open(store_dir("wrecked")).expect("open");
    let ctx = RunContext::unbounded();
    for v in 0..2 {
        store.publish(&artifact(v), &ctx).expect("publish");
    }
    for g in 0..2 {
        std::fs::write(store.dir().join(format!("gen-{g}.art")), b"not an artifact")
            .expect("wreck generation");
    }
    match store.recover() {
        Err(StoreError::NoGoodGeneration { skipped }) => {
            let gens: Vec<u64> = skipped.iter().map(|(g, _)| *g).collect();
            assert_eq!(gens, vec![1, 0], "every casualty listed, newest-first");
        }
        other => panic!("expected NoGoodGeneration, got {:?}", other.map(|r| r.generation)),
    }
}

#[test]
fn open_sweeps_stray_tmp_files_and_recovery_ignores_them() {
    let dir = store_dir("tmp-sweep");
    {
        let store = ArtifactStore::open(&dir).expect("open");
        store
            .publish(&artifact(0), &RunContext::unbounded())
            .expect("publish");
    }
    // Simulate publishes that crashed before their rename.
    std::fs::write(dir.join("gen-1.art.tmp"), b"torn publish").expect("plant tmp");
    std::fs::write(dir.join("MANIFEST.tmp"), b"torn manifest").expect("plant tmp");

    let store = ArtifactStore::open(&dir).expect("reopen");
    assert!(!dir.join("gen-1.art.tmp").exists(), "stray artifact tmp swept");
    assert!(!dir.join("MANIFEST.tmp").exists(), "stray manifest tmp swept");
    assert_eq!(store.generations().expect("list"), vec![0]);
    assert_eq!(store.recover().expect("gen 0 good").generation, 0);

    // The next publish reuses the number the crashed one never claimed.
    let gen = store
        .publish(&artifact(1), &RunContext::unbounded())
        .expect("publish after sweep");
    assert_eq!(gen, 1);
}

#[test]
fn injected_crash_inside_publish_window_leaves_store_unchanged() {
    let dir = store_dir("crash-window");
    let store = ArtifactStore::open(&dir).expect("open");
    store
        .publish(&artifact(0), &RunContext::unbounded())
        .expect("baseline generation");
    let manifest_before = std::fs::read(dir.join("MANIFEST")).expect("manifest exists");

    // Crash after the temp image is durable but before the rename.
    let ctx = RunContext::unbounded().with_faults(FaultPlan::new().inject(
        "serve.store_write",
        0,
        FaultAction::Panic,
    ));
    let crashed = catch_unwind(AssertUnwindSafe(|| store.publish(&artifact(1), &ctx)));
    assert!(crashed.is_err(), "injected fault fires inside publish");

    // The aborted generation never became visible; the manifest still
    // names the old one; reopening sweeps the debris.
    let store = ArtifactStore::open(&dir).expect("reopen after crash");
    assert_eq!(store.generations().expect("list"), vec![0]);
    assert_eq!(store.manifest_latest(), Some(0));
    assert_eq!(
        std::fs::read(dir.join("MANIFEST")).expect("manifest intact"),
        manifest_before
    );
    assert!(!dir.join("gen-1.art.tmp").exists(), "debris swept at open");
    let recovery = store.recover().expect("old generation serves");
    assert_eq!(recovery.generation, 0);
    assert_eq!(recovery.artifact, artifact(0));
}

#[test]
fn recovery_never_trusts_the_manifest() {
    let store = ArtifactStore::open(store_dir("manifest-hint")).expect("open");
    let ctx = RunContext::unbounded();
    store.publish(&artifact(0), &ctx).expect("publish");
    store.publish(&artifact(1), &ctx).expect("publish");

    // A stale manifest pointing at a deleted generation is harmless...
    std::fs::remove_file(store.dir().join("gen-1.art")).expect("lose newest");
    assert_eq!(store.manifest_latest(), Some(1), "manifest is now stale");
    assert_eq!(store.recover().expect("gen 0 good").generation, 0);

    // ...and so is no manifest at all.
    std::fs::remove_file(store.dir().join("MANIFEST")).expect("lose manifest");
    assert_eq!(store.manifest_latest(), None);
    assert_eq!(store.recover().expect("still recovers").generation, 0);
}

#[test]
fn recovered_artifact_is_byte_identical_to_what_was_published() {
    let store = ArtifactStore::open(store_dir("byte-identity")).expect("open");
    let published = artifact(0);
    store
        .publish(&published, &RunContext::unbounded())
        .expect("publish");
    let recovered = store.recover().expect("good generation").artifact;
    assert_eq!(write_artifact(&recovered), write_artifact(&published));
    // And the recovered artifact is servable as-is.
    let served = Arc::new(recovered);
    served.validate().expect("recovered artifact validates");
}
