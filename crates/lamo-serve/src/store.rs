//! Crash-safe on-disk home for [`ModelArtifact`] generations.
//!
//! An [`ArtifactStore`] is a directory of immutable generation files
//! (`gen-N.art`, each a complete [`write_artifact`] image) plus a
//! `MANIFEST` naming the newest one. Publishing is write-temp →
//! checksum → atomic rename:
//!
//! 1. the full image is written to `gen-N.art.tmp` and fsynced;
//! 2. the bytes on disk are read back and verified against the
//!    whole-file checksum recorded before writing;
//! 3. `rename(2)` installs `gen-N.art` — the only step that makes the
//!    generation visible, and it is atomic on POSIX filesystems;
//! 4. the manifest is rewritten the same way (temp + rename).
//!
//! A crash anywhere in that sequence leaves either nothing (a stray
//! `.tmp`, ignored and swept at open) or a complete, verified
//! generation. The `serve.store_write` faultpoint sits between steps 1
//! and 3 so the chaos suite can crash exactly inside the window.
//!
//! Recovery trusts *files*, not the manifest: [`ArtifactStore::recover`]
//! walks generations newest-first and returns the first whose bytes
//! decode — the total [`read_artifact`] reader classifies torn and
//! corrupt files instead of crashing on them — reporting everything it
//! skipped. A stale or missing manifest therefore costs nothing but the
//! walk; it exists so operators (and the `lamo-artifact` CLI) can see
//! the intended latest without decoding anything.

use crate::artifact::ModelArtifact;
use crate::format::{fnv1a, read_artifact, write_artifact, ArtifactError};
use par_util::{faultpoint, RunContext};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure; `path` is the file or directory involved.
    Io { path: PathBuf, source: std::io::Error },
    /// The written generation's bytes read back different from what
    /// was written — the medium corrupted them inside the publish
    /// window, so the rename never happened.
    WriteVerifyFailed { path: PathBuf },
    /// Every generation present failed to decode (or none exist).
    /// `skipped` lists each candidate newest-first with its defect.
    NoGoodGeneration { skipped: Vec<(u64, ArtifactError)> },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O on {}: {source}", path.display())
            }
            StoreError::WriteVerifyFailed { path } => write!(
                f,
                "published bytes did not verify at {}; rename aborted",
                path.display()
            ),
            StoreError::NoGoodGeneration { skipped } => write!(
                f,
                "no decodable generation in the store ({} candidate(s) skipped)",
                skipped.len()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// A recovered store state: the newest decodable generation plus the
/// wreckage passed over to reach it.
pub struct Recovery {
    /// Generation number of the artifact returned.
    pub generation: u64,
    /// The decoded artifact.
    pub artifact: ModelArtifact,
    /// Newer generations that existed but failed to decode, newest
    /// first, each with the reader's classification of its defect.
    pub skipped: Vec<(u64, ArtifactError)>,
}

/// Directory of artifact generations with atomic publish and
/// walk-backwards recovery.
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) the store at `dir` and sweep stray
    /// `.tmp` files — leftovers of publishes that crashed before their
    /// rename; they were never visible and never will be.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        let store = ArtifactStore { dir };
        for entry in std::fs::read_dir(&store.dir).map_err(|e| io_err(&store.dir, e))? {
            let entry = entry.map_err(|e| io_err(&store.dir, e))?;
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "tmp") {
                // Best-effort: a sweep failure is not an open failure.
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(store)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation}.art"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Generation numbers present on disk (decodable or not),
    /// ascending.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".art"))
                .and_then(|num| num.parse::<u64>().ok())
            {
                found.push(n);
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// The generation the manifest says is newest, if a well-formed
    /// manifest exists. A hint only — recovery never trusts it.
    pub fn manifest_latest(&self) -> Option<u64> {
        let text = std::fs::read_to_string(self.manifest_path()).ok()?;
        text.lines()
            .find_map(|line| line.strip_prefix("latest="))
            .and_then(|v| v.trim().parse().ok())
    }

    /// Persist `artifact` as the next generation and return its number.
    ///
    /// The generation becomes visible only at the final rename; any
    /// failure (or injected `serve.store_write` fault) before that
    /// leaves the store exactly as it was, plus at most one `.tmp`
    /// swept at the next open.
    pub fn publish(
        &self,
        artifact: &ModelArtifact,
        ctx: &RunContext,
    ) -> Result<u64, StoreError> {
        let generation = self.generations()?.last().map_or(0, |last| last + 1);
        let bytes = write_artifact(artifact);
        let checksum = fnv1a(&bytes);
        let final_path = self.generation_path(generation);
        let tmp_path = self.dir.join(format!("gen-{generation}.art.tmp"));

        let mut file = std::fs::File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        file.write_all(&bytes).map_err(|e| io_err(&tmp_path, e))?;
        file.sync_all().map_err(|e| io_err(&tmp_path, e))?;
        drop(file);

        // The chaos window: a fault here models a crash after the temp
        // image is durable but before it is installed.
        faultpoint!(ctx, "serve.store_write");

        // Read back and verify before the rename makes anything
        // visible: a medium that mangled the bytes must not get to
        // publish them.
        let on_disk = std::fs::read(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        if fnv1a(&on_disk) != checksum {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(StoreError::WriteVerifyFailed { path: tmp_path });
        }

        std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
        self.write_manifest(generation, checksum)?;
        Ok(generation)
    }

    fn write_manifest(&self, generation: u64, checksum: u64) -> Result<(), StoreError> {
        let manifest = self.manifest_path();
        let tmp = self.dir.join("MANIFEST.tmp");
        let body = format!("lamo-artifact-store v1\nlatest={generation}\nchecksum={checksum:016x}\n");
        std::fs::write(&tmp, body).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &manifest).map_err(|e| io_err(&manifest, e))?;
        Ok(())
    }

    /// Load the newest decodable generation, walking backwards past
    /// torn or corrupt files. Total: every way a file can be bad is a
    /// skip entry, not a panic.
    pub fn recover(&self) -> Result<Recovery, StoreError> {
        let mut skipped = Vec::new();
        for generation in self.generations()?.into_iter().rev() {
            let path = self.generation_path(generation);
            // An unreadable file (vanished mid-walk, permissions) is
            // classified as truncated-at-zero rather than aborting the
            // walk: recovery's job is to get past wreckage.
            let bytes = std::fs::read(&path).unwrap_or_default();
            match read_artifact(&bytes) {
                Ok(artifact) => {
                    return Ok(Recovery {
                        generation,
                        artifact,
                        skipped,
                    })
                }
                Err(err) => skipped.push((generation, err)),
            }
        }
        Err(StoreError::NoGoodGeneration { skipped })
    }
}
