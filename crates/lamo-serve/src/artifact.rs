//! The immutable prediction artifact.
//!
//! [`ModelArtifact`] bundles everything Eq. 5 needs at query time —
//! the flattened labeled-motif dictionary ([`FlatMotifs`]), the
//! posting-list index ([`PostingIndex`]) and the category → GO-term
//! mapping — into one `Sync` value with no interior mutability, so any
//! number of worker threads can serve predictions from a shared
//! `Arc<ModelArtifact>` without a single lock (lamolint's
//! `serve-read-lock` rule keeps it that way).
//!
//! Built once from pipeline output via [`ModelArtifact::build`]; loaded
//! from disk via [`crate::format::read_artifact`], which re-validates
//! every structural invariant so a corrupted file can never panic the
//! read path.

use function_prediction::{PostingIndex, PredictScratch, PredictionContext};
use go_ontology::TermId;
use lamofinder::{FlatMotifs, LabeledMotif};

/// Fixed-size artifact header fields: the shape of the network and
/// category space the model was trained on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ArtifactMeta {
    /// Vertices in the training network (= proteins the index covers).
    pub protein_count: u64,
    /// Edges in the training network (provenance; not used at query
    /// time).
    pub network_edges: u64,
    /// Functional categories `C` scores are ranked over.
    pub n_categories: u32,
}

/// Immutable, `Sync` bundle of labeled motifs + LMS + posting lists.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ModelArtifact {
    /// Training-shape header.
    pub meta: ArtifactMeta,
    /// GO term id of each category index (`n_categories` entries),
    /// mapping ranked positions back to ontology terms.
    pub category_terms: Vec<u32>,
    /// The labeled-motif dictionary, flattened.
    pub motifs: FlatMotifs,
    /// The Eq. 5 posting-list index over that dictionary.
    pub index: PostingIndex,
}

impl ModelArtifact {
    /// Compile pipeline output into an artifact. `motifs` is the
    /// labeled dictionary; `ctx` is the same prediction context the
    /// batch evaluator uses (network + annotations + category space).
    pub fn build(motifs: &[LabeledMotif], ctx: &PredictionContext<'_>) -> ModelArtifact {
        ModelArtifact {
            meta: ArtifactMeta {
                protein_count: ctx.network.vertex_count() as u64,
                network_edges: ctx.network.edge_count() as u64,
                n_categories: ctx.n_categories as u32,
            },
            category_terms: ctx.category_terms.iter().map(|t| t.0).collect(),
            motifs: FlatMotifs::from_motifs(motifs),
            index: PostingIndex::build(motifs, ctx.functions, ctx.n_categories),
        }
    }

    /// Proteins the artifact can answer for (`0..protein_count`).
    pub fn protein_count(&self) -> usize {
        self.meta.protein_count as usize
    }

    /// Number of functional categories.
    pub fn n_categories(&self) -> usize {
        self.meta.n_categories as usize
    }

    /// GO term of category index `c`.
    pub fn term_of(&self, c: usize) -> TermId {
        TermId(self.category_terms[c])
    }

    /// Eq. 5 for protein `p`: ranked `(category, score)` list borrowed
    /// from the caller's scratch, plus the number of postings consumed
    /// (the server's work-tick count). O(|postings(p)| · C), zero
    /// allocation once the scratch is warm.
    pub fn predict_into<'s>(
        &self,
        p: usize,
        scratch: &'s mut PredictScratch,
    ) -> (&'s [(u32, f64)], usize) {
        self.index.predict_into(p, scratch)
    }

    /// Full structural validation — the deserializer's last step before
    /// an artifact is allowed near the read path. Checks each component
    /// and every cross-component invariant `predict_into` relies on.
    pub fn validate(&self) -> Result<(), &'static str> {
        self.motifs.validate()?;
        self.index.validate()?;
        if self.category_terms.len() != self.meta.n_categories as usize {
            return Err("category table length disagrees with header");
        }
        if self.index.n_categories != self.meta.n_categories {
            return Err("index category count disagrees with header");
        }
        if self.index.protein_count() as u64 != self.meta.protein_count {
            return Err("index protein count disagrees with header");
        }
        if self.index.motif_count() != self.motifs.motif_count() {
            return Err("index and dictionary motif counts disagree");
        }
        for posting in &self.index.postings {
            let m = posting.motif as usize;
            if posting.occurrence as usize >= self.motifs.occurrence_count(m)
                || posting.position as usize >= self.motifs.size(m)
            {
                return Err("posting points outside its motif's occurrences");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::Namespace;
    use lamofinder::{LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    fn fixture() -> (Vec<LabeledMotif>, Graph, Vec<Vec<usize>>, Vec<TermId>) {
        let motifs = vec![LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(0), VertexId(1)]),
                Occurrence::new(vec![VertexId(2), VertexId(1)]),
            ],
            motif_frequency: 2,
            uniqueness: Some(1.0),
        }];
        let network = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]);
        let functions = vec![vec![0], vec![1], vec![0], vec![]];
        let terms = vec![TermId(100), TermId(200)];
        (motifs, network, functions, terms)
    }

    fn build_fixture() -> ModelArtifact {
        let (motifs, network, functions, terms) = fixture();
        let ctx = PredictionContext {
            network: &network,
            functions: &functions,
            n_categories: 2,
            category_terms: &terms,
        };
        ModelArtifact::build(&motifs, &ctx)
    }

    #[test]
    fn artifact_is_sync_and_send() {
        fn assert_shareable<T: Sync + Send>() {}
        assert_shareable::<ModelArtifact>();
    }

    #[test]
    fn build_wires_every_component() {
        let artifact = build_fixture();
        artifact.validate().expect("freshly built artifact must validate");
        assert_eq!(artifact.protein_count(), 4);
        assert_eq!(artifact.n_categories(), 2);
        assert_eq!(artifact.meta.network_edges, 3);
        assert_eq!(artifact.term_of(1), TermId(200));
        assert_eq!(artifact.motifs.motif_count(), 1);
        let mut scratch = PredictScratch::new();
        let (ranked, consumed) = artifact.predict_into(3, &mut scratch);
        assert_eq!(consumed, 0, "protein 3 is in no occurrence");
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn validate_catches_cross_component_corruption() {
        let mut artifact = build_fixture();
        artifact.category_terms.pop();
        assert!(artifact.validate().is_err());

        let mut artifact = build_fixture();
        artifact.meta.protein_count = 99;
        assert!(artifact.validate().is_err());

        let mut artifact = build_fixture();
        artifact.index.postings[0].occurrence = 5;
        assert!(artifact.validate().is_err());
    }
}
