//! Incremental model maintenance: edge delta in, patched artifact out.
//!
//! [`IncrementalTrainer`] is the serving-side owner of the three
//! incremental layers built below it — the per-size
//! [`IncrementalCensus`] (dirty-region re-census), the [`LabelCache`]
//! (per-motif label reuse) and the [`SegmentedIndex`] (per-motif plane
//! and posting-run reuse). [`IncrementalTrainer::apply_delta`] threads
//! one [`EdgeDelta`] through all of them and recompiles the
//! [`ModelArtifact`], with the invariant the delta proptests pin: the
//! serialized artifact is **byte-identical** to training from scratch
//! on the post-delta network.
//!
//! The trainer is transactional at the granularity the layers provide:
//! a validation error or cooperative cancellation leaves every census
//! on the pre-delta graph (already-repaired sizes are rolled back with
//! the inverse delta) and the published artifact untouched. The
//! censuses enumerate exhaustively — there is no candidate budget, so
//! the engine is equivalent to the batch grower with an unbounded
//! `max_candidates_per_level`; size is bounded instead by the
//! exact-small ceiling (`2 ≤ k ≤ 8`).
//!
//! [`publish_delta`] is the last hop: persist the patched artifact
//! through the crash-safe [`ArtifactStore`] and epoch-swap it into a
//! live [`Server`] — under the `delta.publish` faultpoint, so the chaos
//! tests can prove a crash anywhere in the publish path leaves both the
//! served epoch and the store's recovery outcome unchanged.

use crate::artifact::{ArtifactMeta, ModelArtifact};
use crate::server::Server;
use crate::store::{ArtifactStore, StoreError};
use function_prediction::{IndexDeltaStats, SegmentedIndex};
use go_ontology::TermId;
use lamofinder::{FlatMotifs, LaMoFinder, LabelCache, LabelCacheStats, MotifKey};
use motif_finder::{CensusDeltaStats, IncrementalCensus, Motif, Occurrence};
use par_util::{faultpoint, RunContext};
use ppi_graph::{DeltaError, EdgeDelta, Graph};
use std::collections::HashMap;
use std::sync::Arc;

/// Pipeline knobs the trainer keeps fixed across deltas (the caches
/// cannot observe config changes, so there is no setter — build a new
/// trainer to retune).
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Motif sizes to maintain, strictly ascending, each within the
    /// exact-small window `2..=8`. One census per size.
    pub sizes: Vec<usize>,
    /// Minimum class frequency for a motif to enter the dictionary.
    pub frequency_threshold: usize,
    /// Stored-occurrence cap per class (the labeling window).
    pub max_stored: usize,
    /// Dictionary cap per size, strongest classes first.
    pub max_classes: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            sizes: vec![3],
            frequency_threshold: 2,
            max_stored: 2_000,
            max_classes: 300,
        }
    }
}

/// What one [`IncrementalTrainer::apply_delta`] round actually redid,
/// layer by layer — the observability half of the O(dirty-region)
/// claim.
#[derive(Clone, Debug, Default)]
pub struct DeltaReport {
    /// Per-size census repair stats, in `config.sizes` order.
    pub census: Vec<CensusDeltaStats>,
    /// Label reuse vs. relabel counts.
    pub labels: LabelCacheStats,
    /// Segment reuse vs. rebuild counts.
    pub index: IndexDeltaStats,
    /// Motif dictionary size after the delta.
    pub motif_count: usize,
    /// Labeled motifs in the artifact after the delta.
    pub labeled_count: usize,
    /// Whether any size's dictionary was truncated at `max_classes`.
    pub capped: bool,
}

impl DeltaReport {
    /// Largest dirty region across sizes: distinct vertices appearing
    /// in a retracted/inserted candidate or a changed endpoint (grows
    /// with `k`).
    pub fn dirty_vertices(&self) -> usize {
        self.census.iter().map(|s| s.dirty_vertices).max().unwrap_or(0)
    }

    /// Largest dirty-root count across sizes.
    pub fn dirty_roots(&self) -> usize {
        self.census.iter().map(|s| s.dirty_roots).max().unwrap_or(0)
    }
}

/// Where the previous round put one motif's labeled block in the flat
/// dictionary, plus the occurrence window it was labeled from.
struct PrevBlock {
    start: usize,
    len: usize,
    occurrences: Vec<Occurrence>,
}

/// A live model: owns the incremental censuses, the label cache and
/// the segmented index, and keeps a compiled [`ModelArtifact`] current
/// under edge deltas.
pub struct IncrementalTrainer<'a> {
    config: TrainerConfig,
    labeler: LaMoFinder<'a>,
    functions: &'a [Vec<usize>],
    category_terms: &'a [TermId],
    censuses: Vec<IncrementalCensus>,
    cache: LabelCache,
    index: SegmentedIndex,
    /// Previous round's labeled-block layout, keyed by stable class
    /// identity — the cleanliness proof handed to the segmented index.
    prev_blocks: HashMap<MotifKey, PrevBlock>,
    artifact: ModelArtifact,
}

impl<'a> IncrementalTrainer<'a> {
    /// Train from scratch on `network` and compile the initial
    /// artifact. Meters one tick per enumerated candidate on `ctx`;
    /// cancellation returns [`DeltaError::Cancelled`].
    pub fn new(
        network: &Graph,
        labeler: LaMoFinder<'a>,
        functions: &'a [Vec<usize>],
        category_terms: &'a [TermId],
        config: TrainerConfig,
        ctx: &RunContext,
    ) -> Result<IncrementalTrainer<'a>, DeltaError> {
        assert!(!config.sizes.is_empty(), "at least one motif size");
        assert!(
            config.sizes.windows(2).all(|w| w[0] < w[1]),
            "sizes must be strictly ascending"
        );
        assert_eq!(
            functions.len(),
            network.vertex_count(),
            "one function list per protein (artifact validation requires it)"
        );
        let censuses = config
            .sizes
            .iter()
            .map(|&k| IncrementalCensus::new(network, k, config.max_stored, ctx))
            .collect::<Result<Vec<_>, _>>()?;
        let (index, _) = SegmentedIndex::build(&[], functions, category_terms.len());
        let mut trainer = IncrementalTrainer {
            config,
            labeler,
            functions,
            category_terms,
            censuses,
            cache: LabelCache::new(),
            index,
            prev_blocks: HashMap::new(),
            artifact: ModelArtifact::default(),
        };
        trainer.refresh();
        Ok(trainer)
    }

    /// The compiled artifact for the current network state.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The current (post-delta) network.
    pub fn graph(&self) -> &Graph {
        self.censuses[0].graph()
    }

    /// Repair every layer for `delta` and recompile the artifact.
    ///
    /// On a validation error nothing has changed. On cancellation,
    /// sizes repaired before the cut are rolled back with the inverse
    /// delta, so the trainer is left fully on the pre-delta network and
    /// remains usable; the published artifact is untouched either way.
    pub fn apply_delta(
        &mut self,
        delta: &EdgeDelta,
        ctx: &RunContext,
    ) -> Result<DeltaReport, DeltaError> {
        let mut census_stats = Vec::with_capacity(self.censuses.len());
        for i in 0..self.censuses.len() {
            match self.censuses[i].apply(delta, ctx) {
                Ok(stats) => census_stats.push(stats),
                Err(err) => {
                    // Put the already-repaired sizes back on the
                    // pre-delta graph. The inverse of a delta that just
                    // applied is valid by construction, and rollback
                    // must not itself be cancellable.
                    let inverse = EdgeDelta {
                        added: delta.removed.clone(),
                        removed: delta.added.clone(),
                    };
                    let calm = RunContext::unbounded();
                    for census in &mut self.censuses[..i] {
                        census
                            .apply(&inverse, &calm)
                            .expect("inverse delta restores the pre-delta graph");
                    }
                    return Err(err);
                }
            }
        }
        let mut report = self.refresh();
        report.census = census_stats;
        Ok(report)
    }

    /// Re-publish the dictionary from the censuses, relabel what moved,
    /// reassemble the index and recompile the artifact.
    fn refresh(&mut self) -> DeltaReport {
        // Dictionary: each census publishes exactly what the batch
        // grower would; sizes ascending keeps the flat order stable.
        let mut keys: Vec<MotifKey> = Vec::new();
        let mut motifs: Vec<Motif> = Vec::new();
        let mut capped = false;
        for census in &self.censuses {
            let (classes, was_capped) =
                census.publish(self.config.frequency_threshold, self.config.max_classes);
            capped |= was_capped;
            for class in classes {
                keys.push(IncrementalCensus::key_of(&class));
                motifs.push(Motif {
                    pattern: class.pattern,
                    occurrences: class.occurrences,
                    frequency: class.frequency,
                    uniqueness: None,
                });
            }
        }

        let (labeled, label_stats) = self.cache.label(&self.labeler, &keys, &motifs);

        // Recover each motif's labeled block: outputs are concatenated
        // in motif order, and patterns are canonical representatives —
        // distinct per class — so a pattern change marks the boundary.
        let mut blocks: Vec<(usize, usize)> = vec![(0, 0); motifs.len()];
        let mut mi = 0usize;
        for (li, lm) in labeled.iter().enumerate() {
            while motifs[mi].pattern != lm.pattern {
                mi += 1;
            }
            if blocks[mi].1 == 0 {
                blocks[mi].0 = li;
            }
            blocks[mi].1 += 1;
        }

        // Cleanliness proof for the segmented index: a motif whose
        // stored window is unchanged since the previous round emitted
        // clones of its previous labeled block (the cache patches only
        // frequency and uniqueness, which never reach the segments), so
        // its labeled entries map 1:1 onto the previous flat positions.
        let mut reuse: Vec<Option<usize>> = vec![None; labeled.len()];
        for (i, motif) in motifs.iter().enumerate() {
            let (start, len) = blocks[i];
            if let Some(prev) = self.prev_blocks.get(&keys[i]) {
                if prev.len == len && prev.occurrences == motif.occurrences {
                    for j in 0..len {
                        reuse[start + j] = Some(prev.start + j);
                    }
                }
            }
        }
        let (index, index_stats) = self.index.update(&labeled, self.functions, &reuse);

        self.prev_blocks = motifs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (
                    keys[i],
                    PrevBlock {
                        start: blocks[i].0,
                        len: blocks[i].1,
                        occurrences: m.occurrences.clone(),
                    },
                )
            })
            .collect();

        let graph = self.censuses[0].graph();
        self.artifact = ModelArtifact {
            meta: ArtifactMeta {
                protein_count: graph.vertex_count() as u64,
                network_edges: graph.edge_count() as u64,
                n_categories: self.category_terms.len() as u32,
            },
            category_terms: self.category_terms.iter().map(|t| t.0).collect(),
            motifs: FlatMotifs::from_motifs(&labeled),
            index,
        };

        DeltaReport {
            census: Vec::new(),
            labels: label_stats,
            index: index_stats,
            motif_count: motifs.len(),
            labeled_count: labeled.len(),
            capped,
        }
    }
}

/// Why a [`publish_delta`] did not complete.
#[derive(Debug)]
pub enum PublishError {
    /// The store rejected or failed the durable write; nothing became
    /// visible.
    Store(StoreError),
    /// The server rejected the swap (e.g. protein-count mismatch with
    /// in-flight queries' expectations); the store already holds the
    /// new generation.
    Swap(&'static str),
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Store(e) => write!(f, "publish: store write failed: {e}"),
            PublishError::Swap(e) => write!(f, "publish: artifact swap refused: {e}"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Persist `artifact` as the next store generation, then epoch-swap it
/// into the live server. Returns `(generation, epoch)`.
///
/// Durability comes first: the swap only happens once the bytes are
/// recoverable, so a crash between the two steps serves the old model
/// from a store that already holds the new one — recovery converges
/// forward, never back. The `delta.publish` faultpoint sits before
/// both, modeling a crash on entry.
pub fn publish_delta(
    artifact: &ModelArtifact,
    store: &ArtifactStore,
    server: &Server,
    ctx: &RunContext,
) -> Result<(u64, u64), PublishError> {
    faultpoint!(ctx, "delta.publish");
    let generation = store.publish(artifact, ctx).map_err(PublishError::Store)?;
    let epoch = server
        .swap_artifact(Arc::new(artifact.clone()))
        .map_err(PublishError::Swap)?;
    Ok((generation, epoch))
}
