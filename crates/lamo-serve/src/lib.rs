#![forbid(unsafe_code)]
//! **lamo-serve** — the online serving layer (DESIGN.md §16).
//!
//! Every other entry point in this workspace is a batch binary that
//! re-walks the whole pipeline per question. This crate turns the
//! pipeline's output into a product: a [`ModelArtifact`] precompiles
//! the labeled motifs, the Eq. 4 LMS table and — the perf core —
//! per-protein posting lists, so answering "which functions does
//! protein `p` have?" (Eq. 5) is an O(|postings(p)|) merge instead of a
//! full scan; [`format`] gives the artifact a versioned, checksummed
//! binary form so a server loads once and answers from flat buffers;
//! and [`Server`] fronts it with N worker threads sharing one
//! `Arc<ModelArtifact>`.
//!
//! Determinism and safety rules, enforced by lamolint:
//!
//! * the read path acquires **no locks** (`serve-read-lock` rule) — all
//!   coordination lives in `par_util::batch`, and the artifact itself
//!   is immutable and `Sync`;
//! * the query path touches **no wall clock** — batching is a pure
//!   function of arrival order, and load limits are `RunContext` work
//!   ticks, with only the `profile_serve` bench bin exempted to
//!   measure latency.

pub mod artifact;
pub mod delta;
pub mod format;
pub mod server;
pub mod store;

pub use artifact::{ArtifactMeta, ModelArtifact};
pub use delta::{publish_delta, DeltaReport, IncrementalTrainer, PublishError, TrainerConfig};
pub use format::{read_artifact, write_artifact, ArtifactError, ArtifactErrorKind, FORMAT_VERSION};
pub use server::{
    AdmissionPolicy, PendingQuery, Prediction, ServeConfig, ServeError, Server, StatsSnapshot,
};
pub use store::{ArtifactStore, Recovery, StoreError};
