//! Multi-worker query front end over a shared [`ModelArtifact`].
//!
//! N worker threads drain a [`BatchQueue`] of requests; each worker
//! owns one [`PredictScratch`] for its whole life, so the steady-state
//! read path allocates only the response vectors it hands back.
//! Everything the workers *read* — the artifact — sits behind a plain
//! `Arc` with no locks (lamolint's `serve-read-lock` rule checks the
//! crate); the only synchronization is the request queue and the
//! per-request [`ResponseSlot`]s, both in `par_util::batch`.
//!
//! Determinism and shutdown:
//!
//! * batching is FIFO arrival order capped at
//!   [`ServeConfig::max_batch`] — no timers, no wall clock anywhere in
//!   the query path;
//! * load is metered in [`RunContext`] work ticks (one per posting
//!   consumed), so a tick budget bounds served work exactly the way it
//!   bounds pipeline work, and tripping it (or the external
//!   [`CancelToken`](par_util::CancelToken)) fails queries with
//!   [`ServeError::Cancelled`] instead of hanging clients;
//! * a panicking query is caught per request (`catch_unwind`): the
//!   client gets [`ServeError::WorkerPanicked`], the worker and its
//!   siblings keep serving;
//! * [`Server::shutdown`] (and `Drop`) closes the queue, lets workers
//!   drain what was already accepted, and joins them.

use crate::artifact::ModelArtifact;
use function_prediction::PredictScratch;
use par_util::{BatchQueue, ResponseSlot, RunContext};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (0 ⇒ one per available core).
    pub workers: usize,
    /// Max requests a worker takes per queue drain.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 32,
        }
    }
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Protein id outside the artifact's training network.
    UnknownProtein { protein: usize, protein_count: usize },
    /// The server is shutting down and no longer accepts work.
    Closed,
    /// The run was cancelled (tick budget spent or token tripped)
    /// before this query was answered.
    Cancelled,
    /// The query panicked inside a worker; the worker survived.
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownProtein {
                protein,
                protein_count,
            } => write!(
                f,
                "protein {protein} outside the artifact's network (0..{protein_count})"
            ),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::Cancelled => write!(f, "run cancelled before the query was answered"),
            ServeError::WorkerPanicked => write!(f, "query panicked in a worker"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered query.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// The protein asked about.
    pub protein: usize,
    /// Categories ranked by Eq. 5 score (descending, index ascending on
    /// ties) — bitwise identical to the full-scan oracle's ranking.
    pub ranked: Vec<(u32, f64)>,
    /// Postings consumed answering this query (= work ticks charged).
    pub postings: usize,
}

type Response = Result<Prediction, ServeError>;

struct Request {
    protein: usize,
    slot: Arc<ResponseSlot<Response>>,
}

/// Handle to an in-flight query submitted with [`Server::submit`].
pub struct PendingQuery {
    slot: Arc<ResponseSlot<Response>>,
}

impl PendingQuery {
    /// Block until the answer arrives.
    pub fn wait(self) -> Response {
        self.slot.wait()
    }
}

/// The serving front end. Workers run until [`Server::shutdown`] or
/// drop.
pub struct Server {
    queue: Arc<BatchQueue<Request>>,
    ctx: Arc<RunContext>,
    artifact: Arc<ModelArtifact>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn the worker pool. The context meters served work: one tick
    /// per posting consumed, so `RunContext::with_tick_budget` bounds
    /// total service deterministically and `ctx.cancel()` (or the
    /// realtime `Deadline` adapter at the CLI boundary) stops the pool
    /// gracefully.
    pub fn start(artifact: Arc<ModelArtifact>, config: ServeConfig, ctx: Arc<RunContext>) -> Server {
        let worker_count = par_util::resolve_threads(config.workers);
        let queue: Arc<BatchQueue<Request>> = Arc::new(BatchQueue::new());
        let workers = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let artifact = Arc::clone(&artifact);
                let ctx = Arc::clone(&ctx);
                let max_batch = config.max_batch;
                std::thread::spawn(move || worker_loop(&queue, &artifact, &ctx, max_batch))
            })
            .collect();
        Server {
            queue,
            ctx,
            artifact,
            workers,
        }
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &Arc<ModelArtifact> {
        &self.artifact
    }

    /// Enqueue a query without blocking; errors that need no worker
    /// (bounds, shutdown, cancellation) are returned immediately.
    pub fn submit(&self, protein: usize) -> Result<PendingQuery, ServeError> {
        let protein_count = self.artifact.protein_count();
        if protein >= protein_count {
            return Err(ServeError::UnknownProtein {
                protein,
                protein_count,
            });
        }
        if self.ctx.should_stop() {
            return Err(ServeError::Cancelled);
        }
        let slot = Arc::new(ResponseSlot::new());
        let accepted = self.queue.push(Request {
            protein,
            slot: Arc::clone(&slot),
        });
        if accepted {
            Ok(PendingQuery { slot })
        } else {
            Err(ServeError::Closed)
        }
    }

    /// Answer one query, blocking until a worker serves it.
    pub fn query(&self, protein: usize) -> Response {
        self.submit(protein)?.wait()
    }

    /// Submit a whole batch, then collect every answer. Results line up
    /// with `proteins` index for index; each is independent, so one bad
    /// id fails only its own slot.
    pub fn query_batch(&self, proteins: &[usize]) -> Vec<Response> {
        let pending: Vec<Result<PendingQuery, ServeError>> =
            proteins.iter().map(|&p| self.submit(p)).collect();
        pending
            .into_iter()
            .map(|handle| handle.and_then(PendingQuery::wait))
            .collect()
    }

    /// Stop accepting work, drain what was accepted, join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside catch_unwind (queue logic,
            // not query logic) surfaces here instead of being lost.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    queue: &BatchQueue<Request>,
    artifact: &ModelArtifact,
    ctx: &RunContext,
    max_batch: usize,
) {
    let mut scratch = PredictScratch::new();
    let mut batch: Vec<Request> = Vec::new();
    while queue.pop_batch(max_batch, &mut batch) {
        for request in batch.drain(..) {
            if ctx.should_stop() {
                request.slot.fulfill(Err(ServeError::Cancelled));
                continue;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let (ranked, postings) = artifact.predict_into(request.protein, &mut scratch);
                Prediction {
                    protein: request.protein,
                    ranked: ranked.to_vec(),
                    postings,
                }
            }));
            match outcome {
                Ok(prediction) => {
                    // Charge the ticks *after* answering: a budget trip
                    // fails the next query, never one already served.
                    let ticks = prediction.postings as u64;
                    request.slot.fulfill(Ok(prediction));
                    ctx.tick(ticks);
                }
                Err(_) => {
                    request.slot.fulfill(Err(ServeError::WorkerPanicked));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use function_prediction::PredictionContext;
    use go_ontology::{Namespace, TermId};
    use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    fn artifact() -> Arc<ModelArtifact> {
        let motifs = vec![LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(0), VertexId(1)]),
                Occurrence::new(vec![VertexId(2), VertexId(1)]),
                Occurrence::new(vec![VertexId(2), VertexId(3)]),
            ],
            motif_frequency: 3,
            uniqueness: Some(1.0),
        }];
        let network = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]);
        let functions = vec![vec![0], vec![1], vec![0], vec![1]];
        let terms = vec![TermId(10), TermId(20)];
        Arc::new(ModelArtifact::build(
            &motifs,
            &PredictionContext {
                network: &network,
                functions: &functions,
                n_categories: 2,
                category_terms: &terms,
            },
        ))
    }

    fn expected(artifact: &ModelArtifact, p: usize) -> Prediction {
        let mut scratch = PredictScratch::new();
        let (ranked, postings) = artifact.predict_into(p, &mut scratch);
        Prediction {
            protein: p,
            ranked: ranked.to_vec(),
            postings,
        }
    }

    #[test]
    fn single_queries_match_direct_prediction() {
        let artifact = artifact();
        let server = Server::start(
            Arc::clone(&artifact),
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        for p in 0..artifact.protein_count() {
            assert_eq!(server.query(p), Ok(expected(&artifact, p)));
        }
        server.shutdown();
    }

    #[test]
    fn batched_queries_match_and_align() {
        let artifact = artifact();
        let server = Server::start(
            Arc::clone(&artifact),
            ServeConfig {
                workers: 2,
                max_batch: 2,
            },
            Arc::new(RunContext::unbounded()),
        );
        let asked = [3, 0, 2, 0, 1];
        let answers = server.query_batch(&asked);
        for (&p, answer) in asked.iter().zip(&answers) {
            assert_eq!(answer, &Ok(expected(&artifact, p)));
        }
    }

    #[test]
    fn unknown_protein_rejected_at_submit() {
        let artifact = artifact();
        let server = Server::start(
            artifact,
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        assert_eq!(
            server.query(99),
            Err(ServeError::UnknownProtein {
                protein: 99,
                protein_count: 4
            })
        );
    }

    #[test]
    fn cancellation_fails_fast() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        let server = Server::start(artifact, ServeConfig::default(), Arc::clone(&ctx));
        ctx.cancel();
        assert_eq!(server.query(0), Err(ServeError::Cancelled));
    }

    #[test]
    fn tick_budget_bounds_served_work() {
        let artifact = artifact();
        // Protein 1 has 2 postings; a 1-tick budget serves the first
        // query and trips before the second.
        let ctx = Arc::new(RunContext::with_tick_budget(1));
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), Arc::clone(&ctx));
        assert_eq!(server.query(1), Ok(expected(&artifact, 1)));
        assert_eq!(server.query(1), Err(ServeError::Cancelled));
        assert_eq!(ctx.ticks_spent(), 2);
    }

    #[test]
    fn shutdown_then_submit_is_closed() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), ctx);
        server.shutdown();
        let server = Server::start(artifact, ServeConfig::default(), Arc::new(RunContext::unbounded()));
        server.queue.close();
        assert_eq!(server.query(0), Err(ServeError::Closed));
    }
}
