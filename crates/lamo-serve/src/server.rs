//! Multi-worker query front end over a hot-swappable [`ModelArtifact`].
//!
//! N worker threads drain a [`BatchQueue`] of requests; each worker
//! owns one [`PredictScratch`] for its whole life, so the steady-state
//! read path allocates only the response vectors it hands back.
//! Everything the workers *read* — the artifact — sits behind an
//! epoch-counted `Arc` snapshot with no locks held across prediction
//! (lamolint's `serve-read-lock` rule checks the crate); the only
//! synchronization is the request queue, the per-request
//! [`ResponseSlot`]s, and the [`EpochCell`], all in `par_util::batch`.
//!
//! Robustness (DESIGN.md §16 "Serving fault model"):
//!
//! * **Bounded admission.** The queue carries
//!   [`ServeConfig::queue_depth`]; a full queue sheds with
//!   [`ServeError::Overloaded`] under [`AdmissionPolicy::Shed`] or
//!   parks the submitting thread under [`AdmissionPolicy::Block`].
//!   Shedding is O(1): a refused request touches no postings and
//!   charges no ticks. [`ServerStats`] counts both outcomes.
//! * **Deadlines.** [`Server::submit_with_deadline`] stamps a request
//!   with an absolute tick deadline (admission tick + budget); expiry
//!   is checked only at dequeue, so answered work is always complete —
//!   a prediction is never torn down mid-flight.
//! * **Hot swap.** [`Server::swap_artifact`] installs a new artifact in
//!   the [`EpochCell`]. Workers snapshot `(epoch, artifact)` once per
//!   request; in-flight queries finish entirely on the epoch they
//!   loaded and every [`Prediction`] records which epoch answered it.
//! * **Panic containment.** All per-request work — including every
//!   `faultpoint!` site — runs inside one `catch_unwind`; the client
//!   gets [`ServeError::WorkerPanicked`], the worker and its siblings
//!   keep serving. [`Server::shutdown`] drains accepted work;
//!   [`Server::shutdown_now`] fails what is still queued with
//!   [`ServeError::Closed`]. Either way every submitted request
//!   resolves to exactly one typed response.
//!
//! Determinism: batching is FIFO arrival order capped at
//! [`ServeConfig::max_batch`] — no timers, no wall clock anywhere in
//! the query path; load is metered in [`RunContext`] work ticks (one
//! per posting consumed), charged *after* a response is delivered so a
//! budget trip fails the next query, never one already served.

use crate::artifact::ModelArtifact;
use function_prediction::PredictScratch;
use par_util::faultpoint;
use par_util::{BatchQueue, EpochCell, PushOutcome, ResponseSlot, RunContext};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What `submit` does when the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse immediately with [`ServeError::Overloaded`] — the caller
    /// sees back-pressure as a typed error in O(1).
    Shed,
    /// Park the submitting thread until a worker drains space (or the
    /// server closes). Bounded wait: the queue never exceeds its depth.
    Block,
}

/// Server shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads (0 ⇒ one per available core).
    pub workers: usize,
    /// Max requests a worker takes per queue drain.
    pub max_batch: usize,
    /// Max requests queued awaiting a worker (0 ⇒ unbounded, for
    /// trusted embedded callers only — production fronts should bound).
    pub queue_depth: usize,
    /// What to do with a submit that finds the queue full.
    pub admission: AdmissionPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            max_batch: 32,
            queue_depth: 1024,
            admission: AdmissionPolicy::Shed,
        }
    }
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Protein id outside the artifact's training network.
    UnknownProtein { protein: usize, protein_count: usize },
    /// The server is shutting down and no longer accepts work (or
    /// [`Server::shutdown_now`] discarded this already-queued request).
    Closed,
    /// The run was cancelled (tick budget spent or token tripped)
    /// before this query was answered.
    Cancelled,
    /// The query panicked inside a worker (or the admission path
    /// panicked before the request was queued); the server survived.
    WorkerPanicked,
    /// The queue was full under [`AdmissionPolicy::Shed`]; `depth` is
    /// the configured capacity. The request consumed no postings.
    Overloaded { depth: usize },
    /// The request's tick deadline passed while it waited in the
    /// queue. Checked at dequeue only — never mid-prediction.
    DeadlineExpired,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownProtein {
                protein,
                protein_count,
            } => write!(
                f,
                "protein {protein} outside the artifact's network (0..{protein_count})"
            ),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::Cancelled => write!(f, "run cancelled before the query was answered"),
            ServeError::WorkerPanicked => write!(f, "query panicked in a worker"),
            ServeError::Overloaded { depth } => {
                write!(f, "queue full at depth {depth}; request shed")
            }
            ServeError::DeadlineExpired => {
                write!(f, "tick deadline expired while the request was queued")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered query.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// The protein asked about.
    pub protein: usize,
    /// Categories ranked by Eq. 5 score (descending, index ascending on
    /// ties) — bitwise identical to the full-scan oracle's ranking.
    pub ranked: Vec<(u32, f64)>,
    /// Postings consumed answering this query (= work ticks charged).
    pub postings: usize,
    /// Artifact epoch that answered: 0 for the artifact the server
    /// started with, bumped by each [`Server::swap_artifact`]. Every
    /// prediction is computed entirely against one epoch's artifact.
    pub epoch: u64,
}

type Response = Result<Prediction, ServeError>;

struct Request {
    protein: usize,
    /// Absolute tick deadline (admission tick + budget), if any.
    deadline: Option<u64>,
    slot: Arc<ResponseSlot<Response>>,
}

/// Handle to an in-flight query submitted with [`Server::submit`].
pub struct PendingQuery {
    slot: Arc<ResponseSlot<Response>>,
}

impl PendingQuery {
    /// Block until the answer arrives.
    pub fn wait(self) -> Response {
        self.slot.wait()
    }

    /// Take the answer if it already arrived (non-blocking).
    pub fn try_wait(&self) -> Option<Response> {
        self.slot.try_take()
    }

    /// Stop waiting for this query. The worker's eventual delivery is
    /// refused and dropped by the slot, so an abandoning client leaks
    /// nothing and can never be blocked by its own query again.
    pub fn abandon(self) {
        self.slot.abandon();
    }
}

/// Saturation counters, updated with plain atomics (the serving read
/// path stays lock-free; `serve-read-lock` enforces it).
#[derive(Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    shed: AtomicU64,
    answered: AtomicU64,
    panicked: AtomicU64,
    deadline_expired: AtomicU64,
    swaps: AtomicU64,
}

/// One coherent-enough read of the counters (each counter is read
/// atomically; the set is a snapshot in the monitoring sense).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests that made it into the queue.
    pub accepted: u64,
    /// Requests refused with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests answered with a prediction.
    pub answered: u64,
    /// Requests answered [`ServeError::WorkerPanicked`].
    pub panicked: u64,
    /// Requests answered [`ServeError::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Successful [`Server::swap_artifact`] calls.
    pub swaps: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
        }
    }
}

/// The serving front end. Workers run until [`Server::shutdown`] or
/// drop.
pub struct Server {
    queue: Arc<BatchQueue<Request>>,
    ctx: Arc<RunContext>,
    cell: Arc<EpochCell<ModelArtifact>>,
    stats: Arc<ServerStats>,
    /// Set by [`Server::shutdown_now`]: workers fail still-queued
    /// requests with [`ServeError::Closed`] instead of serving them.
    closing: Arc<AtomicBool>,
    admission: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn the worker pool. The context meters served work: one tick
    /// per posting consumed, so `RunContext::with_tick_budget` bounds
    /// total service deterministically and `ctx.cancel()` (or the
    /// realtime `Deadline` adapter at the CLI boundary) stops the pool
    /// gracefully.
    pub fn start(artifact: Arc<ModelArtifact>, config: ServeConfig, ctx: Arc<RunContext>) -> Server {
        let worker_count = par_util::resolve_threads(config.workers);
        let queue: Arc<BatchQueue<Request>> = if config.queue_depth == 0 {
            Arc::new(BatchQueue::new())
        } else {
            Arc::new(BatchQueue::bounded(config.queue_depth))
        };
        let cell = Arc::new(EpochCell::new(artifact));
        let stats = Arc::new(ServerStats::default());
        let closing = Arc::new(AtomicBool::new(false));
        let workers = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let cell = Arc::clone(&cell);
                let ctx = Arc::clone(&ctx);
                let stats = Arc::clone(&stats);
                let closing = Arc::clone(&closing);
                let max_batch = config.max_batch;
                std::thread::spawn(move || {
                    worker_loop(&queue, &cell, &ctx, &stats, &closing, max_batch)
                })
            })
            .collect();
        Server {
            queue,
            ctx,
            cell,
            stats,
            closing,
            admission: config.admission,
            workers,
        }
    }

    /// The artifact currently being served (the newest epoch's).
    pub fn artifact(&self) -> Arc<ModelArtifact> {
        self.cell.load().1
    }

    /// The current artifact epoch (0 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// A snapshot of the saturation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Install `artifact` as the new current model and return its
    /// epoch. The swap happens between batches from the workers' point
    /// of view: queries that already snapshotted the old epoch finish
    /// on it (their [`Prediction::epoch`] says so), queries dequeued
    /// from now on see the new one. Readers never block — the cell is
    /// held only long enough to clone an `Arc`.
    ///
    /// The artifact is validated first; a structurally invalid one is
    /// refused and the current epoch keeps serving. An injected
    /// `serve.swap` fault fires *before* the install, so a mid-swap
    /// crash leaves the old epoch intact.
    pub fn swap_artifact(&self, artifact: Arc<ModelArtifact>) -> Result<u64, &'static str> {
        artifact.validate()?;
        faultpoint!(self.ctx, "serve.swap");
        let epoch = self.cell.swap(artifact);
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(epoch)
    }

    /// Enqueue a query; errors that need no worker (bounds, shutdown,
    /// cancellation, overload) are returned immediately. Blocks only
    /// under [`AdmissionPolicy::Block`] with a full queue.
    pub fn submit(&self, protein: usize) -> Result<PendingQuery, ServeError> {
        self.admit(protein, None)
    }

    /// [`submit`](Server::submit), stamping the request with a tick
    /// budget: if more than `budget_ticks` work ticks are charged
    /// between admission and dequeue, the request fails with
    /// [`ServeError::DeadlineExpired`] instead of being served. A
    /// budget of 0 means "serve only if no work lands ahead of me".
    ///
    /// Deadlines are measured on the server's [`RunContext`] tick
    /// counter, so they only bite under a metered context
    /// ([`RunContext::metered`] or `with_tick_budget`); under a passive
    /// one the counter never moves and every deadline is trivially met.
    pub fn submit_with_deadline(
        &self,
        protein: usize,
        budget_ticks: u64,
    ) -> Result<PendingQuery, ServeError> {
        self.admit(protein, Some(budget_ticks))
    }

    fn admit(&self, protein: usize, budget: Option<u64>) -> Result<PendingQuery, ServeError> {
        let protein_count = self.artifact().protein_count();
        if protein >= protein_count {
            return Err(ServeError::UnknownProtein {
                protein,
                protein_count,
            });
        }
        if self.ctx.should_stop() {
            return Err(ServeError::Cancelled);
        }
        // The admission faultpoint runs guarded on the submitting
        // thread: an injected panic here becomes a typed refusal, so
        // even a faulted submit yields exactly one answer.
        let ctx = &self.ctx;
        if catch_unwind(AssertUnwindSafe(|| {
            faultpoint!(ctx, "serve.admission");
        }))
        .is_err()
        {
            return Err(ServeError::WorkerPanicked);
        }
        let deadline = budget.map(|b| self.ctx.ticks_spent().saturating_add(b));
        let slot = Arc::new(ResponseSlot::new());
        let request = Request {
            protein,
            deadline,
            slot: Arc::clone(&slot),
        };
        let outcome = match (self.queue.capacity(), self.admission) {
            (Some(_), AdmissionPolicy::Block) => self.queue.push_wait(request),
            _ => self.queue.push(request),
        };
        match outcome {
            PushOutcome::Queued => {
                self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(PendingQuery { slot })
            }
            PushOutcome::Full { depth } => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded { depth })
            }
            PushOutcome::Closed => Err(ServeError::Closed),
        }
    }

    /// Answer one query, blocking until a worker serves it.
    pub fn query(&self, protein: usize) -> Response {
        self.submit(protein)?.wait()
    }

    /// Submit a whole batch, then collect every answer. Results line up
    /// with `proteins` index for index; each is independent, so one bad
    /// id fails only its own slot.
    pub fn query_batch(&self, proteins: &[usize]) -> Vec<Response> {
        let pending: Vec<Result<PendingQuery, ServeError>> =
            proteins.iter().map(|&p| self.submit(p)).collect();
        pending
            .into_iter()
            .map(|handle| handle.and_then(PendingQuery::wait))
            .collect()
    }

    /// Stop accepting work, drain what was accepted, join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Stop accepting work and *discard* what is still queued: workers
    /// answer every pending slot [`ServeError::Closed`] without
    /// predicting, then exit. A query already being served finishes
    /// normally. Every accepted request still resolves exactly once.
    /// Returns the final counter values — the server is gone, so this
    /// is the only place they are complete.
    pub fn shutdown_now(mut self) -> StatsSnapshot {
        self.closing.store(true, Ordering::Relaxed);
        self.shutdown_in_place();
        self.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside catch_unwind (queue logic,
            // not query logic) surfaces here instead of being lost.
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    queue: &BatchQueue<Request>,
    cell: &EpochCell<ModelArtifact>,
    ctx: &RunContext,
    stats: &ServerStats,
    closing: &AtomicBool,
    max_batch: usize,
) {
    let mut scratch = PredictScratch::new();
    let mut batch: Vec<Request> = Vec::new();
    while queue.pop_batch(max_batch, &mut batch) {
        for request in batch.drain(..) {
            if closing.load(Ordering::Relaxed) {
                request.slot.fulfill(Err(ServeError::Closed));
                continue;
            }
            serve_one(request, cell, ctx, stats, &mut scratch);
        }
    }
}

/// Serve one dequeued request. *Everything* fallible — the dequeue,
/// predict, and fulfill faultpoints and the prediction itself — runs
/// inside one `catch_unwind`, so an injected or organic panic anywhere
/// in the per-request path degrades to [`ServeError::WorkerPanicked`]
/// and the slot is still fulfilled exactly once, outside the guard.
fn serve_one(
    request: Request,
    cell: &EpochCell<ModelArtifact>,
    ctx: &RunContext,
    stats: &ServerStats,
    scratch: &mut PredictScratch,
) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        answer(request.protein, request.deadline, cell, ctx, scratch)
    }));
    let (response, ticks) = match outcome {
        Ok(answered) => answered,
        Err(_) => (Err(ServeError::WorkerPanicked), 0),
    };
    match &response {
        Ok(_) => stats.answered.fetch_add(1, Ordering::Relaxed),
        Err(ServeError::WorkerPanicked) => stats.panicked.fetch_add(1, Ordering::Relaxed),
        Err(ServeError::DeadlineExpired) => {
            stats.deadline_expired.fetch_add(1, Ordering::Relaxed)
        }
        Err(_) => 0,
    };
    // Deliver first, charge after: a budget trip fails the next query,
    // never one already served. A refused delivery (abandoned client)
    // still charges — the work happened.
    request.slot.fulfill(response);
    ctx.tick(ticks);
}

fn answer(
    protein: usize,
    deadline: Option<u64>,
    cell: &EpochCell<ModelArtifact>,
    ctx: &RunContext,
    scratch: &mut PredictScratch,
) -> (Response, u64) {
    faultpoint!(ctx, "serve.dequeue");
    if ctx.should_stop() {
        return (Err(ServeError::Cancelled), 0);
    }
    // Deadline is checked here, at dequeue, and nowhere later: once a
    // prediction starts it always completes.
    if let Some(deadline) = deadline {
        if ctx.ticks_spent() > deadline {
            return (Err(ServeError::DeadlineExpired), 0);
        }
    }
    let (epoch, artifact) = cell.load();
    // Admission checked bounds against the artifact of its moment; a
    // swap to a smaller network in between must degrade to a typed
    // refusal, not an out-of-range panic.
    let protein_count = artifact.protein_count();
    if protein >= protein_count {
        return (
            Err(ServeError::UnknownProtein {
                protein,
                protein_count,
            }),
            0,
        );
    }
    faultpoint!(ctx, "serve.predict");
    let (ranked, postings) = artifact.predict_into(protein, scratch);
    let prediction = Prediction {
        protein,
        ranked: ranked.to_vec(),
        postings,
        epoch,
    };
    faultpoint!(ctx, "serve.fulfill");
    (Ok(prediction), postings as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use function_prediction::PredictionContext;
    use go_ontology::{Namespace, TermId};
    use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use par_util::{FaultAction, FaultPlan};
    use ppi_graph::{Graph, VertexId};

    fn artifact() -> Arc<ModelArtifact> {
        let motifs = vec![LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(0), VertexId(1)]),
                Occurrence::new(vec![VertexId(2), VertexId(1)]),
                Occurrence::new(vec![VertexId(2), VertexId(3)]),
            ],
            motif_frequency: 3,
            uniqueness: Some(1.0),
        }];
        let network = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]);
        let functions = vec![vec![0], vec![1], vec![0], vec![1]];
        let terms = vec![TermId(10), TermId(20)];
        Arc::new(ModelArtifact::build(
            &motifs,
            &PredictionContext {
                network: &network,
                functions: &functions,
                n_categories: 2,
                category_terms: &terms,
            },
        ))
    }

    /// A second artifact over a smaller network (3 proteins), so a swap
    /// to it shrinks the valid id range.
    fn small_artifact() -> Arc<ModelArtifact> {
        let motifs = vec![LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(0), VertexId(1)]),
                Occurrence::new(vec![VertexId(1), VertexId(2)]),
            ],
            motif_frequency: 2,
            uniqueness: Some(1.0),
        }];
        let network = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let functions = vec![vec![1], vec![0], vec![1]];
        let terms = vec![TermId(10), TermId(20)];
        Arc::new(ModelArtifact::build(
            &motifs,
            &PredictionContext {
                network: &network,
                functions: &functions,
                n_categories: 2,
                category_terms: &terms,
            },
        ))
    }

    fn expected(artifact: &ModelArtifact, p: usize, epoch: u64) -> Prediction {
        let mut scratch = PredictScratch::new();
        let (ranked, postings) = artifact.predict_into(p, &mut scratch);
        Prediction {
            protein: p,
            ranked: ranked.to_vec(),
            postings,
            epoch,
        }
    }

    #[test]
    fn single_queries_match_direct_prediction() {
        let artifact = artifact();
        let server = Server::start(
            Arc::clone(&artifact),
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        for p in 0..artifact.protein_count() {
            assert_eq!(server.query(p), Ok(expected(&artifact, p, 0)));
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 4);
        assert_eq!(stats.answered, 4);
        assert_eq!(stats.shed, 0);
        server.shutdown();
    }

    #[test]
    fn batched_queries_match_and_align() {
        let artifact = artifact();
        let server = Server::start(
            Arc::clone(&artifact),
            ServeConfig {
                workers: 2,
                max_batch: 2,
                ..ServeConfig::default()
            },
            Arc::new(RunContext::unbounded()),
        );
        let asked = [3, 0, 2, 0, 1];
        let answers = server.query_batch(&asked);
        for (&p, answer) in asked.iter().zip(&answers) {
            assert_eq!(answer, &Ok(expected(&artifact, p, 0)));
        }
    }

    #[test]
    fn unknown_protein_rejected_at_submit() {
        let artifact = artifact();
        let server = Server::start(
            artifact,
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        assert_eq!(
            server.query(99),
            Err(ServeError::UnknownProtein {
                protein: 99,
                protein_count: 4
            })
        );
    }

    #[test]
    fn cancellation_fails_fast() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        let server = Server::start(artifact, ServeConfig::default(), Arc::clone(&ctx));
        ctx.cancel();
        assert_eq!(server.query(0), Err(ServeError::Cancelled));
    }

    #[test]
    fn tick_budget_bounds_served_work() {
        let artifact = artifact();
        // Protein 1 has 2 postings; a 1-tick budget serves the first
        // query and trips before the second.
        let ctx = Arc::new(RunContext::with_tick_budget(1));
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), Arc::clone(&ctx));
        assert_eq!(server.query(1), Ok(expected(&artifact, 1, 0)));
        assert_eq!(server.query(1), Err(ServeError::Cancelled));
        assert_eq!(ctx.ticks_spent(), 2);
    }

    #[test]
    fn shutdown_then_submit_is_closed() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), ctx);
        server.shutdown();
        let server = Server::start(artifact, ServeConfig::default(), Arc::new(RunContext::unbounded()));
        server.queue.close();
        assert_eq!(server.query(0), Err(ServeError::Closed));
    }

    #[test]
    fn full_queue_sheds_in_constant_work() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        // No workers drain the queue here: we want a deterministically
        // full queue, so we build the raw parts without Server::start.
        let server = Server {
            queue: Arc::new(BatchQueue::bounded(2)),
            ctx: Arc::clone(&ctx),
            cell: Arc::new(EpochCell::new(Arc::clone(&artifact))),
            stats: Arc::new(ServerStats::default()),
            closing: Arc::new(AtomicBool::new(false)),
            admission: AdmissionPolicy::Shed,
            workers: Vec::new(),
        };
        let a = server.submit(0).expect("depth 2 admits the first");
        let b = server.submit(1).expect("and the second");
        assert_eq!(
            server.submit(2).map(|_| ()),
            Err(ServeError::Overloaded { depth: 2 })
        );
        let stats = server.stats();
        assert_eq!((stats.accepted, stats.shed), (2, 1));
        // The shed was O(1): no ticks were charged for any of it.
        assert_eq!(ctx.ticks_spent(), 0);
        // Pending queries resolve once the queue closes and a worker
        // drains — here no worker exists, so just drop the handles and
        // the queue; abandoned slots leak nothing.
        a.abandon();
        b.abandon();
        server.queue.close();
    }

    #[test]
    fn deadline_expires_at_dequeue_not_mid_flight() {
        let artifact = artifact();
        // Deadlines ride the tick counter, so the context must meter.
        let ctx = Arc::new(RunContext::metered());
        // Raw parts, no live workers: both requests must be queued
        // before any work is charged, which a racing worker can't
        // guarantee. FIFO then charges the plain query's postings
        // before the budget-0 request is dequeued, so its deadline
        // (stamped at admission) has passed by then.
        let server = Server {
            queue: Arc::new(BatchQueue::new()),
            ctx: Arc::clone(&ctx),
            cell: Arc::new(EpochCell::new(Arc::clone(&artifact))),
            stats: Arc::new(ServerStats::default()),
            closing: Arc::new(AtomicBool::new(false)),
            admission: AdmissionPolicy::Shed,
            workers: Vec::new(),
        };
        let first = server.submit(1).expect("admitted");
        let strict = server.submit_with_deadline(1, 0).expect("admitted");
        let generous = server
            .submit_with_deadline(1, u64::MAX)
            .expect("admitted");
        server.queue.close();
        worker_loop(
            &server.queue,
            &server.cell,
            &ctx,
            &server.stats,
            &server.closing,
            8,
        );
        assert_eq!(first.wait(), Ok(expected(&artifact, 1, 0)));
        assert_eq!(strict.wait(), Err(ServeError::DeadlineExpired));
        // A generous budget survives the queueing delay.
        assert_eq!(generous.wait(), Ok(expected(&artifact, 1, 0)));
        let stats = server.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.answered, 2);
    }

    #[test]
    fn swap_changes_epoch_and_bounds() {
        let big = artifact();
        let small = small_artifact();
        let server = Server::start(
            Arc::clone(&big),
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        assert_eq!(server.query(3), Ok(expected(&big, 3, 0)));
        assert_eq!(server.epoch(), 0);
        assert_eq!(server.swap_artifact(Arc::clone(&small)), Ok(1));
        assert_eq!(server.epoch(), 1);
        // Answers now come from the new epoch's artifact...
        assert_eq!(server.query(2), Ok(expected(&small, 2, 1)));
        // ...and ids beyond its smaller network are refused at submit.
        assert_eq!(
            server.query(3),
            Err(ServeError::UnknownProtein {
                protein: 3,
                protein_count: 3
            })
        );
        assert_eq!(server.stats().swaps, 1);
    }

    #[test]
    fn request_admitted_before_shrinking_swap_gets_typed_refusal() {
        let big = artifact();
        let small = small_artifact();
        let ctx = Arc::new(RunContext::unbounded());
        // Raw parts again: the request must sit in the queue across the
        // swap, which needs no worker racing us.
        let server = Server {
            queue: Arc::new(BatchQueue::new()),
            ctx: Arc::clone(&ctx),
            cell: Arc::new(EpochCell::new(Arc::clone(&big))),
            stats: Arc::new(ServerStats::default()),
            closing: Arc::new(AtomicBool::new(false)),
            admission: AdmissionPolicy::Shed,
            workers: Vec::new(),
        };
        let pending = server.submit(3).expect("valid under the big artifact");
        assert_eq!(server.swap_artifact(small), Ok(1));
        // Drain the queue by hand the way a worker would.
        let mut batch = Vec::new();
        assert!(server.queue.pop_batch(8, &mut batch));
        let mut scratch = PredictScratch::new();
        for request in batch {
            serve_one(request, &server.cell, &ctx, &server.stats, &mut scratch);
        }
        assert_eq!(
            pending.wait(),
            Err(ServeError::UnknownProtein {
                protein: 3,
                protein_count: 3
            })
        );
        server.queue.close();
    }

    #[test]
    fn shutdown_now_fails_queued_requests_closed() {
        let artifact = artifact();
        let ctx = Arc::new(RunContext::unbounded());
        // Build with no live workers so requests stay queued, then flip
        // closing and run a worker loop to completion by hand.
        let server = Server {
            queue: Arc::new(BatchQueue::new()),
            ctx: Arc::clone(&ctx),
            cell: Arc::new(EpochCell::new(Arc::clone(&artifact))),
            stats: Arc::new(ServerStats::default()),
            closing: Arc::new(AtomicBool::new(false)),
            admission: AdmissionPolicy::Shed,
            workers: Vec::new(),
        };
        let pending: Vec<PendingQuery> =
            (0..3).map(|p| server.submit(p).expect("admitted")).collect();
        server.closing.store(true, Ordering::Relaxed);
        server.queue.close();
        worker_loop(
            &server.queue,
            &server.cell,
            &ctx,
            &server.stats,
            &server.closing,
            8,
        );
        for handle in pending {
            assert_eq!(handle.wait(), Err(ServeError::Closed));
        }
    }

    #[test]
    fn injected_predict_panic_is_contained() {
        let artifact = artifact();
        let plan = FaultPlan::new().inject("serve.predict", 0, FaultAction::Panic);
        let ctx = Arc::new(RunContext::unbounded().with_faults(plan));
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), ctx);
        // First query eats the injected panic; the worker survives and
        // the second query is served normally.
        assert_eq!(server.query(0), Err(ServeError::WorkerPanicked));
        assert_eq!(server.query(0), Ok(expected(&artifact, 0, 0)));
        let stats = server.stats();
        assert_eq!((stats.panicked, stats.answered), (1, 1));
        server.shutdown();
    }

    #[test]
    fn injected_admission_panic_is_a_typed_refusal() {
        let artifact = artifact();
        let plan = FaultPlan::new().inject("serve.admission", 0, FaultAction::Panic);
        let ctx = Arc::new(RunContext::unbounded().with_faults(plan));
        let server = Server::start(Arc::clone(&artifact), ServeConfig::default(), ctx);
        assert_eq!(
            server.submit(0).map(|_| ()),
            Err(ServeError::WorkerPanicked)
        );
        // Only the first admission hit is faulted; service continues.
        assert_eq!(server.query(0), Ok(expected(&artifact, 0, 0)));
    }

    #[test]
    fn invalid_swap_is_refused_and_old_epoch_serves_on() {
        let artifact = artifact();
        let server = Server::start(
            Arc::clone(&artifact),
            ServeConfig::default(),
            Arc::new(RunContext::unbounded()),
        );
        let broken = {
            let mut m = (*artifact).clone();
            m.category_terms.pop();
            Arc::new(m)
        };
        assert!(server.swap_artifact(broken).is_err());
        assert_eq!(server.epoch(), 0);
        assert_eq!(server.query(0), Ok(expected(&artifact, 0, 0)));
        assert_eq!(server.stats().swaps, 0);
    }
}
