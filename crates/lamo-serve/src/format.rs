//! Versioned, checksummed binary form of [`ModelArtifact`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "LAMOARTF"                    8 bytes
//! version u32                          4 bytes
//! section × 23, in fixed order:
//!   tag      u32    identifies the column (see SECTIONS)
//!   len      u64    payload bytes
//!   payload  [u8]   raw element stream (u8 / u32 / u64 / f64)
//!   checksum u64    FNV-1a 64 of the payload
//! ```
//!
//! One section per artifact column keeps the writer a plain slab dump
//! and the reader mmap-friendly: no nesting, every length known before
//! its payload is touched. The reader is **total** (PR 4 parser
//! discipline): every failure on arbitrary bytes is a typed
//! [`ArtifactError`] carrying the byte offset and section name — never
//! a panic, never an allocation larger than the input — and a
//! successfully decoded artifact has passed full structural validation
//! ([`ModelArtifact::validate`]) before it is returned, so the serving
//! read path can index it unchecked.
//!
//! Re-serializing a decoded artifact reproduces the input byte for
//! byte (`tests/prop_serve.rs` proves it): the format stores exactly
//! the canonical columns `FlatMotifs::from_motifs` and
//! `PostingIndex::build` emit, nothing derived.

use crate::artifact::{ArtifactMeta, ModelArtifact};
use function_prediction::{Posting, PostingIndex};
use lamofinder::FlatMotifs;
use std::fmt;

/// File magic; changing the layout bumps [`FORMAT_VERSION`] instead.
pub const MAGIC: &[u8; 8] = b"LAMOARTF";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Where and how decoding failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactError {
    /// Byte offset of the failure (section start for section-level
    /// failures; input length for post-parse structural failures).
    pub offset: usize,
    /// What went wrong.
    pub kind: ArtifactErrorKind,
}

/// Failure classes of [`read_artifact`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactErrorKind {
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// A version this reader does not understand.
    UnsupportedVersion { found: u32 },
    /// Input ended inside the named section.
    Truncated { section: &'static str },
    /// A section arrived out of order / with an unknown tag.
    WrongTag { section: &'static str, found: u32 },
    /// The named section's payload does not hash to its checksum.
    ChecksumMismatch {
        section: &'static str,
        stored: u64,
        computed: u64,
    },
    /// Payload length is not a multiple of the element size.
    Misaligned {
        section: &'static str,
        element_bytes: usize,
    },
    /// Bytes remain after the last section.
    TrailingBytes,
    /// Sections decoded but the artifact violates a structural
    /// invariant (see [`ModelArtifact::validate`]).
    Structural { reason: &'static str },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ArtifactErrorKind::BadMagic => {
                write!(f, "offset {}: not a lamo-serve artifact (bad magic)", self.offset)
            }
            ArtifactErrorKind::UnsupportedVersion { found } => write!(
                f,
                "offset {}: unsupported format version {found} (reader speaks {FORMAT_VERSION})",
                self.offset
            ),
            ArtifactErrorKind::Truncated { section } => {
                write!(f, "offset {}: input truncated in section `{section}`", self.offset)
            }
            ArtifactErrorKind::WrongTag { section, found } => write!(
                f,
                "offset {}: expected section `{section}`, found tag {found}",
                self.offset
            ),
            ArtifactErrorKind::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "offset {}: checksum mismatch in section `{section}` \
                 (stored {stored:#018x}, computed {computed:#018x})",
                self.offset
            ),
            ArtifactErrorKind::Misaligned {
                section,
                element_bytes,
            } => write!(
                f,
                "offset {}: section `{section}` length is not a multiple of {element_bytes}",
                self.offset
            ),
            ArtifactErrorKind::TrailingBytes => {
                write!(f, "offset {}: trailing bytes after the last section", self.offset)
            }
            ArtifactErrorKind::Structural { reason } => {
                write!(f, "offset {}: artifact fails validation: {reason}", self.offset)
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64 — tiny, dependency-free, and plenty for corruption
/// detection (this is an integrity check, not an authenticity one).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Section tags, in file order. Names appear in error messages.
const SEC_META: (u32, &str) = (1, "meta");
const SEC_CATEGORY_TERMS: (u32, &str) = (2, "category_terms");
const SEC_SIZES: (u32, &str) = (3, "motif_sizes");
const SEC_NAMESPACES: (u32, &str) = (4, "motif_namespaces");
const SEC_FREQUENCIES: (u32, &str) = (5, "motif_frequencies");
const SEC_HAS_UNIQUENESS: (u32, &str) = (6, "motif_has_uniqueness");
const SEC_UNIQUENESS: (u32, &str) = (7, "motif_uniqueness");
const SEC_EDGE_OFFSETS: (u32, &str) = (8, "edge_offsets");
const SEC_EDGES: (u32, &str) = (9, "edges");
const SEC_VERTEX_OFFSETS: (u32, &str) = (10, "vertex_offsets");
const SEC_LABEL_OFFSETS: (u32, &str) = (11, "label_offsets");
const SEC_LABEL_TERMS: (u32, &str) = (12, "label_terms");
const SEC_OCC_OFFSETS: (u32, &str) = (13, "occ_offsets");
const SEC_OCC_VERTEX_OFFSETS: (u32, &str) = (14, "occ_vertex_offsets");
const SEC_OCC_VERTICES: (u32, &str) = (15, "occ_vertices");
const SEC_LMS: (u32, &str) = (16, "lms");
const SEC_POSTING_OFFSETS: (u32, &str) = (17, "posting_offsets");
const SEC_POSTINGS: (u32, &str) = (18, "postings");
const SEC_COUNT_OFFSETS: (u32, &str) = (19, "count_offsets");
const SEC_COUNTS: (u32, &str) = (20, "counts");
const SEC_FUNCTION_OFFSETS: (u32, &str) = (21, "function_offsets");
const SEC_FUNCTIONS: (u32, &str) = (22, "functions");
const SEC_END: (u32, &str) = (23, "end");

fn push_section(out: &mut Vec<u8>, sec: (u32, &str), payload: &[u8]) {
    out.extend_from_slice(&sec.0.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
}

fn u32s(values: &[u32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn u64s(values: &[u64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn f64s(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Serialize an artifact to its canonical binary form.
pub fn write_artifact(artifact: &ModelArtifact) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());

    let mut meta = Vec::with_capacity(20);
    meta.extend_from_slice(&artifact.meta.protein_count.to_le_bytes());
    meta.extend_from_slice(&artifact.meta.network_edges.to_le_bytes());
    meta.extend_from_slice(&artifact.meta.n_categories.to_le_bytes());
    push_section(&mut out, SEC_META, &meta);
    push_section(&mut out, SEC_CATEGORY_TERMS, &u32s(&artifact.category_terms));

    let m = &artifact.motifs;
    push_section(&mut out, SEC_SIZES, &u32s(&m.sizes));
    push_section(&mut out, SEC_NAMESPACES, &m.namespaces);
    push_section(&mut out, SEC_FREQUENCIES, &u64s(&m.frequencies));
    push_section(&mut out, SEC_HAS_UNIQUENESS, &m.has_uniqueness);
    push_section(&mut out, SEC_UNIQUENESS, &f64s(&m.uniqueness));
    push_section(&mut out, SEC_EDGE_OFFSETS, &u32s(&m.edge_offsets));
    push_section(&mut out, SEC_EDGES, &u32s(&m.edges));
    push_section(&mut out, SEC_VERTEX_OFFSETS, &u32s(&m.vertex_offsets));
    push_section(&mut out, SEC_LABEL_OFFSETS, &u32s(&m.label_offsets));
    push_section(&mut out, SEC_LABEL_TERMS, &u32s(&m.label_terms));
    push_section(&mut out, SEC_OCC_OFFSETS, &u32s(&m.occ_offsets));
    push_section(&mut out, SEC_OCC_VERTEX_OFFSETS, &u32s(&m.occ_vertex_offsets));
    push_section(&mut out, SEC_OCC_VERTICES, &u32s(&m.occ_vertices));

    let x = &artifact.index;
    push_section(&mut out, SEC_LMS, &f64s(&x.lms));
    push_section(&mut out, SEC_POSTING_OFFSETS, &u32s(&x.posting_offsets));
    let posting_words: Vec<u32> = x
        .postings
        .iter()
        .flat_map(|p| [p.motif, p.occurrence, p.position, p.multiplicity])
        .collect();
    push_section(&mut out, SEC_POSTINGS, &u32s(&posting_words));
    push_section(&mut out, SEC_COUNT_OFFSETS, &u32s(&x.count_offsets));
    push_section(&mut out, SEC_COUNTS, &f64s(&x.counts));
    push_section(&mut out, SEC_FUNCTION_OFFSETS, &u32s(&x.function_offsets));
    push_section(&mut out, SEC_FUNCTIONS, &u32s(&x.functions));
    push_section(&mut out, SEC_END, &[]);
    out
}

/// Bounds-checked reader over the input bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], ArtifactError> {
        if self.bytes.len() - self.pos < n {
            return Err(ArtifactError {
                offset: self.pos,
                kind: ArtifactErrorKind::Truncated { section },
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, ArtifactError> {
        let b = self.take(4, section)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, ArtifactError> {
        let b = self.take(8, section)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read one full section: tag check, length bound, checksum verify.
    /// Returns the payload slice. The length is bounded by the
    /// remaining input *before* anything is sliced, so a hostile length
    /// can neither overflow nor trigger an oversized allocation.
    fn section(&mut self, sec: (u32, &'static str)) -> Result<&'a [u8], ArtifactError> {
        let start = self.pos;
        let (tag, name) = sec;
        let found = self.u32(name)?;
        if found != tag {
            return Err(ArtifactError {
                offset: start,
                kind: ArtifactErrorKind::WrongTag {
                    section: name,
                    found,
                },
            });
        }
        let len = self.u64(name)?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if len.saturating_add(8) > remaining {
            return Err(ArtifactError {
                offset: start,
                kind: ArtifactErrorKind::Truncated { section: name },
            });
        }
        let payload = self.take(len as usize, name)?;
        let stored = self.u64(name)?;
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(ArtifactError {
                offset: start,
                kind: ArtifactErrorKind::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                },
            });
        }
        Ok(payload)
    }
}

fn decode_u32s(payload: &[u8], sec: (u32, &'static str), offset: usize) -> Result<Vec<u32>, ArtifactError> {
    if !payload.len().is_multiple_of(4) {
        return Err(ArtifactError {
            offset,
            kind: ArtifactErrorKind::Misaligned {
                section: sec.1,
                element_bytes: 4,
            },
        });
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn decode_u64s(payload: &[u8], sec: (u32, &'static str), offset: usize) -> Result<Vec<u64>, ArtifactError> {
    if !payload.len().is_multiple_of(8) {
        return Err(ArtifactError {
            offset,
            kind: ArtifactErrorKind::Misaligned {
                section: sec.1,
                element_bytes: 8,
            },
        });
    }
    Ok(payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

fn decode_f64s(payload: &[u8], sec: (u32, &'static str), offset: usize) -> Result<Vec<f64>, ArtifactError> {
    Ok(decode_u64s(payload, sec, offset)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

/// Deserialize and fully validate an artifact. Total: any input yields
/// `Ok` or a typed error, never a panic.
pub fn read_artifact(bytes: &[u8]) -> Result<ModelArtifact, ArtifactError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let magic = cur.take(MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(ArtifactError {
            offset: 0,
            kind: ArtifactErrorKind::BadMagic,
        });
    }
    let version_at = cur.pos;
    let version = cur.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(ArtifactError {
            offset: version_at,
            kind: ArtifactErrorKind::UnsupportedVersion { found: version },
        });
    }

    let meta_at = cur.pos;
    let meta_payload = cur.section(SEC_META)?;
    if meta_payload.len() != 20 {
        return Err(ArtifactError {
            offset: meta_at,
            kind: ArtifactErrorKind::Misaligned {
                section: SEC_META.1,
                element_bytes: 20,
            },
        });
    }
    let meta = ArtifactMeta {
        protein_count: u64::from_le_bytes([
            meta_payload[0],
            meta_payload[1],
            meta_payload[2],
            meta_payload[3],
            meta_payload[4],
            meta_payload[5],
            meta_payload[6],
            meta_payload[7],
        ]),
        network_edges: u64::from_le_bytes([
            meta_payload[8],
            meta_payload[9],
            meta_payload[10],
            meta_payload[11],
            meta_payload[12],
            meta_payload[13],
            meta_payload[14],
            meta_payload[15],
        ]),
        n_categories: u32::from_le_bytes([
            meta_payload[16],
            meta_payload[17],
            meta_payload[18],
            meta_payload[19],
        ]),
    };

    // The repeated shape below is deliberate: one line per section, in
    // file order, each bound-checked and checksummed independently so
    // the error names exactly the column that went bad.
    macro_rules! col {
        ($sec:expr, $decoder:ident) => {{
            let at = cur.pos;
            let payload = cur.section($sec)?;
            $decoder(payload, $sec, at)?
        }};
    }

    let category_terms = col!(SEC_CATEGORY_TERMS, decode_u32s);
    let sizes = col!(SEC_SIZES, decode_u32s);
    let namespaces = cur.section(SEC_NAMESPACES)?.to_vec();
    let frequencies = col!(SEC_FREQUENCIES, decode_u64s);
    let has_uniqueness = cur.section(SEC_HAS_UNIQUENESS)?.to_vec();
    let uniqueness = col!(SEC_UNIQUENESS, decode_f64s);
    let edge_offsets = col!(SEC_EDGE_OFFSETS, decode_u32s);
    let edges = col!(SEC_EDGES, decode_u32s);
    let vertex_offsets = col!(SEC_VERTEX_OFFSETS, decode_u32s);
    let label_offsets = col!(SEC_LABEL_OFFSETS, decode_u32s);
    let label_terms = col!(SEC_LABEL_TERMS, decode_u32s);
    let occ_offsets = col!(SEC_OCC_OFFSETS, decode_u32s);
    let occ_vertex_offsets = col!(SEC_OCC_VERTEX_OFFSETS, decode_u32s);
    let occ_vertices = col!(SEC_OCC_VERTICES, decode_u32s);
    let lms = col!(SEC_LMS, decode_f64s);
    let posting_offsets = col!(SEC_POSTING_OFFSETS, decode_u32s);
    let postings_at = cur.pos;
    let posting_words = col!(SEC_POSTINGS, decode_u32s);
    if posting_words.len() % 4 != 0 {
        return Err(ArtifactError {
            offset: postings_at,
            kind: ArtifactErrorKind::Misaligned {
                section: SEC_POSTINGS.1,
                element_bytes: 16,
            },
        });
    }
    let postings: Vec<Posting> = posting_words
        .chunks_exact(4)
        .map(|w| Posting {
            motif: w[0],
            occurrence: w[1],
            position: w[2],
            multiplicity: w[3],
        })
        .collect();
    let count_offsets = col!(SEC_COUNT_OFFSETS, decode_u32s);
    let counts = col!(SEC_COUNTS, decode_f64s);
    let function_offsets = col!(SEC_FUNCTION_OFFSETS, decode_u32s);
    let functions = col!(SEC_FUNCTIONS, decode_u32s);
    let end_at = cur.pos;
    let end = cur.section(SEC_END)?;
    if !end.is_empty() {
        return Err(ArtifactError {
            offset: end_at,
            kind: ArtifactErrorKind::Misaligned {
                section: SEC_END.1,
                element_bytes: 0,
            },
        });
    }
    if cur.pos != bytes.len() {
        return Err(ArtifactError {
            offset: cur.pos,
            kind: ArtifactErrorKind::TrailingBytes,
        });
    }

    let artifact = ModelArtifact {
        meta,
        category_terms,
        motifs: FlatMotifs {
            sizes,
            namespaces,
            frequencies,
            has_uniqueness,
            uniqueness,
            edge_offsets,
            edges,
            vertex_offsets,
            label_offsets,
            label_terms,
            occ_offsets,
            occ_vertex_offsets,
            occ_vertices,
        },
        index: PostingIndex {
            n_categories: meta.n_categories,
            lms,
            posting_offsets,
            postings,
            count_offsets,
            counts,
            function_offsets,
            functions,
        },
    };
    artifact.validate().map_err(|reason| ArtifactError {
        offset: bytes.len(),
        kind: ArtifactErrorKind::Structural { reason },
    })?;
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelArtifact {
        use function_prediction::PredictionContext;
        use go_ontology::{Namespace, TermId};
        use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
        use motif_finder::Occurrence;
        use ppi_graph::{Graph, VertexId};

        let motifs = vec![LabeledMotif {
            pattern: Graph::from_edges(3, &[(0, 1), (1, 2)]),
            namespace: Namespace::MolecularFunction,
            scheme: LabelingScheme::new(vec![
                VertexLabel::new(vec![TermId(3)]),
                VertexLabel::unknown(),
                VertexLabel::new(vec![TermId(5), TermId(9)]),
            ]),
            occurrences: vec![
                Occurrence::new(vec![VertexId(0), VertexId(1), VertexId(2)]),
                Occurrence::new(vec![VertexId(3), VertexId(1), VertexId(4)]),
            ],
            motif_frequency: 2,
            uniqueness: Some(0.5),
        }];
        let network = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 1), (1, 4)]);
        let functions = vec![vec![0], vec![1], vec![0, 1], vec![], vec![1]];
        let terms = vec![TermId(100), TermId(200)];
        ModelArtifact::build(
            &motifs,
            &PredictionContext {
                network: &network,
                functions: &functions,
                n_categories: 2,
                category_terms: &terms,
            },
        )
    }

    #[test]
    fn roundtrip_bytes_and_value() {
        let artifact = sample();
        let bytes = write_artifact(&artifact);
        let back = read_artifact(&bytes).expect("canonical bytes must decode");
        assert_eq!(back, artifact);
        assert_eq!(write_artifact(&back), bytes, "re-serialization is byte-identical");
    }

    #[test]
    fn empty_artifact_roundtrips() {
        let empty = ModelArtifact::default();
        // An all-default artifact fails validation (offset tables must
        // be 0-anchored), so build the smallest valid one instead.
        assert!(empty.validate().is_err());
        use function_prediction::PredictionContext;
        use ppi_graph::Graph;
        let network = Graph::empty(0);
        let artifact = ModelArtifact::build(
            &[],
            &PredictionContext {
                network: &network,
                functions: &[],
                n_categories: 0,
                category_terms: &[],
            },
        );
        let bytes = write_artifact(&artifact);
        assert_eq!(read_artifact(&bytes).expect("minimal artifact must decode"), artifact);
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = write_artifact(&sample());
        bytes[0] ^= 0xff;
        assert_eq!(
            read_artifact(&bytes).map_err(|e| e.kind),
            Err(ArtifactErrorKind::BadMagic)
        );
        let mut bytes = write_artifact(&sample());
        bytes[8] = 99;
        assert_eq!(
            read_artifact(&bytes).map_err(|e| e.kind),
            Err(ArtifactErrorKind::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn truncation_names_the_section() {
        let bytes = write_artifact(&sample());
        let cut = &bytes[..bytes.len() - 9];
        let err = read_artifact(cut).expect_err("truncated input must fail");
        assert!(
            matches!(err.kind, ArtifactErrorKind::Truncated { .. }),
            "got {err:?}"
        );
        assert!(err.offset <= cut.len());
    }

    #[test]
    fn bit_flip_fails_its_sections_checksum() {
        let artifact = sample();
        let bytes = write_artifact(&artifact);
        // Flip one payload byte inside the category_terms section: its
        // header starts right after meta (magic 8 + version 4 + meta
        // section 4+8+20+8 = 52).
        let mut corrupted = bytes.clone();
        corrupted[52 + 12] ^= 0x01;
        let err = read_artifact(&corrupted).expect_err("bit flip must fail");
        match err.kind {
            ArtifactErrorKind::ChecksumMismatch {
                section,
                stored,
                computed,
            } => {
                assert_eq!(section, "category_terms");
                assert_ne!(stored, computed);
                assert_eq!(err.offset, 52);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = write_artifact(&sample());
        bytes.push(0);
        let err = read_artifact(&bytes).expect_err("trailing byte must fail");
        assert!(matches!(
            err.kind,
            ArtifactErrorKind::TrailingBytes | ArtifactErrorKind::Truncated { .. }
        ));
    }

    #[test]
    fn error_display_mentions_offset_and_section() {
        let err = ArtifactError {
            offset: 52,
            kind: ArtifactErrorKind::ChecksumMismatch {
                section: "category_terms",
                stored: 1,
                computed: 2,
            },
        };
        let text = err.to_string();
        assert!(text.contains("52") && text.contains("category_terms"));
    }
}
