//! Random graph models and degree-preserving randomization.
//!
//! Motif *uniqueness* (Task 2 of the paper) compares subgraph frequencies
//! in the real network against an ensemble of randomized networks with
//! the **same degree sequence** [Milo et al. 2002]. The standard way to
//! sample that ensemble is repeated double-edge swaps
//! (`{a,b},{c,d} → {a,d},{c,b}`), implemented here, alongside the
//! Erdős–Rényi and Barabási–Albert models used by the synthetic-data
//! generators.

use crate::graph::{Edge, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly among all
/// vertex pairs. Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "requested {m} edges but only {max} possible");
    let mut g = Graph::empty(n);
    while g.edge_count() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        g.add_edge(VertexId(u), VertexId(v));
    }
    g
}

/// Barabási–Albert preferential attachment: start from a small clique of
/// `m0 = m_per_step` vertices, then attach each new vertex to
/// `m_per_step` existing vertices chosen proportionally to degree.
/// Produces the heavy-tailed degree distribution characteristic of PPI
/// networks.
pub fn barabasi_albert<R: Rng>(n: usize, m_per_step: usize, rng: &mut R) -> Graph {
    assert!(m_per_step >= 1, "m_per_step must be at least 1");
    assert!(n > m_per_step, "need more vertices than edges per step");
    let mut g = Graph::empty(n);
    // Repeated-endpoint list: sampling an index uniformly is sampling a
    // vertex proportionally to its degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_per_step);

    // Seed clique on the first m0 + 1 vertices so every seed has degree ≥ m0.
    let m0 = m_per_step;
    for i in 0..=m0 as u32 {
        for j in 0..i {
            g.add_edge(VertexId(i), VertexId(j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    for v in (m0 + 1)..n {
        let v = v as u32;
        // BTreeSet, not HashSet: `chosen` is iterated below, and its order
        // flows into `endpoints` and the edge list — HashSet order would
        // make the generated graph differ across runs despite the seed.
        let mut chosen = std::collections::BTreeSet::new();
        // Rejection-sample m distinct degree-proportional targets.
        while chosen.len() < m_per_step {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for t in chosen {
            g.add_edge(VertexId(v), VertexId(t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Degree-preserving randomization by double-edge swaps.
///
/// Performs `swaps_per_edge × m` attempted swaps. A swap
/// `{a,b},{c,d} → {a,d},{c,b}` is applied only when it creates neither a
/// self-loop nor a parallel edge, which preserves every vertex degree
/// exactly. `swaps_per_edge = 10` is a conventional mixing budget.
pub fn degree_preserving_shuffle<R: Rng>(g: &Graph, swaps_per_edge: usize, rng: &mut R) -> Graph {
    let mut out = g.clone();
    let mut edges: Vec<Edge> = out.edges().collect();
    if edges.len() < 2 {
        return out;
    }
    let attempts = swaps_per_edge * edges.len();
    for _ in 0..attempts {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let Edge(a, b) = edges[i];
        let Edge(c, d) = edges[j];
        // Randomly orient the second edge to avoid bias.
        let (c, d) = if rng.gen_bool(0.5) { (c, d) } else { (d, c) };
        // New edges would be {a,d} and {c,b}.
        if a == d || c == b {
            continue;
        }
        if out.has_edge(a, d) || out.has_edge(c, b) {
            continue;
        }
        out.remove_edge(a, b);
        out.remove_edge(c, d);
        out.add_edge(a, d);
        out.add_edge(c, b);
        edges[i] = Edge::new(a, d);
        edges[j] = Edge::new(c, b);
    }
    out
}

/// Degree-preserving randomization for digraphs: arc swaps
/// `a→b, c→d ⇒ a→d, c→b` preserve every vertex's in- and out-degree
/// exactly [Milo et al. 2002]. Used by directed motif uniqueness
/// testing.
pub fn directed_degree_preserving_shuffle<R: Rng>(
    g: &crate::digraph::DiGraph,
    swaps_per_arc: usize,
    rng: &mut R,
) -> crate::digraph::DiGraph {
    let mut out = g.clone();
    let mut arcs: Vec<(VertexId, VertexId)> = out.arcs().collect();
    if arcs.len() < 2 {
        return out;
    }
    let attempts = swaps_per_arc * arcs.len();
    for _ in 0..attempts {
        let i = rng.gen_range(0..arcs.len());
        let j = rng.gen_range(0..arcs.len());
        if i == j {
            continue;
        }
        let (a, b) = arcs[i];
        let (c, d) = arcs[j];
        // New arcs a→d and c→b: no self-loops, no duplicates.
        if a == d || c == b {
            continue;
        }
        if out.has_arc(a, d) || out.has_arc(c, b) {
            continue;
        }
        out.remove_arc(a, b);
        out.remove_arc(c, d);
        out.add_arc(a, d);
        out.add_arc(c, b);
        arcs[i] = (a, d);
        arcs[j] = (c, b);
    }
    out
}

/// Uniformly sample `k` distinct vertices.
pub fn sample_vertices<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<VertexId> {
    let mut all: Vec<VertexId> = g.vertices().collect();
    all.shuffle(rng);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_has_requested_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(50, 100, &mut rng);
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn gnm_rejects_impossible_edge_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        erdos_renyi_gnm(3, 4, &mut rng);
    }

    #[test]
    fn ba_graph_is_connected_and_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = barabasi_albert(500, 2, &mut rng);
        assert_eq!(g.vertex_count(), 500);
        assert!(crate::algo::is_connected(&g));
        let ds = g.degree_sequence();
        // Hubs exist: max degree far above the mean.
        let mean = 2.0 * g.edge_count() as f64 / 500.0;
        assert!(ds[0] as f64 > 3.0 * mean, "max {} mean {}", ds[0], mean);
    }

    #[test]
    fn shuffle_preserves_degree_sequence_exactly() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = barabasi_albert(200, 3, &mut rng);
        let before: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let shuffled = degree_preserving_shuffle(&g, 10, &mut rng);
        let after: Vec<usize> = shuffled.vertices().map(|v| shuffled.degree(v)).collect();
        assert_eq!(before, after, "per-vertex degrees must be preserved");
        assert_eq!(g.edge_count(), shuffled.edge_count());
    }

    #[test]
    fn shuffle_actually_changes_edges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = erdos_renyi_gnm(100, 300, &mut rng);
        let shuffled = degree_preserving_shuffle(&g, 10, &mut rng);
        let before: std::collections::HashSet<_> = g.edges().collect();
        let moved = shuffled.edges().filter(|e| !before.contains(e)).count();
        assert!(moved > 100, "only {moved} edges moved");
    }

    #[test]
    fn shuffle_of_tiny_graph_is_identity() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = degree_preserving_shuffle(&g, 10, &mut rng);
        assert_eq!(s.edge_count(), 1);
        assert!(s.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn directed_shuffle_preserves_in_and_out_degrees() {
        use crate::digraph::DiGraph;
        let mut rng = SmallRng::seed_from_u64(8);
        // A directed network: chain + fan-outs.
        let mut arcs = Vec::new();
        for i in 0..50u32 {
            arcs.push((i, (i + 1) % 50));
            arcs.push((i, (i + 7) % 50));
            if i % 3 == 0 {
                arcs.push(((i + 2) % 50, i));
            }
        }
        let g = DiGraph::from_arcs(50, &arcs);
        let s = directed_degree_preserving_shuffle(&g, 10, &mut rng);
        assert_eq!(g.arc_count(), s.arc_count());
        for v in g.vertices() {
            assert_eq!(g.in_degree(v), s.in_degree(v), "in-degree of {v}");
            assert_eq!(g.out_degree(v), s.out_degree(v), "out-degree of {v}");
        }
        // And the arcs actually moved.
        let before: std::collections::HashSet<_> = g.arcs().collect();
        let moved = s.arcs().filter(|a| !before.contains(a)).count();
        assert!(moved > 20, "only {moved} arcs moved");
    }

    #[test]
    fn sample_vertices_distinct() {
        let g = Graph::empty(20);
        let mut rng = SmallRng::seed_from_u64(9);
        let s = sample_vertices(&g, 5, &mut rng);
        assert_eq!(s.len(), 5);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
