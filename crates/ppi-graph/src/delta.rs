//! Edge deltas — the unit of incremental interactome revision.
//!
//! Real PPI datasets arrive as revision streams: a BIND/MIPS release
//! adds and retracts a handful of interactions at a time. An
//! [`EdgeDelta`] captures one such revision against a [`Graph`];
//! [`EdgeDelta::normalize`] validates it (typed errors carry the
//! offending pair) and produces the canonical [`NormalizedDelta`] the
//! incremental census consumes.
//!
//! Semantics: additions are applied before removals, so an edge listed
//! in *both* lists is an add-then-remove no-op and cancels out during
//! normalization. Within a single list, duplicates are rejected — a
//! revision that names the same pair twice is malformed, not idempotent.

use crate::graph::{Edge, Graph, VertexId};
use std::collections::HashSet;
use std::fmt;

/// One revision: edges to add and edges to remove, in either endpoint
/// order (normalization canonicalizes to smaller-endpoint-first).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges to insert (must be absent from the graph).
    pub added: Vec<Edge>,
    /// Edges to retract (must be present in the graph).
    pub removed: Vec<Edge>,
}

impl EdgeDelta {
    /// A delta from raw endpoint pairs.
    pub fn new(added: &[(u32, u32)], removed: &[(u32, u32)]) -> Self {
        let conv = |pairs: &[(u32, u32)]| {
            pairs
                .iter()
                .map(|&(a, b)| Edge(VertexId(a), VertexId(b)))
                .collect()
        };
        EdgeDelta {
            added: conv(added),
            removed: conv(removed),
        }
    }

    /// Validate against `g` and canonicalize. See [`DeltaError`] for
    /// the rejection cases; add-then-remove pairs cancel to a no-op.
    pub fn normalize(&self, g: &Graph) -> Result<NormalizedDelta, DeltaError> {
        let n = g.vertex_count();
        let canonize = |list: &[Edge]| -> Result<Vec<(u32, u32)>, DeltaError> {
            let mut seen = HashSet::with_capacity(list.len());
            let mut out = Vec::with_capacity(list.len());
            for e in list {
                let (a, b) = (e.0.min(e.1).0, e.0.max(e.1).0);
                if a == b {
                    return Err(DeltaError::SelfLoop { edge: (a, b) });
                }
                if b as usize >= n {
                    return Err(DeltaError::OutOfRange {
                        edge: (a, b),
                        vertex_count: n,
                    });
                }
                if !seen.insert((a, b)) {
                    return Err(DeltaError::DuplicateEdge { edge: (a, b) });
                }
                out.push((a, b));
            }
            Ok(out)
        };
        let added = canonize(&self.added)?;
        let removed = canonize(&self.removed)?;
        // Add-then-remove of the same edge within one delta is a no-op:
        // cancel the intersection before checking presence.
        let add_set: HashSet<(u32, u32)> = added.iter().copied().collect();
        let rem_set: HashSet<(u32, u32)> = removed.iter().copied().collect();
        let mut added: Vec<(u32, u32)> = added
            .into_iter()
            .filter(|e| !rem_set.contains(e))
            .collect();
        let mut removed: Vec<(u32, u32)> = removed
            .into_iter()
            .filter(|e| !add_set.contains(e))
            .collect();
        for &(a, b) in &added {
            if g.has_edge(VertexId(a), VertexId(b)) {
                return Err(DeltaError::AlreadyPresent { edge: (a, b) });
            }
        }
        for &(a, b) in &removed {
            if !g.has_edge(VertexId(a), VertexId(b)) {
                return Err(DeltaError::NotPresent { edge: (a, b) });
            }
        }
        added.sort_unstable();
        removed.sort_unstable();
        Ok(NormalizedDelta { added, removed })
    }
}

/// A validated, canonicalized delta: both lists hold `(min, max)`
/// pairs, sorted, deduplicated, with add-then-remove pairs cancelled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NormalizedDelta {
    /// Edges to insert, all absent from the validated graph.
    pub added: Vec<(u32, u32)>,
    /// Edges to retract, all present in the validated graph.
    pub removed: Vec<(u32, u32)>,
}

impl NormalizedDelta {
    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Every endpoint incident to a changed edge (deduplicated,
    /// ascending) — the seed set of the dirty region.
    pub fn touched_vertices(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self
            .added
            .iter()
            .chain(&self.removed)
            .flat_map(|&(a, b)| [a, b])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Apply to `g` (adds then removes). Panics if the delta was not
    /// normalized against this graph state.
    pub fn apply_to(&self, g: &mut Graph) {
        for &(a, b) in &self.added {
            assert!(g.add_edge(VertexId(a), VertexId(b)), "stale delta: add");
        }
        for &(a, b) in &self.removed {
            assert!(g.remove_edge(VertexId(a), VertexId(b)), "stale delta: remove");
        }
    }

    /// Undo [`NormalizedDelta::apply_to`].
    pub fn revert(&self, g: &mut Graph) {
        for &(a, b) in &self.removed {
            assert!(g.add_edge(VertexId(a), VertexId(b)), "stale revert: add");
        }
        for &(a, b) in &self.added {
            assert!(g.remove_edge(VertexId(a), VertexId(b)), "stale revert: remove");
        }
    }
}

/// Why a delta was rejected. Every variant carries the offending pair
/// in canonical `(min, max)` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An edge with equal endpoints.
    SelfLoop {
        /// The offending pair.
        edge: (u32, u32),
    },
    /// An endpoint at or beyond the graph's vertex count.
    OutOfRange {
        /// The offending pair.
        edge: (u32, u32),
        /// The graph's vertex count.
        vertex_count: usize,
    },
    /// The same edge listed twice in one list.
    DuplicateEdge {
        /// The offending pair.
        edge: (u32, u32),
    },
    /// An added edge that is already in the graph.
    AlreadyPresent {
        /// The offending pair.
        edge: (u32, u32),
    },
    /// A removed edge that is not in the graph.
    NotPresent {
        /// The offending pair.
        edge: (u32, u32),
    },
    /// The run context cancelled mid-apply; the census state was left
    /// unchanged (patches reverted).
    Cancelled,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::SelfLoop { edge } => {
                write!(f, "delta edge ({}, {}) is a self-loop", edge.0, edge.1)
            }
            DeltaError::OutOfRange { edge, vertex_count } => write!(
                f,
                "delta edge ({}, {}) exceeds vertex count {}",
                edge.0, edge.1, vertex_count
            ),
            DeltaError::DuplicateEdge { edge } => write!(
                f,
                "delta lists edge ({}, {}) more than once",
                edge.0, edge.1
            ),
            DeltaError::AlreadyPresent { edge } => write!(
                f,
                "added edge ({}, {}) is already in the graph",
                edge.0, edge.1
            ),
            DeltaError::NotPresent { edge } => write!(
                f,
                "removed edge ({}, {}) is not in the graph",
                edge.0, edge.1
            ),
            DeltaError::Cancelled => write!(f, "delta application was cancelled"),
        }
    }
}

impl std::error::Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus() -> Graph {
        // 0-1-2 triangle with a pendant 3.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn normalize_canonicalizes_and_sorts() {
        let g = triangle_plus();
        let d = EdgeDelta::new(&[(4, 3), (1, 3)], &[(2, 0)]);
        let n = d.normalize(&g).unwrap();
        assert_eq!(n.added, vec![(1, 3), (3, 4)]);
        assert_eq!(n.removed, vec![(0, 2)]);
        assert_eq!(n.touched_vertices(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn self_loop_rejected_with_pair() {
        let g = triangle_plus();
        let err = EdgeDelta::new(&[(3, 3)], &[]).normalize(&g).unwrap_err();
        assert_eq!(err, DeltaError::SelfLoop { edge: (3, 3) });
    }

    #[test]
    fn out_of_range_rejected_with_pair() {
        let g = triangle_plus();
        let err = EdgeDelta::new(&[], &[(1, 9)]).normalize(&g).unwrap_err();
        assert_eq!(
            err,
            DeltaError::OutOfRange {
                edge: (1, 9),
                vertex_count: 5
            }
        );
    }

    #[test]
    fn duplicate_within_list_rejected_even_reordered() {
        let g = triangle_plus();
        let err = EdgeDelta::new(&[(1, 3), (3, 1)], &[]).normalize(&g).unwrap_err();
        assert_eq!(err, DeltaError::DuplicateEdge { edge: (1, 3) });
    }

    #[test]
    fn presence_checks_carry_pair() {
        let g = triangle_plus();
        assert_eq!(
            EdgeDelta::new(&[(0, 1)], &[]).normalize(&g).unwrap_err(),
            DeltaError::AlreadyPresent { edge: (0, 1) }
        );
        assert_eq!(
            EdgeDelta::new(&[], &[(1, 3)]).normalize(&g).unwrap_err(),
            DeltaError::NotPresent { edge: (1, 3) }
        );
    }

    #[test]
    fn add_then_remove_cancels_to_noop() {
        let g = triangle_plus();
        let n = EdgeDelta::new(&[(1, 3)], &[(1, 3)]).normalize(&g).unwrap();
        assert!(n.is_empty());
        // The cancelled edge is exempt from presence checks in both
        // directions: an existing edge in both lists also cancels.
        let n = EdgeDelta::new(&[(0, 1)], &[(0, 1)]).normalize(&g).unwrap();
        assert!(n.is_empty());
    }

    #[test]
    fn apply_and_revert_round_trip() {
        let mut g = triangle_plus();
        let before = g.clone();
        let n = EdgeDelta::new(&[(1, 3), (3, 4)], &[(0, 2)])
            .normalize(&g)
            .unwrap();
        n.apply_to(&mut g);
        assert!(g.has_edge(VertexId(1), VertexId(3)));
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
        n.revert(&mut g);
        assert_eq!(g, before);
    }
}
