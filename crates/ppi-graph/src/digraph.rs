//! Directed graphs — the substrate for the paper's stated future work
//! ("mining labeled and directed network motifs, as many real-world
//! networks can also be modelled with directed graphs", Section 6).
//! Gene regulatory networks, the paper's second motivating network
//! class, are directed.
//!
//! A [`DiGraph`] is a simple directed graph (no self-loops, at most one
//! arc per ordered pair; antiparallel arc pairs allowed — they model
//! mutual regulation). Directed motif mining enumerates *weakly*
//! connected vertex sets over the underlying skeleton and classifies
//! them by directed isomorphism.

use crate::graph::{Graph, VertexId};
use std::fmt;

/// A simple directed graph with sorted out- and in-adjacency lists.
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    arc_count: usize,
}

impl DiGraph {
    /// Empty digraph with `n` vertices.
    pub fn empty(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            arc_count: 0,
        }
    }

    /// Build from an arc list `(source, target)`. Self-loops and
    /// duplicate arcs are dropped.
    pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Self {
        let mut g = DiGraph::empty(n);
        for &(s, t) in arcs {
            g.add_arc(VertexId(s), VertexId(t));
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.out_adj.len() as u32).map(VertexId)
    }

    /// Sorted out-neighbors (successors) of `v`.
    pub fn successors(&self, v: VertexId) -> &[u32] {
        &self.out_adj[v.index()]
    }

    /// Sorted in-neighbors (predecessors) of `v`.
    pub fn predecessors(&self, v: VertexId) -> &[u32] {
        &self.in_adj[v.index()]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Whether the arc `s → t` exists.
    pub fn has_arc(&self, s: VertexId, t: VertexId) -> bool {
        self.out_adj[s.index()].binary_search(&t.0).is_ok()
    }

    /// Insert arc `s → t`; returns whether it was new. Self-loops are
    /// rejected.
    pub fn add_arc(&mut self, s: VertexId, t: VertexId) -> bool {
        if s == t {
            return false;
        }
        match self.out_adj[s.index()].binary_search(&t.0) {
            Ok(_) => false,
            Err(pos) => {
                self.out_adj[s.index()].insert(pos, t.0);
                let ipos = self.in_adj[t.index()]
                    .binary_search(&s.0)
                    .expect_err("in/out adjacency out of sync");
                self.in_adj[t.index()].insert(ipos, s.0);
                self.arc_count += 1;
                true
            }
        }
    }

    /// Remove arc `s → t`; returns whether it existed.
    pub fn remove_arc(&mut self, s: VertexId, t: VertexId) -> bool {
        match self.out_adj[s.index()].binary_search(&t.0) {
            Err(_) => false,
            Ok(pos) => {
                self.out_adj[s.index()].remove(pos);
                let ipos = self.in_adj[t.index()]
                    .binary_search(&s.0)
                    .expect("in/out adjacency out of sync");
                self.in_adj[t.index()].remove(ipos);
                self.arc_count -= 1;
                true
            }
        }
    }

    /// All arcs `(source, target)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out_adj.iter().enumerate().flat_map(|(s, outs)| {
            outs.iter()
                .map(move |&t| (VertexId(s as u32), VertexId(t)))
        })
    }

    /// The underlying undirected skeleton (arc direction erased,
    /// antiparallel pairs collapsed). Weak connectivity of a directed
    /// motif is connectivity of its skeleton.
    pub fn skeleton(&self) -> Graph {
        let mut g = Graph::empty(self.vertex_count());
        for (s, t) in self.arcs() {
            g.add_edge(s, t);
        }
        g
    }

    /// The induced sub-digraph on `verts` (relabeled to `0..k` in the
    /// given order) plus the vertex mapping.
    pub fn induced_subdigraph(&self, verts: &[VertexId]) -> (DiGraph, Vec<VertexId>) {
        let mut index = std::collections::HashMap::with_capacity(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            let prev = index.insert(v.0, i as u32);
            assert!(prev.is_none(), "duplicate vertex");
        }
        let mut sub = DiGraph::empty(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for &t in self.successors(v) {
                if let Some(&j) = index.get(&t) {
                    sub.add_arc(VertexId(i as u32), VertexId(j));
                }
            }
        }
        (sub, verts.to_vec())
    }

    /// Sorted pair of degree signatures `(in, out)` per vertex — a cheap
    /// directed-isomorphism invariant.
    pub fn degree_signature(&self) -> Vec<(u16, u16)> {
        let mut sig: Vec<(u16, u16)> = self
            .vertices()
            .map(|v| (self.in_degree(v) as u16, self.out_degree(v) as u16))
            .collect();
        sig.sort_unstable();
        sig
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiGraph(n={}, m={}, arcs=[",
            self.vertex_count(),
            self.arc_count()
        )?;
        for (i, (s, t)) in self.arcs().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}->{t}")?;
        }
        write!(f, "])")
    }
}

/// Whether `g1` and `g2` are isomorphic as directed graphs.
pub fn are_digraphs_isomorphic(g1: &DiGraph, g2: &DiGraph) -> bool {
    if g1.vertex_count() != g2.vertex_count() || g1.arc_count() != g2.arc_count() {
        return false;
    }
    if g1.degree_signature() != g2.degree_signature() {
        return false;
    }
    find_digraph_isomorphism(g1, g2).is_some()
}

/// Find one directed isomorphism `pattern → target` between equal-sized
/// digraphs, if any. Backtracking search with (in, out)-degree and
/// incremental arc-consistency pruning.
pub fn find_digraph_isomorphism(pattern: &DiGraph, target: &DiGraph) -> Option<Vec<VertexId>> {
    let n = pattern.vertex_count();
    if n != target.vertex_count() || pattern.arc_count() != target.arc_count() {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    // Order pattern vertices by weak connectivity to previous choices.
    let skeleton = pattern.skeleton();
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    for _ in 0..n {
        let next = (0..n as u32)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let vid = VertexId(v);
                let connected = skeleton
                    .neighbors(vid)
                    .iter()
                    .filter(|&&u| placed[u as usize])
                    .count();
                (connected, skeleton.degree(vid))
            })
            .expect("loop runs only while unplaced vertices remain");
        placed[next as usize] = true;
        order.push(VertexId(next));
    }

    let mut mapping = vec![u32::MAX; n];
    let mut used = vec![false; n];
    let mut found: Option<Vec<VertexId>> = None;
    enumerate_search(
        pattern,
        target,
        &order,
        0,
        &mut mapping,
        &mut used,
        None,
        &mut |m| {
            found = Some(m.iter().map(|&t| VertexId(t)).collect());
            false
        },
    );
    found
}

/// Enumerate directed isomorphisms `pattern → target` (equal sizes),
/// optionally pinning `pin.0 → pin.1`. Return `false` from `visit` to
/// stop early.
pub fn enumerate_digraph_isomorphisms(
    pattern: &DiGraph,
    target: &DiGraph,
    pin: Option<(VertexId, VertexId)>,
    visit: &mut dyn FnMut(&[u32]) -> bool,
) {
    let n = pattern.vertex_count();
    if n != target.vertex_count() || pattern.arc_count() != target.arc_count() {
        return;
    }
    if n == 0 {
        visit(&[]);
        return;
    }
    let skeleton = pattern.skeleton();
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    if let Some((pp, _)) = pin {
        placed[pp.index()] = true;
        order.push(pp);
    }
    while order.len() < n {
        let next = (0..n as u32)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let vid = VertexId(v);
                let connected = skeleton
                    .neighbors(vid)
                    .iter()
                    .filter(|&&u| placed[u as usize])
                    .count();
                (connected, skeleton.degree(vid))
            })
            .expect("loop runs only while unplaced vertices remain");
        placed[next as usize] = true;
        order.push(VertexId(next));
    }
    let mut mapping = vec![u32::MAX; n];
    let mut used = vec![false; n];
    enumerate_search(pattern, target, &order, 0, &mut mapping, &mut used, pin, visit);
}

#[allow(clippy::too_many_arguments)]
fn enumerate_search(
    pattern: &DiGraph,
    target: &DiGraph,
    order: &[VertexId],
    depth: usize,
    mapping: &mut Vec<u32>,
    used: &mut Vec<bool>,
    pin: Option<(VertexId, VertexId)>,
    visit: &mut dyn FnMut(&[u32]) -> bool,
) -> bool {
    if depth == order.len() {
        return visit(mapping);
    }
    let p = order[depth];
    let candidates: Vec<u32> = match pin {
        Some((pp, pt)) if pp == p => vec![pt.0],
        _ => (0..target.vertex_count() as u32).collect(),
    };
    for t in candidates {
        if used[t as usize] {
            continue;
        }
        let tv = VertexId(t);
        if target.in_degree(tv) != pattern.in_degree(p)
            || target.out_degree(tv) != pattern.out_degree(p)
        {
            continue;
        }
        // Directed induced consistency with all mapped vertices.
        let ok = (0..mapping.len()).all(|q| {
            let tq = mapping[q];
            if tq == u32::MAX {
                return true;
            }
            let qv = VertexId(q as u32);
            pattern.has_arc(p, qv) == target.has_arc(tv, VertexId(tq))
                && pattern.has_arc(qv, p) == target.has_arc(VertexId(tq), tv)
        });
        if !ok {
            continue;
        }
        mapping[p.index()] = t;
        used[t as usize] = true;
        let keep_going =
            enumerate_search(pattern, target, order, depth + 1, mapping, used, pin, visit);
        mapping[p.index()] = u32::MAX;
        used[t as usize] = false;
        if !keep_going {
            return false;
        }
    }
    true
}

/// Automorphism orbits of a digraph — the symmetric vertex sets for
/// *directed* labeled motifs. Directed symmetry is finer than skeleton
/// symmetry: the feed-forward loop's skeleton is a triangle (one orbit),
/// but its regulator, intermediate and target roles are all distinct.
pub fn directed_automorphism_orbits(g: &DiGraph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for v in 1..n {
        for r in 0..v {
            if find(&mut parent, r) != r {
                continue; // test only against representatives
            }
            if find(&mut parent, v) == find(&mut parent, r) {
                break;
            }
            if g.in_degree(VertexId(v as u32)) != g.in_degree(VertexId(r as u32))
                || g.out_degree(VertexId(v as u32)) != g.out_degree(VertexId(r as u32))
            {
                continue;
            }
            let mut found = false;
            enumerate_digraph_isomorphisms(
                g,
                g,
                Some((VertexId(v as u32), VertexId(r as u32))),
                &mut |m| {
                    // Fold the whole automorphism into the orbits.
                    for (u, &mu) in m.iter().enumerate() {
                        let (a, b) = (find(&mut parent, u), find(&mut parent, mu as usize));
                        if a != b {
                            parent[a] = b;
                        }
                    }
                    found = true;
                    false
                },
            );
            if found {
                break;
            }
        }
    }
    let mut orbit_of: std::collections::HashMap<usize, Vec<VertexId>> =
        std::collections::HashMap::new();
    for v in 0..n {
        let r = find(&mut parent, v);
        orbit_of.entry(r).or_default().push(VertexId(v as u32));
    }
    let mut orbits: Vec<Vec<VertexId>> = orbit_of.into_values().collect();
    for o in &mut orbits {
        o.sort_unstable();
    }
    orbits.sort_unstable_by_key(|o| o[0]);
    orbits
}

/// Interchangeable vertex classes of a digraph: `u ~ v` iff swapping
/// them is an automorphism regardless of the rest (identical in- and
/// out-neighborhoods away from each other, and a symmetric relation
/// between them). Used for symmetry-broken counting and alignment.
pub fn directed_interchangeable_classes(g: &DiGraph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut class_of: Vec<u32> = (0..n as u32).collect();
    let swap_ok = |u: VertexId, v: VertexId| -> bool {
        if g.has_arc(u, v) != g.has_arc(v, u) {
            return false;
        }
        let strip = |list: &[u32], skip: VertexId| -> Vec<u32> {
            list.iter().copied().filter(|&x| x != skip.0).collect()
        };
        strip(g.successors(u), v) == strip(g.successors(v), u)
            && strip(g.predecessors(u), v) == strip(g.predecessors(v), u)
    };
    for v in 1..n as u32 {
        for c in 0..v {
            if class_of[c as usize] != c {
                continue;
            }
            let all_ok = (0..v)
                .filter(|&m| class_of[m as usize] == c)
                .all(|m| swap_ok(VertexId(m), VertexId(v)));
            if all_ok {
                class_of[v as usize] = c;
                break;
            }
        }
    }
    class_of
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The feed-forward loop: a → b, a → c, b → c.
    fn ffl() -> DiGraph {
        DiGraph::from_arcs(3, &[(0, 1), (0, 2), (1, 2)])
    }

    /// The 3-cycle: a → b → c → a.
    fn cycle3() -> DiGraph {
        DiGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn arc_bookkeeping() {
        let mut g = DiGraph::empty(3);
        assert!(g.add_arc(VertexId(0), VertexId(1)));
        assert!(!g.add_arc(VertexId(0), VertexId(1)));
        assert!(g.add_arc(VertexId(1), VertexId(0)), "antiparallel allowed");
        assert!(!g.add_arc(VertexId(1), VertexId(1)), "no self-loops");
        assert_eq!(g.arc_count(), 2);
        assert!(g.has_arc(VertexId(0), VertexId(1)));
        assert!(g.remove_arc(VertexId(0), VertexId(1)));
        assert!(!g.has_arc(VertexId(0), VertexId(1)));
        assert!(g.has_arc(VertexId(1), VertexId(0)));
    }

    #[test]
    fn degrees_and_skeleton() {
        let g = ffl();
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(2)), 2);
        let sk = g.skeleton();
        assert_eq!(sk.edge_count(), 3);
        // Antiparallel arcs collapse to one skeleton edge.
        let mut g2 = DiGraph::from_arcs(2, &[(0, 1), (1, 0)]);
        assert_eq!(g2.skeleton().edge_count(), 1);
        assert!(g2.remove_arc(VertexId(0), VertexId(1)));
        assert_eq!(g2.skeleton().edge_count(), 1);
    }

    #[test]
    fn ffl_and_cycle_are_not_isomorphic() {
        // Same size, same arc count, same skeleton (triangle) — only the
        // orientation differs.
        assert_eq!(ffl().arc_count(), cycle3().arc_count());
        assert!(ppi_graph_skeletons_match(&ffl(), &cycle3()));
        assert!(!are_digraphs_isomorphic(&ffl(), &cycle3()));
    }

    fn ppi_graph_skeletons_match(a: &DiGraph, b: &DiGraph) -> bool {
        crate::isomorphism::are_isomorphic(&a.skeleton(), &b.skeleton())
    }

    #[test]
    fn relabeled_ffl_is_isomorphic() {
        let other = DiGraph::from_arcs(3, &[(2, 0), (2, 1), (0, 1)]);
        assert!(are_digraphs_isomorphic(&ffl(), &other));
        let m = find_digraph_isomorphism(&ffl(), &other).unwrap();
        // Verify the mapping preserves arcs both ways.
        for s in 0..3u32 {
            for t in 0..3u32 {
                assert_eq!(
                    ffl().has_arc(VertexId(s), VertexId(t)),
                    other.has_arc(m[s as usize], m[t as usize])
                );
            }
        }
    }

    #[test]
    fn cycle_directions_distinguished() {
        let cw = cycle3();
        let ccw = DiGraph::from_arcs(3, &[(1, 0), (2, 1), (0, 2)]);
        // Reversing a directed 3-cycle is still a directed 3-cycle.
        assert!(are_digraphs_isomorphic(&cw, &ccw));
    }

    #[test]
    fn induced_subdigraph_keeps_internal_arcs() {
        let g = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let (sub, map) = g.induced_subdigraph(&[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.arc_count(), 3);
        assert!(are_digraphs_isomorphic(&sub, &cycle3()));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn ffl_orbits_are_all_singletons() {
        // Skeleton symmetry (triangle: one orbit) vs directed symmetry
        // (three distinct roles).
        let orbits = directed_automorphism_orbits(&ffl());
        assert_eq!(orbits.len(), 3, "{orbits:?}");
        let skeleton_orbits = crate::automorphism::automorphism_orbits(&ffl().skeleton());
        assert_eq!(skeleton_orbits.len(), 1);
    }

    #[test]
    fn cycle_orbit_is_single() {
        let orbits = directed_automorphism_orbits(&cycle3());
        assert_eq!(orbits.len(), 1);
        assert_eq!(orbits[0].len(), 3);
    }

    #[test]
    fn bifan_orbits() {
        // Bi-fan: two regulators {0,1} each pointing at two targets {2,3}.
        let bifan = DiGraph::from_arcs(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let orbits = directed_automorphism_orbits(&bifan);
        assert_eq!(
            orbits,
            vec![
                vec![VertexId(0), VertexId(1)],
                vec![VertexId(2), VertexId(3)],
            ]
        );
        // And both pairs are interchangeable classes.
        assert_eq!(directed_interchangeable_classes(&bifan), vec![0, 0, 2, 2]);
    }

    #[test]
    fn interchangeable_respects_direction() {
        // out-star: leaves share the in-neighborhood {0} → one class.
        let out_star = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(directed_interchangeable_classes(&out_star), vec![0, 1, 1, 1]);
        // Chain: nothing interchangeable.
        let chain = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        assert_eq!(directed_interchangeable_classes(&chain), vec![0, 1, 2]);
    }

    #[test]
    fn enumerate_counts_automorphisms() {
        let mut count = 0;
        enumerate_digraph_isomorphisms(&cycle3(), &cycle3(), None, &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 3, "rotations of the directed 3-cycle");
        let mut ffl_count = 0;
        enumerate_digraph_isomorphisms(&ffl(), &ffl(), None, &mut |_| {
            ffl_count += 1;
            true
        });
        assert_eq!(ffl_count, 1, "the FFL is rigid");
    }

    #[test]
    fn degree_signature_separates_star_directions() {
        let out_star = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (0, 3)]);
        let in_star = DiGraph::from_arcs(4, &[(1, 0), (2, 0), (3, 0)]);
        assert_ne!(out_star.degree_signature(), in_star.degree_signature());
        assert!(!are_digraphs_isomorphic(&out_star, &in_star));
    }
}
