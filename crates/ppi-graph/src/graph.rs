//! The core undirected graph type used throughout the workspace.
//!
//! A [`Graph`] is a simple undirected graph (no self-loops, no parallel
//! edges) over densely numbered vertices `0..n`. Adjacency lists are kept
//! sorted so that edge queries are `O(log d)` and neighbor iteration is
//! deterministic, which matters for reproducible motif mining.

use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// Vertices are densely numbered `0..n`. The newtype prevents accidental
/// mixing of vertex ids with other integer quantities (GO term ids,
/// cluster ids, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    fn from(v: usize) -> Self {
        VertexId(v as u32)
    }
}

/// An undirected edge between two vertices, stored with the smaller
/// endpoint first so that edges compare and hash canonically.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge(pub VertexId, pub VertexId);

impl Edge {
    /// Create a canonical edge: endpoints are reordered so `self.0 <= self.1`.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Edge(a, b)
        } else {
            Edge(b, a)
        }
    }
}

/// A simple undirected graph with sorted adjacency lists.
///
/// # Invariants
///
/// * no self-loops, no parallel edges;
/// * each adjacency list is strictly sorted;
/// * `u ∈ adj[v] ⇔ v ∈ adj[u]`.
///
/// These invariants are maintained by [`GraphBuilder`] and the mutating
/// methods, and are relied upon by the isomorphism and canonical-form
/// machinery.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Build a graph from an edge list over vertices `0..n`.
    ///
    /// Self-loops and duplicate edges are silently dropped, mirroring the
    /// cleaning step the paper applies to the BIND interactome ("after
    /// removing redundant links and self-links").
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.adj.len() as u32).map(VertexId)
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Sorted slice of neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        &self.adj[v.index()]
    }

    /// Iterator over the neighbors of `v` as [`VertexId`]s.
    pub fn neighbor_ids(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v.index()].iter().map(|&u| VertexId(u))
    }

    /// Whether the edge `{u, v}` is present. `O(log d)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a.index()].binary_search(&b.0).is_ok()
    }

    /// Iterator over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as u32;
            nbrs.iter()
                .take_while(move |&&v| v < u)
                .map(move |&v| Edge(VertexId(v), VertexId(u)))
        })
    }

    /// The degree sequence, sorted descending. Two isomorphic graphs have
    /// equal degree sequences (the converse does not hold).
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.adj.iter().map(|n| n.len()).collect();
        ds.sort_unstable_by(|a, b| b.cmp(a));
        ds
    }

    /// Insert the edge `{u, v}`. Returns `true` if the edge was newly
    /// inserted, `false` if it already existed or is a self-loop.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let ui = u.index();
        let vi = v.index();
        assert!(
            ui < self.adj.len() && vi < self.adj.len(),
            "vertex out of bounds"
        );
        match self.adj[ui].binary_search(&v.0) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[ui].insert(pos_u, v.0);
                let pos_v = self.adj[vi]
                    .binary_search(&u.0)
                    .expect_err("adjacency symmetry violated");
                self.adj[vi].insert(pos_v, u.0);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Remove the edge `{u, v}`. Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        let ui = u.index();
        let vi = v.index();
        match self.adj[ui].binary_search(&v.0) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[ui].remove(pos_u);
                let pos_v = self.adj[vi]
                    .binary_search(&u.0)
                    .expect("adjacency symmetry violated");
                self.adj[vi].remove(pos_v);
                self.edge_count -= 1;
                true
            }
        }
    }

    /// The induced subgraph on `verts`, plus the mapping from new vertex
    /// ids (positions in `verts`) back to the original ids.
    ///
    /// Vertex `i` of the returned graph corresponds to `verts[i]`.
    pub fn induced_subgraph(&self, verts: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut index_of = std::collections::HashMap::with_capacity(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            let prev = index_of.insert(v, i as u32);
            assert!(prev.is_none(), "duplicate vertex in induced_subgraph");
        }
        let mut sub = Graph::empty(verts.len());
        for (i, &v) in verts.iter().enumerate() {
            for &w in self.neighbors(v) {
                if let Some(&j) = index_of.get(&VertexId(w)) {
                    if (i as u32) < j {
                        sub.add_edge(VertexId(i as u32), VertexId(j));
                    }
                }
            }
        }
        (sub, verts.to_vec())
    }

    /// Adjacency-matrix bit representation, row-major over the upper
    /// triangle. Used by the canonical-form code. Panics for graphs with
    /// more than 64 vertices worth of rows packed per `u64` word count —
    /// callers handle arbitrary sizes via `Vec<u64>`.
    pub fn adjacency_bits(&self) -> Vec<u64> {
        let n = self.vertex_count();
        let nbits = n * n;
        let mut bits = vec![0u64; nbits.div_ceil(64)];
        for e in self.edges() {
            let (u, v) = (e.0.index(), e.1.index());
            for (a, b) in [(u, v), (v, u)] {
                let bit = a * n + b;
                bits[bit / 64] |= 1 << (bit % 64);
            }
        }
        bits
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges=[",
            self.vertex_count(),
            self.edge_count()
        )?;
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}-{}", e.0, e.1)?;
        }
        write!(f, "])")
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects edges (dropping self-loops and duplicates) and produces a
/// graph with sorted adjacency lists in one pass — cheaper than repeated
/// sorted insertion when loading large networks.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Builder for a graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Ensure the graph has at least `n` vertices.
    pub fn grow_to(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Record an edge. Self-loops are dropped. Duplicates are dropped at
    /// `build` time. Grows the vertex set if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            return;
        }
        self.grow_to(u.index().max(v.index()) + 1);
        let (a, b) = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edges.push((a, b));
    }

    /// Finalize into a [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            edge_count: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn from_edges_drops_self_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(2)));
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = Graph::from_edges(4, &[(3, 0), (2, 0), (1, 0), (3, 1)]);
        assert_eq!(g.neighbors(VertexId(0)), &[1, 2, 3]);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                assert!(g.has_edge(VertexId(u), v));
            }
        }
    }

    #[test]
    fn degree_and_degree_sequence() {
        let g = path3();
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.degree_sequence(), vec![2, 1, 1]);
    }

    #[test]
    fn add_remove_edge_roundtrip() {
        let mut g = Graph::empty(3);
        assert!(g.add_edge(VertexId(0), VertexId(2)));
        assert!(!g.add_edge(VertexId(2), VertexId(0)));
        assert!(!g.add_edge(VertexId(1), VertexId(1)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(VertexId(0), VertexId(2)));
        assert!(!g.remove_edge(VertexId(0), VertexId(2)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        let mut set = std::collections::HashSet::new();
        for e in &edges {
            assert!(e.0 < e.1);
            assert!(set.insert(*e));
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Square with one diagonal; take the triangle 0-1-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let (sub, map) = g.induced_subgraph(&[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(map, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn induced_subgraph_relabels_vertices() {
        let g = path3();
        let (sub, map) = g.induced_subgraph(&[VertexId(2), VertexId(1)]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(map, vec![VertexId(2), VertexId(1)]);
    }

    #[test]
    fn edge_new_is_canonical() {
        assert_eq!(
            Edge::new(VertexId(5), VertexId(2)),
            Edge::new(VertexId(2), VertexId(5))
        );
    }

    #[test]
    fn builder_grows_vertex_set() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(VertexId(7), VertexId(3));
        let g = b.build();
        assert_eq!(g.vertex_count(), 8);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_bits_symmetric() {
        let g = path3();
        let bits = g.adjacency_bits();
        let n = 3;
        let get = |i: usize, j: usize| bits[(i * n + j) / 64] >> ((i * n + j) % 64) & 1 == 1;
        assert!(get(0, 1) && get(1, 0));
        assert!(get(1, 2) && get(2, 1));
        assert!(!get(0, 2) && !get(2, 0));
        assert!(!get(0, 0));
    }
}
