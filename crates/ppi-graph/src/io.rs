//! Named networks and a tab-separated edge-list interchange format.
//!
//! Interaction databases (BIND, MIPS) distribute PPI data as pairs of
//! protein identifiers. [`PpiNetwork`] couples a [`Graph`] with the
//! protein-name ↔ vertex-id mapping, and the `parse`/`serialize`
//! functions handle the simple `nameA \t nameB` format, applying the
//! same cleaning the paper applies (self-interactions and redundant
//! links removed).

use crate::graph::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::fmt;

/// A PPI network: graph topology plus protein names.
#[derive(Clone, Debug)]
pub struct PpiNetwork {
    graph: Graph,
    names: Vec<String>,
    index: HashMap<String, VertexId>,
}

/// Errors arising while parsing an edge list. Every variant names the
/// 1-based line and column where the problem sits.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A non-empty, non-comment line did not contain two fields. `col`
    /// points just past the lone field (where the second was expected),
    /// or at the first non-blank character for an unsplittable line.
    MalformedLine {
        line_no: usize,
        col: usize,
        content: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MalformedLine {
                line_no,
                col,
                content,
            } => {
                write!(
                    f,
                    "line {line_no}, column {col}: expected two fields, got {content:?}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl PpiNetwork {
    /// Build a network from `(protein A, protein B)` interaction pairs.
    /// Proteins are numbered in first-appearance order. Self-interactions
    /// and duplicate pairs are dropped.
    pub fn from_pairs<S: AsRef<str>>(pairs: &[(S, S)]) -> Self {
        let mut names: Vec<String> = Vec::new();
        let mut index: HashMap<String, VertexId> = HashMap::new();
        let intern = |name: &str, names: &mut Vec<String>, index: &mut HashMap<String, VertexId>| {
            if let Some(&v) = index.get(name) {
                return v;
            }
            let v = VertexId(names.len() as u32);
            names.push(name.to_string());
            index.insert(name.to_string(), v);
            v
        };
        let mut builder = GraphBuilder::new(0);
        for (a, b) in pairs {
            let va = intern(a.as_ref(), &mut names, &mut index);
            let vb = intern(b.as_ref(), &mut names, &mut index);
            builder.add_edge(va, vb);
        }
        builder.grow_to(names.len());
        PpiNetwork {
            graph: builder.build(),
            names,
            index,
        }
    }

    /// Wrap an existing graph with generated names `P0, P1, ...`.
    pub fn from_graph(graph: Graph) -> Self {
        let names: Vec<String> = (0..graph.vertex_count()).map(|i| format!("P{i}")).collect();
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VertexId(i as u32)))
            .collect();
        PpiNetwork {
            graph,
            names,
            index,
        }
    }

    /// Wrap an existing graph with caller-provided names (one per vertex).
    pub fn with_names(graph: Graph, names: Vec<String>) -> Self {
        assert_eq!(graph.vertex_count(), names.len(), "one name per vertex");
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VertexId(i as u32)))
            .collect();
        PpiNetwork {
            graph,
            names,
            index,
        }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Protein name of vertex `v`.
    pub fn name(&self, v: VertexId) -> &str {
        &self.names[v.index()]
    }

    /// Vertex id of the protein called `name`, if present.
    pub fn vertex(&self, name: &str) -> Option<VertexId> {
        self.index.get(name).copied()
    }

    /// Number of proteins.
    pub fn protein_count(&self) -> usize {
        self.names.len()
    }

    /// Number of (cleaned) interactions.
    pub fn interaction_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Parse the tab/whitespace-separated edge-list format. Lines starting
    /// with `#` and blank lines are skipped.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            match (fields.next(), fields.next()) {
                (Some(a), Some(b)) => pairs.push((a.to_string(), b.to_string())),
                _ => {
                    // A non-empty line holds exactly one field here; the
                    // column (1-based, in bytes) points just past it —
                    // where the second field was expected.
                    let leading = raw.len() - raw.trim_start().len();
                    let first_len = line.split_whitespace().next().map_or(0, str::len);
                    return Err(ParseError::MalformedLine {
                        line_no: i + 1,
                        col: leading + first_len + 1,
                        content: line.to_string(),
                    });
                }
            }
        }
        Ok(PpiNetwork::from_pairs(&pairs))
    }

    /// Serialize to the edge-list format parsed by [`PpiNetwork::parse`].
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("# PPI edge list: proteinA\tproteinB\n");
        for e in self.graph.edges() {
            out.push_str(self.name(e.0));
            out.push('\t');
            out.push_str(self.name(e.1));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_cleans_input() {
        let net = PpiNetwork::from_pairs(&[
            ("YAL001C", "YBR100W"),
            ("YBR100W", "YAL001C"), // redundant link
            ("YAL001C", "YAL001C"), // self-link
            ("YBR100W", "YCL050C"),
        ]);
        assert_eq!(net.protein_count(), 3);
        assert_eq!(net.interaction_count(), 2);
    }

    #[test]
    fn name_lookup_roundtrip() {
        let net = PpiNetwork::from_pairs(&[("A", "B"), ("B", "C")]);
        let b = net.vertex("B").unwrap();
        assert_eq!(net.name(b), "B");
        assert!(net.vertex("Z").is_none());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n\nA\tB\nB  C\n  \n# trailing\n";
        let net = PpiNetwork::parse(text).unwrap();
        assert_eq!(net.protein_count(), 3);
        assert_eq!(net.interaction_count(), 2);
    }

    #[test]
    fn parse_reports_malformed_line() {
        let err = PpiNetwork::parse("A\tB\nlonely\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::MalformedLine {
                line_no: 2,
                col: 7,
                content: "lonely".to_string()
            }
        );
    }

    #[test]
    fn malformed_line_column_accounts_for_leading_whitespace() {
        let err = PpiNetwork::parse("  lonely\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::MalformedLine {
                line_no: 1,
                col: 9,
                content: "lonely".to_string()
            }
        );
        assert!(err.to_string().contains("line 1, column 9"));
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let net = PpiNetwork::from_pairs(&[("A", "B"), ("B", "C"), ("C", "A")]);
        let text = net.serialize();
        let back = PpiNetwork::parse(&text).unwrap();
        assert_eq!(back.protein_count(), 3);
        assert_eq!(back.interaction_count(), 3);
        for e in net.graph().edges() {
            let a = back.vertex(net.name(e.0)).unwrap();
            let b = back.vertex(net.name(e.1)).unwrap();
            assert!(back.graph().has_edge(a, b));
        }
    }

    #[test]
    fn with_names_checks_length() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let net = PpiNetwork::with_names(g, vec!["X".into(), "Y".into()]);
        assert_eq!(net.name(VertexId(1)), "Y");
    }
}
