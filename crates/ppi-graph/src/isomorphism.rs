//! VF2-style (sub)graph isomorphism.
//!
//! Three entry points are provided:
//!
//! * [`are_isomorphic`] — graph isomorphism between equal-sized graphs;
//! * [`find_isomorphism`] / [`find_isomorphism_pinned`] — return one
//!   mapping (optionally with a forced `u → v` pin, used by the
//!   automorphism-orbit computation);
//! * [`enumerate_isomorphisms`] — visit every isomorphism, with early
//!   termination through the visitor's return value.
//!
//! All matching here is *induced*: a mapping `m` is accepted iff
//! `{u,v} ∈ E(pattern) ⇔ {m(u),m(v)} ∈ E(target)` for all pattern pairs.
//! That is the semantics network-motif occurrences use (an occurrence is
//! an induced subgraph of the interactome isomorphic to the motif).

use crate::graph::{Graph, VertexId};
use crate::refinement::refine_colors;

/// Maps pattern vertex `i` to target vertex `mapping[i]`.
pub type Mapping = Vec<VertexId>;

/// Whether `g1` and `g2` are isomorphic.
///
/// Uses cheap invariants (sizes, degree sequences, refined color
/// histograms) to reject quickly, then a VF2 search.
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    if g1.vertex_count() != g2.vertex_count() || g1.edge_count() != g2.edge_count() {
        return false;
    }
    if g1.degree_sequence() != g2.degree_sequence() {
        return false;
    }
    if color_histogram(g1) != color_histogram(g2) {
        return false;
    }
    find_isomorphism(g1, g2).is_some()
}

/// Sorted histogram of equitable-refinement color class sizes — an
/// isomorphism invariant strictly finer than the degree sequence.
fn color_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let colors = refine_colors(g, None);
    let k = colors.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &c in &colors {
        sizes[c as usize] += 1;
    }
    let mut hist: Vec<(usize, usize)> = sizes
        .into_iter()
        .enumerate()
        .filter(|&(_, s)| s > 0)
        .collect();
    // Color ids themselves are canonical across graphs because
    // refinement normalizes by (signature) sort order; keep (color, size).
    hist.sort_unstable();
    hist
}

/// Find one isomorphism `pattern → target`, if any.
pub fn find_isomorphism(pattern: &Graph, target: &Graph) -> Option<Mapping> {
    let mut found = None;
    enumerate_isomorphisms(pattern, target, None, &mut |m| {
        found = Some(m.to_vec());
        false // stop at the first
    });
    found
}

/// [`find_isomorphism`] with caller-supplied refined colors (as produced
/// by [`refine_colors`] with no initial coloring) for both graphs —
/// avoids recomputing the refinement in hot classification loops where
/// the same graphs are matched repeatedly.
pub fn find_isomorphism_prepared(
    pattern: &Graph,
    pat_colors: &[u32],
    target: &Graph,
    tgt_colors: &[u32],
) -> Option<Mapping> {
    let n = pattern.vertex_count();
    if n != target.vertex_count() || pattern.edge_count() != target.edge_count() {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    let order = matching_order(pattern, None);
    let mut found = None;
    let mut state = Vf2State {
        pattern,
        target,
        pat_colors,
        tgt_colors,
        mapping: vec![u32::MAX; n],
        used: vec![false; n],
        order: &order,
        pin: None,
    };
    state.search(0, &mut |m| {
        found = Some(m.to_vec());
        false
    });
    found
}

/// Find one isomorphism that maps `pin.0` (in `pattern`) to `pin.1`
/// (in `target`). Used to answer "is there an automorphism sending
/// u to v?" when `pattern` and `target` are the same graph.
pub fn find_isomorphism_pinned(
    pattern: &Graph,
    target: &Graph,
    pin: (VertexId, VertexId),
) -> Option<Mapping> {
    let mut found = None;
    enumerate_isomorphisms(pattern, target, Some(pin), &mut |m| {
        found = Some(m.to_vec());
        false
    });
    found
}

/// Enumerate isomorphisms `pattern → target`, invoking `visit` for each.
/// Return `false` from `visit` to stop the search. An optional pin
/// forces `pin.0 → pin.1`.
///
/// `pattern` and `target` must have the same vertex count; otherwise no
/// mapping is reported.
pub fn enumerate_isomorphisms(
    pattern: &Graph,
    target: &Graph,
    pin: Option<(VertexId, VertexId)>,
    visit: &mut dyn FnMut(&[VertexId]) -> bool,
) {
    let n = pattern.vertex_count();
    if n != target.vertex_count() || pattern.edge_count() != target.edge_count() {
        return;
    }
    if n == 0 {
        visit(&[]);
        return;
    }

    // Joint color refinement: colors computed on each graph separately are
    // comparable because refinement normalizes signatures identically.
    let pat_colors = refine_colors(pattern, None);
    let tgt_colors = refine_colors(target, None);

    // Matching order: put the pinned vertex first, then grow by
    // connectivity (each subsequent vertex adjacent to an earlier one when
    // possible) preferring high degree — the usual VF2 ordering heuristic.
    let order = matching_order(pattern, pin.map(|p| p.0));

    let mut state = Vf2State {
        pattern,
        target,
        pat_colors: &pat_colors,
        tgt_colors: &tgt_colors,
        mapping: vec![u32::MAX; n],
        used: vec![false; n],
        order: &order,
        pin,
    };
    state.search(0, visit);
}

/// BFS-flavored matching order over the pattern, optionally starting at
/// `start`. Falls back to covering every component.
fn matching_order(pattern: &Graph, start: Option<VertexId>) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    let seed = |order: &mut Vec<VertexId>, placed: &mut Vec<bool>, v: VertexId| {
        if !placed[v.index()] {
            placed[v.index()] = true;
            order.push(v);
        }
    };

    if let Some(s) = start {
        seed(&mut order, &mut placed, s);
    }

    while order.len() < n {
        // Next: an unplaced vertex with the most placed neighbors, ties by
        // degree, then id. If none has a placed neighbor (new component),
        // take the highest-degree unplaced vertex.
        let mut best: Option<(usize, usize, u32)> = None; // (placed_nbrs, degree, id)
        for v in 0..n as u32 {
            if placed[v as usize] {
                continue;
            }
            let vid = VertexId(v);
            let pn = pattern
                .neighbors(vid)
                .iter()
                .filter(|&&u| placed[u as usize])
                .count();
            let key = (pn, pattern.degree(vid), v);
            let better = match best {
                None => true,
                Some((bpn, bd, bid)) => {
                    (pn, pattern.degree(vid), std::cmp::Reverse(v))
                        > (bpn, bd, std::cmp::Reverse(bid))
                }
            };
            if better {
                best = Some(key);
            }
        }
        let (_, _, id) = best.expect("unplaced vertex must exist");
        seed(&mut order, &mut placed, VertexId(id));
    }
    order
}

struct Vf2State<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    pat_colors: &'a [u32],
    tgt_colors: &'a [u32],
    /// mapping[p] = t or u32::MAX when unmapped.
    mapping: Vec<u32>,
    /// used[t] = target vertex already in the image.
    used: Vec<bool>,
    order: &'a [VertexId],
    pin: Option<(VertexId, VertexId)>,
}

impl Vf2State<'_> {
    /// Depth-first extension; returns `false` if the visitor aborted.
    fn search(&mut self, depth: usize, visit: &mut dyn FnMut(&[VertexId]) -> bool) -> bool {
        if depth == self.order.len() {
            let m: Vec<VertexId> = self.mapping.iter().map(|&t| VertexId(t)).collect();
            return visit(&m);
        }
        let p = self.order[depth];
        let candidates: Vec<u32> = match self.pin {
            Some((pp, pt)) if pp == p => vec![pt.0],
            _ => {
                // Prefer candidates adjacent to the image of an already
                // mapped pattern neighbor; otherwise all unused vertices.
                let anchor = self
                    .pattern
                    .neighbors(p)
                    .iter()
                    .find(|&&u| self.mapping[u as usize] != u32::MAX)
                    .map(|&u| self.mapping[u as usize]);
                match anchor {
                    Some(t_anchor) => self.target.neighbors(VertexId(t_anchor)).to_vec(),
                    None => (0..self.target.vertex_count() as u32).collect(),
                }
            }
        };
        for t in candidates {
            if self.used[t as usize] {
                continue;
            }
            if !self.feasible(p, VertexId(t)) {
                continue;
            }
            self.mapping[p.index()] = t;
            self.used[t as usize] = true;
            let keep_going = self.search(depth + 1, visit);
            self.mapping[p.index()] = u32::MAX;
            self.used[t as usize] = false;
            if !keep_going {
                return false;
            }
        }
        true
    }

    /// Induced-subgraph feasibility of extending with `p → t`.
    fn feasible(&self, p: VertexId, t: VertexId) -> bool {
        if self.pattern.degree(p) != self.target.degree(t) {
            return false;
        }
        if self.pat_colors[p.index()] != self.tgt_colors[t.index()] {
            return false;
        }
        // Adjacency to all mapped vertices must agree in both directions.
        for (q, &tq) in self.mapping.iter().enumerate() {
            if tq == u32::MAX {
                continue;
            }
            let q = VertexId(q as u32);
            let pat_adj = self.pattern.has_edge(p, q);
            let tgt_adj = self.target.has_edge(t, VertexId(tq));
            if pat_adj != tgt_adj {
                return false;
            }
        }
        true
    }
}

/// Count all isomorphisms between two graphs (e.g. |Aut(G)| when called
/// with the same graph twice).
pub fn count_isomorphisms(pattern: &Graph, target: &Graph) -> usize {
    let mut count = 0usize;
    enumerate_isomorphisms(pattern, target, None, &mut |_| {
        count += 1;
        true
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n as usize, &edges)
    }

    fn path(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n as usize, &edges)
    }

    fn complete(n: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n as usize, &edges)
    }

    #[test]
    fn isomorphic_relabeled_cycle() {
        let c4 = cycle(4);
        // Same C4 with vertices permuted: 0-2-1-3-0.
        let c4b = Graph::from_edges(4, &[(0, 2), (2, 1), (1, 3), (3, 0)]);
        assert!(are_isomorphic(&c4, &c4b));
    }

    #[test]
    fn cycle_not_isomorphic_to_path_plus_edge_elsewhere() {
        // C4 vs K3 plus isolated-ish structure of same size/edges: star+edge.
        let c4 = cycle(4);
        let other = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(c4.edge_count(), other.edge_count());
        assert!(!are_isomorphic(&c4, &other));
    }

    #[test]
    fn different_sizes_never_isomorphic() {
        assert!(!are_isomorphic(&cycle(4), &cycle(5)));
        assert!(!are_isomorphic(&path(4), &cycle(4)));
    }

    #[test]
    fn mapping_is_a_real_isomorphism() {
        let g1 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let g2 = Graph::from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0), (0, 4), (4, 2)]);
        let m = find_isomorphism(&g1, &g2).expect("isomorphic");
        for u in g1.vertices() {
            for v in g1.vertices() {
                if u < v {
                    assert_eq!(g1.has_edge(u, v), g2.has_edge(m[u.index()], m[v.index()]));
                }
            }
        }
    }

    #[test]
    fn automorphism_counts_of_standard_graphs() {
        // |Aut(C4)| = 8 (dihedral), |Aut(P3)| = 2, |Aut(K4)| = 24.
        assert_eq!(count_isomorphisms(&cycle(4), &cycle(4)), 8);
        assert_eq!(count_isomorphisms(&path(3), &path(3)), 2);
        assert_eq!(count_isomorphisms(&complete(4), &complete(4)), 24);
    }

    #[test]
    fn pinned_search_respects_pin() {
        let p4 = path(4);
        // An automorphism of the path 0-1-2-3 mapping 0 -> 3 exists (reversal).
        let m = find_isomorphism_pinned(&p4, &p4, (VertexId(0), VertexId(3))).unwrap();
        assert_eq!(m[0], VertexId(3));
        assert_eq!(m[3], VertexId(0));
        // No automorphism maps an endpoint to the middle.
        assert!(find_isomorphism_pinned(&p4, &p4, (VertexId(0), VertexId(1))).is_none());
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        assert!(are_isomorphic(&Graph::empty(0), &Graph::empty(0)));
        assert!(are_isomorphic(&Graph::empty(3), &Graph::empty(3)));
        assert!(!are_isomorphic(&Graph::empty(3), &Graph::empty(2)));
    }

    #[test]
    fn petersen_like_regular_graphs_distinguished() {
        // Two 3-regular graphs on 6 vertices: K_{3,3} and the prism (C3 x K2).
        let k33 = Graph::from_edges(
            6,
            &[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)],
        );
        let prism = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
        );
        assert_eq!(k33.degree_sequence(), prism.degree_sequence());
        assert!(!are_isomorphic(&k33, &prism));
        assert!(are_isomorphic(&k33, &k33.clone()));
    }
}
