//! Classic graph algorithms: BFS, connectivity, components, shortest
//! paths, and clustering-coefficient style statistics used by the
//! synthetic-data generators and the PRODISTIN baseline.

use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Breadth-first distances from `source`. Unreachable vertices get
/// `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &u in g.neighbors(v) {
            let u = u as usize;
            if dist[u] == usize::MAX {
                dist[u] = d + 1;
                queue.push_back(VertexId(u as u32));
            }
        }
    }
    dist
}

/// Vertices reachable from `source` (including `source` itself), in BFS
/// order.
pub fn bfs_reachable(g: &Graph, source: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.vertex_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(VertexId(u));
            }
        }
    }
    order
}

/// Whether the graph is connected. The empty graph and single-vertex
/// graphs count as connected.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.vertex_count();
    if n <= 1 {
        return true;
    }
    bfs_reachable(g, VertexId(0)).len() == n
}

/// Connected components; each component is a sorted list of vertices.
/// Components are ordered by their smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut components = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[s] = id;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            members.push(VertexId(v as u32));
            for &u in g.neighbors(VertexId(v as u32)) {
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = id;
                    queue.push_back(u as usize);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// The largest connected component (ties broken by smallest vertex).
pub fn largest_component(g: &Graph) -> Vec<VertexId> {
    connected_components(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Whether the set `verts` induces a connected subgraph of `g`.
pub fn induces_connected(g: &Graph, verts: &[VertexId]) -> bool {
    if verts.is_empty() {
        return true;
    }
    let set: std::collections::HashSet<u32> = verts.iter().map(|v| v.0).collect();
    let mut seen = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(verts[0].0);
    queue.push_back(verts[0]);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if set.contains(&u) && seen.insert(u) {
                queue.push_back(VertexId(u));
            }
        }
    }
    seen.len() == verts.len()
}

/// Bridges of the graph: edges whose removal disconnects their
/// component. Iterative Tarjan low-link computation, `O(V + E)`.
pub fn bridges(g: &Graph) -> Vec<crate::graph::Edge> {
    let n = g.vertex_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frame: (vertex, parent, neighbor cursor, parent-edge skipped flag).
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(usize, usize, usize, bool)> = vec![(root, usize::MAX, 0, false)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while !stack.is_empty() {
            let top = stack.len() - 1;
            let (v, parent) = (stack[top].0, stack[top].1);
            let nbrs = g.neighbors(VertexId(v as u32));
            if stack[top].2 < nbrs.len() {
                let u = nbrs[stack[top].2] as usize;
                stack[top].2 += 1;
                if u == parent && !stack[top].3 {
                    // Skip the tree edge back to the parent exactly once
                    // (parallel edges cannot exist in a simple graph).
                    stack[top].3 = true;
                    continue;
                }
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, v, 0, false));
                } else {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push(crate::graph::Edge::new(
                            VertexId(p as u32),
                            VertexId(v as u32),
                        ));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Number of edges among the neighbors of `v`, and `v`'s local
/// clustering coefficient (0 for degree < 2).
pub fn local_clustering(g: &Graph, v: VertexId) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(VertexId(a), VertexId(b)) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering coefficient over all vertices.
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.vertex_count();
    if n == 0 {
        return 0.0;
    }
    g.vertices().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Number of triangles in the graph.
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            if a <= v.0 {
                continue;
            }
            for &b in &nbrs[i + 1..] {
                if b > a && g.has_edge(VertexId(a), VertexId(b)) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // 0-1-2 triangle, 3-4-5 triangle, disconnected.
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, VertexId(0)), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, VertexId(2)), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_distances_unreachable_is_max() {
        let g = two_triangles();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d[3], usize::MAX);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(is_connected(&Graph::from_edges(3, &[(0, 1), (1, 2)])));
        assert!(!is_connected(&two_triangles()));
    }

    #[test]
    fn components_of_two_triangles() {
        let comps = connected_components(&two_triangles());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(comps[1], vec![VertexId(3), VertexId(4), VertexId(5)]);
        assert_eq!(largest_component(&two_triangles()).len(), 3);
    }

    #[test]
    fn induces_connected_detects_disconnection() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(induces_connected(&g, &[VertexId(0), VertexId(1)]));
        assert!(!induces_connected(&g, &[VertexId(0), VertexId(2)]));
        assert!(induces_connected(&g, &[]));
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((local_clustering(&g, VertexId(0)) - 1.0).abs() < 1e-12);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn bridges_of_barbell() {
        // Two triangles joined by one edge: only the joining edge is a
        // bridge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        assert_eq!(bridges(&g), vec![crate::graph::Edge::new(VertexId(2), VertexId(3))]);
    }

    #[test]
    fn bridges_of_tree_are_all_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(bridges(&g).is_empty());
        // Disconnected graph: per-component computation.
        let g2 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        assert_eq!(bridges(&g2).len(), 2);
    }

    #[test]
    fn removing_non_bridge_preserves_connectivity() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let bridge_set: std::collections::HashSet<_> = bridges(&g).into_iter().collect();
        for e in g.edges() {
            let mut h = g.clone();
            h.remove_edge(e.0, e.1);
            let still_connected = is_connected(&h);
            assert_eq!(still_connected, !bridge_set.contains(&e), "edge {e:?}");
        }
    }

    #[test]
    fn triangle_counting() {
        assert_eq!(triangle_count(&two_triangles()), 2);
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&k4), 4);
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(triangle_count(&path), 0);
    }
}
