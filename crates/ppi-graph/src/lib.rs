#![forbid(unsafe_code)]
//! Graph substrate for the LaMoFinder reproduction.
//!
//! This crate provides everything the motif-mining pipeline needs from a
//! graph library, implemented from scratch:
//!
//! * [`Graph`] / [`GraphBuilder`] — simple undirected graphs with sorted
//!   adjacency lists ([`graph`]);
//! * classic algorithms — BFS, connectivity, components, clustering
//!   coefficients ([`algo`]);
//! * VF2-style (sub)graph isomorphism with pinning support
//!   ([`isomorphism`]);
//! * equitable color refinement (1-WL), shared by the isomorphism,
//!   canonical-form and automorphism machinery ([`refinement`]);
//! * exact canonical forms for motif-sized graphs ([`canonical`]);
//! * automorphism orbits — the paper's "symmetric vertex sets"
//!   ([`automorphism`]);
//! * random graph models and the degree-preserving edge-swap
//!   randomization required by motif uniqueness testing ([`random`]);
//! * directed graphs with directed isomorphism/orbit machinery for the
//!   paper's future-work extension ([`digraph`]);
//! * named PPI networks and an edge-list interchange format ([`io`]);
//! * validated edge deltas for incremental interactome revisions
//!   ([`delta`]).

pub mod algo;
pub mod automorphism;
pub mod bits;
pub mod canonical;
pub mod delta;
pub mod digraph;
pub mod graph;
pub mod io;
pub mod isomorphism;
pub mod random;
pub mod refinement;

pub use automorphism::{automorphism_orbits, symmetric_vertex_sets};
pub use digraph::{
    are_digraphs_isomorphic, directed_automorphism_orbits, directed_interchangeable_classes,
    find_digraph_isomorphism, DiGraph,
};
pub use bits::AdjBits;
pub use canonical::{
    canonical_form, canonical_graph, canonical_labeling, small_adjacency_bits,
    small_canonical_code, small_graph_from_bits, CanonicalKey, SMALL_CANON_MAX,
};
pub use delta::{DeltaError, EdgeDelta, NormalizedDelta};
pub use graph::{Edge, Graph, GraphBuilder, VertexId};
pub use io::{ParseError, PpiNetwork};
pub use isomorphism::{are_isomorphic, enumerate_isomorphisms, find_isomorphism, Mapping};
