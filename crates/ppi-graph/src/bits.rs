//! Bit-packed adjacency rows.
//!
//! [`AdjBits`] stores one bitset row per vertex (`n` words of
//! `⌈n/64⌉` × 64 bits), so adjacency tests are a shift-and-mask and
//! neighborhood set algebra (intersection with a blocked set, "neighbors
//! with id greater than r") is word-wise `AND`/`ANDNOT` over a handful
//! of words. This is the dense-kernel representation the discovery hot
//! path walks (DESIGN.md §15): the ESU extension step and the packed
//! subgraph coding both read these rows instead of binary-searching
//! sorted adjacency lists.
//!
//! The structure is a derived view: build it once per enumeration run
//! with [`AdjBits::new`] and share it across worker threads (`&AdjBits`
//! is `Send + Sync`). The incremental-delta path keeps one alive across
//! edge deltas and updates it in place with [`AdjBits::patch`] instead
//! of repacking the matrix. Memory is `n²/8` bits —
//! ~2.2 MB for the paper-scale yeast interactome (4141 vertices) —
//! built in `O(n²/64 + m)`.

use crate::graph::Graph;

/// Immutable bit-matrix adjacency view of a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjBits {
    /// Row-major bitset rows, `words_per_row` words per vertex.
    words: Vec<u64>,
    words_per_row: usize,
    n: usize,
}

impl AdjBits {
    /// Pack the adjacency of `g` into bitset rows.
    pub fn new(g: &Graph) -> AdjBits {
        let n = g.vertex_count();
        let words_per_row = n.div_ceil(64);
        let mut words = vec![0u64; n * words_per_row];
        for v in g.vertices() {
            let row = &mut words[v.index() * words_per_row..][..words_per_row];
            for &u in g.neighbors(v) {
                row[(u as usize) / 64] |= 1u64 << (u % 64);
            }
        }
        AdjBits {
            words,
            words_per_row,
            n,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Words per bitset row (`⌈n/64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The neighbor bitset of `v` as a word slice.
    #[inline]
    pub fn row(&self, v: u32) -> &[u64] {
        &self.words[v as usize * self.words_per_row..][..self.words_per_row]
    }

    /// Whether the edge `{u, v}` is present. One shift and mask.
    #[inline]
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.words[u as usize * self.words_per_row + (v as usize) / 64] >> (v % 64) & 1 == 1
    }

    /// The mask selecting ids strictly greater than `r` within word
    /// index `j` of a row (all-zero below `r`'s word, partial in it,
    /// all-one above).
    #[inline]
    pub fn above_mask(r: u32, j: usize) -> u64 {
        let rw = (r / 64) as usize;
        if j < rw {
            0
        } else if j > rw {
            u64::MAX
        } else if r % 64 == 63 {
            0
        } else {
            u64::MAX << (r % 64 + 1)
        }
    }

    /// Patch the edge `{u, v}` in place: set both direction bits when
    /// `present`, clear them otherwise. Four word operations — the
    /// incremental-delta path uses this instead of rebuilding the whole
    /// `O(n²/8)`-byte matrix after a small edge delta. Self-loops are
    /// refused (the [`Graph`] invariant this view mirrors).
    pub fn patch(&mut self, u: u32, v: u32, present: bool) {
        assert_ne!(u, v, "self-loops are not representable");
        assert!((u as usize) < self.n && (v as usize) < self.n);
        let wpr = self.words_per_row;
        for (a, b) in [(u, v), (v, u)] {
            let word = &mut self.words[a as usize * wpr + (b as usize) / 64];
            if present {
                *word |= 1u64 << (b % 64);
            } else {
                *word &= !(1u64 << (b % 64));
            }
        }
    }

    /// Invoke `f(u)` for every neighbor `u > r` of `v`, ascending —
    /// the same order as filtering the sorted adjacency list.
    #[inline]
    pub fn for_each_neighbor_above(&self, v: u32, r: u32, mut f: impl FnMut(u32)) {
        let row = self.row(v);
        for (j, &w) in row.iter().enumerate().skip((r / 64) as usize) {
            let mut word = w & Self::above_mask(r, j);
            while word != 0 {
                let u = (j as u32) * 64 + word.trailing_zeros();
                word &= word - 1;
                f(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;

    fn sample() -> Graph {
        Graph::from_edges(
            7,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (2, 6)],
        )
    }

    #[test]
    fn contains_matches_has_edge() {
        let g = sample();
        let bits = AdjBits::new(&g);
        for u in 0..7u32 {
            for v in 0..7u32 {
                assert_eq!(
                    bits.contains(u, v),
                    g.has_edge(VertexId(u), VertexId(v)),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn rows_match_adjacency_lists() {
        let g = sample();
        let bits = AdjBits::new(&g);
        for v in g.vertices() {
            let mut from_bits = Vec::new();
            bits.for_each_neighbor_above(v.0, 0, |u| from_bits.push(u));
            let from_list: Vec<u32> =
                g.neighbors(v).iter().copied().filter(|&u| u > 0).collect();
            assert_eq!(from_bits, from_list, "v={v}");
        }
    }

    #[test]
    fn neighbor_iteration_respects_lower_bound() {
        let g = sample();
        let bits = AdjBits::new(&g);
        for v in 0..7u32 {
            for r in 0..7u32 {
                let mut from_bits = Vec::new();
                bits.for_each_neighbor_above(v, r, |u| from_bits.push(u));
                let from_list: Vec<u32> = g
                    .neighbors(VertexId(v))
                    .iter()
                    .copied()
                    .filter(|&u| u > r)
                    .collect();
                assert_eq!(from_bits, from_list, "v={v} r={r}");
            }
        }
    }

    #[test]
    fn above_mask_word_boundaries() {
        // r = 63 sits at the top of word 0: nothing above it there,
        // everything above it in word 1.
        assert_eq!(AdjBits::above_mask(63, 0), 0);
        assert_eq!(AdjBits::above_mask(63, 1), u64::MAX);
        assert_eq!(AdjBits::above_mask(64, 1), u64::MAX << 1);
        assert_eq!(AdjBits::above_mask(0, 0), u64::MAX << 1);
        assert_eq!(AdjBits::above_mask(70, 0), 0);
    }

    #[test]
    fn multiword_rows_cover_high_ids() {
        // 130 vertices forces 3 words per row.
        let mut edges = Vec::new();
        for i in 0..129u32 {
            edges.push((i, i + 1));
        }
        edges.push((0, 129));
        let g = Graph::from_edges(130, &edges);
        let bits = AdjBits::new(&g);
        assert_eq!(bits.words_per_row(), 3);
        assert!(bits.contains(0, 129));
        assert!(bits.contains(129, 0));
        assert!(bits.contains(64, 65));
        assert!(!bits.contains(64, 66));
        let mut nbrs = Vec::new();
        bits.for_each_neighbor_above(0, 0, |u| nbrs.push(u));
        assert_eq!(nbrs, vec![1, 129]);
    }

    #[test]
    fn patch_matches_rebuild() {
        // Applying a delta through `patch` must leave the view
        // byte-identical to repacking the patched graph from scratch,
        // including across word boundaries (130 vertices ⇒ 3 words/row).
        let mut edges = Vec::new();
        for i in 0..129u32 {
            edges.push((i, i + 1));
        }
        let mut g = Graph::from_edges(130, &edges);
        let mut bits = AdjBits::new(&g);
        let delta: &[(u32, u32, bool)] = &[
            (0, 129, true),
            (64, 1, true),
            (5, 6, false),
            (64, 65, false),
            (129, 3, true),
        ];
        for &(u, v, present) in delta {
            if present {
                assert!(g.add_edge(VertexId(u), VertexId(v)));
            } else {
                assert!(g.remove_edge(VertexId(u), VertexId(v)));
            }
            bits.patch(u, v, present);
        }
        assert_eq!(bits, AdjBits::new(&g));
    }

    #[test]
    fn patch_is_idempotent_per_direction_pair() {
        let g = sample();
        let mut bits = AdjBits::new(&g);
        bits.patch(0, 3, true);
        assert!(bits.contains(0, 3) && bits.contains(3, 0));
        bits.patch(0, 3, false);
        bits.patch(3, 0, false);
        assert_eq!(bits, AdjBits::new(&g));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn patch_refuses_self_loops() {
        let mut bits = AdjBits::new(&sample());
        bits.patch(2, 2, true);
    }

    #[test]
    fn empty_graph_has_empty_rows() {
        let g = Graph::empty(3);
        let bits = AdjBits::new(&g);
        assert_eq!(bits.vertex_count(), 3);
        assert!(bits.row(1).iter().all(|&w| w == 0));
    }
}
