//! Canonical forms for small graphs via individualization–refinement.
//!
//! Two graphs are isomorphic iff their canonical keys are equal, which
//! turns isomorphism-class bookkeeping (grouping subgraph occurrences
//! into motif candidates) into hash-map lookups.
//!
//! The search individualizes one vertex of the first non-singleton
//! refinement cell at a time, re-refines, and takes the minimum adjacency
//! bit-matrix over all discrete leaves. This is exact. Highly symmetric
//! families that defeat refinement entirely (complete graphs, cycles,
//! edgeless graphs) are special-cased to avoid factorial search; they are
//! also the families that actually occur as motifs in PPI networks
//! (cliques = protein complexes).

use crate::graph::{Graph, VertexId};
use crate::refinement::{color_cells, refine_colors};

/// A canonical key: equal keys ⇔ isomorphic graphs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalKey {
    /// Vertex count.
    pub n: u32,
    /// Adjacency bit-matrix (row-major, n×n) of the canonically
    /// relabeled graph.
    pub bits: Vec<u64>,
}

/// Compute the canonical key of `g`.
pub fn canonical_form(g: &Graph) -> CanonicalKey {
    let labeling = canonical_labeling(g);
    key_under(g, &labeling)
}

/// A canonical labeling: `labeling[i]` is the original vertex placed at
/// canonical position `i`. Applying it to `g` yields the canonical
/// representative of `g`'s isomorphism class.
pub fn canonical_labeling(g: &Graph) -> Vec<VertexId> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }

    // Special cases that defeat color refinement.
    if let Some(lab) = special_case_labeling(g) {
        return lab;
    }

    let colors = refine_colors(g, None);
    let mut best: Option<(Vec<u64>, Vec<VertexId>)> = None;
    search(g, &colors, &mut best);
    best.expect("search visits at least one leaf").1
}

/// The canonical representative graph of `g`'s isomorphism class.
pub fn canonical_graph(g: &Graph) -> Graph {
    let labeling = canonical_labeling(g);
    apply_labeling(g, &labeling)
}

/// Relabel `g` so that original vertex `labeling[i]` becomes vertex `i`.
pub fn apply_labeling(g: &Graph, labeling: &[VertexId]) -> Graph {
    let n = g.vertex_count();
    assert_eq!(labeling.len(), n);
    let mut pos = vec![u32::MAX; n];
    for (i, &v) in labeling.iter().enumerate() {
        pos[v.index()] = i as u32;
    }
    let mut out = Graph::empty(n);
    for e in g.edges() {
        out.add_edge(VertexId(pos[e.0.index()]), VertexId(pos[e.1.index()]));
    }
    out
}

fn key_under(g: &Graph, labeling: &[VertexId]) -> CanonicalKey {
    let n = g.vertex_count();
    let mut pos = vec![u32::MAX; n];
    for (i, &v) in labeling.iter().enumerate() {
        pos[v.index()] = i as u32;
    }
    CanonicalKey {
        n: n as u32,
        bits: bits_under(g, &pos),
    }
}

fn bits_under(g: &Graph, pos: &[u32]) -> Vec<u64> {
    let n = g.vertex_count();
    let mut bits = vec![0u64; (n * n).div_ceil(64)];
    for e in g.edges() {
        let (i, j) = (pos[e.0.index()] as usize, pos[e.1.index()] as usize);
        for (a, b) in [(i, j), (j, i)] {
            let bit = a * n + b;
            bits[bit / 64] |= 1 << (bit % 64);
        }
    }
    bits
}

/// Largest vertex count for which [`small_canonical_code`] applies: the
/// full row-major n×n adjacency bit-matrix must fit one `u64` word.
pub const SMALL_CANON_MAX: usize = 8;

/// Pack the adjacency matrix of a graph with at most
/// [`SMALL_CANON_MAX`] vertices into a single word (row-major n×n
/// bits). Together with the vertex count this determines the labeled
/// graph exactly, which makes the word a perfect memo key for
/// per-candidate canonical codes in the discovery hot loop.
pub fn small_adjacency_bits(g: &Graph) -> u64 {
    let n = g.vertex_count();
    assert!(n <= SMALL_CANON_MAX, "graph too large for one-word packing");
    let mut bits = 0u64;
    for e in g.edges() {
        let (i, j) = (e.0.index(), e.1.index());
        bits |= 1 << (i * n + j);
        bits |= 1 << (j * n + i);
    }
    bits
}

/// Exact canonical code of a graph with at most [`SMALL_CANON_MAX`]
/// vertices: `(code, labeling)` where `code` is the packed canonical
/// adjacency matrix (equal codes ⇔ isomorphic graphs) and `labeling`
/// packs the canonical labeling 4 bits per position — the original
/// vertex at canonical position `i` is `(labeling >> (4 * i)) & 0xF`.
///
/// The labeling lets a caller align data attached to the original
/// vertices onto the canonical representative (see
/// [`small_graph_from_bits`]) without running a separate isomorphism
/// search per candidate.
pub fn small_canonical_code(g: &Graph) -> (u64, u64) {
    let n = g.vertex_count();
    assert!(n <= SMALL_CANON_MAX, "graph too large for one-word packing");
    let lab = canonical_labeling(g);
    let mut pos = vec![u32::MAX; n];
    let mut packed_lab = 0u64;
    for (i, &v) in lab.iter().enumerate() {
        pos[v.index()] = i as u32;
        packed_lab |= (v.0 as u64) << (4 * i);
    }
    let mut code = 0u64;
    for e in g.edges() {
        let (i, j) = (pos[e.0.index()] as usize, pos[e.1.index()] as usize);
        code |= 1 << (i * n + j);
        code |= 1 << (j * n + i);
    }
    (code, packed_lab)
}

/// Rebuild a graph from its one-word packed adjacency matrix (the
/// inverse of [`small_adjacency_bits`] for fixed `n`).
pub fn small_graph_from_bits(n: usize, bits: u64) -> Graph {
    assert!(n <= SMALL_CANON_MAX, "graph too large for one-word packing");
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in i + 1..n {
            if bits >> (i * n + j) & 1 == 1 {
                g.add_edge(VertexId(i as u32), VertexId(j as u32));
            }
        }
    }
    g
}

/// Recognize families where refinement yields one big cell but the
/// canonical labeling is obvious: edgeless, complete, and cycles.
fn special_case_labeling(g: &Graph) -> Option<Vec<VertexId>> {
    let n = g.vertex_count();
    let m = g.edge_count();
    if m == 0 || m == n * (n - 1) / 2 {
        // Edgeless or complete: every labeling is canonical.
        return Some(g.vertices().collect());
    }
    if n >= 3 && m == n && g.vertices().all(|v| g.degree(v) == 2) && crate::algo::is_connected(g) {
        // A single cycle: walk it from vertex 0.
        let mut lab = Vec::with_capacity(n);
        let mut prev = VertexId(0);
        let mut cur = VertexId(g.neighbors(prev)[0]);
        lab.push(prev);
        while cur != VertexId(0) {
            lab.push(cur);
            let next = g
                .neighbor_ids(cur)
                .find(|&u| u != prev)
                .expect("cycle vertex has two neighbors");
            prev = cur;
            cur = next;
        }
        return Some(lab);
    }
    None
}

/// Individualization–refinement search for the minimum-bit labeling.
fn search(g: &Graph, colors: &[u32], best: &mut Option<(Vec<u64>, Vec<VertexId>)>) {
    let cells = color_cells(colors);
    // Find the first non-singleton cell.
    match cells.iter().find(|c| c.len() > 1) {
        None => {
            // Discrete: vertex with color i goes to position i.
            let n = g.vertex_count();
            let mut labeling = vec![VertexId(0); n];
            let mut pos = vec![0u32; n];
            for (v, &c) in colors.iter().enumerate() {
                labeling[c as usize] = VertexId(v as u32);
                pos[v] = c;
            }
            let bits = bits_under(g, &pos);
            let better = match best {
                None => true,
                Some((b, _)) => bits < *b,
            };
            if better {
                *best = Some((bits, labeling));
            }
        }
        Some(cell) => {
            for &v in cell {
                // Individualize v: split it off in front of its cell.
                let mut init: Vec<u32> = colors.iter().map(|&c| c * 2 + 1).collect();
                init[v.index()] -= 1;
                let refined = refine_colors(g, Some(&init));
                search(g, &refined, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::are_isomorphic;

    fn relabel(g: &Graph, perm: &[u32]) -> Graph {
        let mut edges = Vec::new();
        for e in g.edges() {
            edges.push((perm[e.0.index()], perm[e.1.index()]));
        }
        Graph::from_edges(g.vertex_count(), &edges)
    }

    #[test]
    fn isomorphic_graphs_share_keys() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let h = relabel(&g, &[3, 0, 4, 1, 2]);
        assert_eq!(canonical_form(&g), canonical_form(&h));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let star_plus = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_ne!(canonical_form(&c4), canonical_form(&star_plus));
    }

    #[test]
    fn canonical_graph_is_isomorphic_to_input() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let cg = canonical_graph(&g);
        assert!(are_isomorphic(&g, &cg));
        // Canonicalizing twice is a fixpoint on the key.
        assert_eq!(canonical_form(&g), canonical_form(&cg));
    }

    #[test]
    fn complete_graph_fast_path() {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in i + 1..10 {
                edges.push((i, j));
            }
        }
        let k10 = Graph::from_edges(10, &edges);
        let key = canonical_form(&k10);
        assert_eq!(key.n, 10);
        let k10b = relabel(&k10, &[9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(key, canonical_form(&k10b));
    }

    #[test]
    fn long_cycle_fast_path() {
        let n = 20u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let c = Graph::from_edges(n as usize, &edges);
        // A rotated relabeling of the cycle.
        let perm: Vec<u32> = (0..n).map(|i| (i + 7) % n).collect();
        let c2 = relabel(&c, &perm);
        assert_eq!(canonical_form(&c), canonical_form(&c2));
    }

    #[test]
    fn cycle_vs_two_triangles_same_degree_sequence() {
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tt = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(c6.degree_sequence(), tt.degree_sequence());
        assert_ne!(canonical_form(&c6), canonical_form(&tt));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(canonical_form(&Graph::empty(0)).n, 0);
        assert_eq!(canonical_form(&Graph::empty(1)).n, 1);
        assert_ne!(
            canonical_form(&Graph::empty(2)),
            canonical_form(&Graph::from_edges(2, &[(0, 1)]))
        );
    }

    #[test]
    fn small_code_matches_canonical_form() {
        // Across every labeled 4-vertex graph, the packed code must
        // agree with the Vec-based canonical form (same partition into
        // the 11 classes) and the packed labeling must reproduce the
        // canonical representative.
        let pairs = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let mut by_key = std::collections::HashMap::new();
        for mask in 0u32..64 {
            let edges: Vec<(u32, u32)> = pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let g = Graph::from_edges(4, &edges);
            let (code, packed_lab) = small_canonical_code(&g);
            let prev = by_key.insert(canonical_form(&g), code);
            if let Some(prev_code) = prev {
                assert_eq!(prev_code, code, "same class, same code");
            }
            // Unpack the labeling and check it rebuilds the code graph.
            let lab: Vec<VertexId> = (0..4)
                .map(|i| VertexId((packed_lab >> (4 * i) & 0xF) as u32))
                .collect();
            assert_eq!(
                apply_labeling(&g, &lab),
                small_graph_from_bits(4, code),
                "labeling reproduces the canonical representative"
            );
        }
        let codes: std::collections::HashSet<u64> = by_key.values().copied().collect();
        assert_eq!(codes.len(), 11, "codes separate the 11 classes");
    }

    #[test]
    fn small_bits_roundtrip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let bits = small_adjacency_bits(&g);
        assert_eq!(small_graph_from_bits(5, bits), g);
        // The canonical code graph is isomorphic to the input.
        let (code, _) = small_canonical_code(&g);
        assert!(are_isomorphic(&g, &small_graph_from_bits(5, code)));
    }

    #[test]
    fn all_size4_graphs_classified() {
        // There are exactly 11 isomorphism classes of simple graphs on 4
        // vertices. Enumerate all 2^6 labelled graphs and count classes.
        let pairs = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let mut keys = std::collections::HashSet::new();
        for mask in 0u32..64 {
            let edges: Vec<(u32, u32)> = pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            keys.insert(canonical_form(&Graph::from_edges(4, &edges)));
        }
        assert_eq!(keys.len(), 11);
    }
}
