//! Equitable color refinement (1-dimensional Weisfeiler–Leman).
//!
//! Starting from an initial coloring (by default, vertex degree), each
//! round recolors every vertex by the pair *(its color, the multiset of
//! its neighbors' colors)* until the partition stabilizes. The resulting
//! coloring is an isomorphism invariant: isomorphic graphs produce the
//! same multiset of colors, and corresponding vertices receive the same
//! color. It is used to prune the VF2 search, to seed the canonical-form
//! search, and as the first cut for automorphism orbits.

use crate::graph::{Graph, VertexId};

/// Refine vertex colors to the coarsest stable (equitable) partition.
///
/// `initial` supplies a starting coloring (values need not be dense); if
/// `None`, vertices start colored by degree. Returned colors are dense in
/// `0..k` and numbered canonically (by sorted signature), so two
/// isomorphic graphs — refined independently with equivalent initial
/// colorings — assign equal colors to corresponding vertices.
pub fn refine_colors(g: &Graph, initial: Option<&[u32]>) -> Vec<u32> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }

    // Initial coloring, normalized to dense ranks.
    let raw: Vec<u64> = match initial {
        Some(init) => {
            assert_eq!(init.len(), n, "initial coloring length mismatch");
            init.iter().map(|&c| c as u64).collect()
        }
        None => g.vertices().map(|v| g.degree(v) as u64).collect(),
    };
    let mut colors = normalize(&raw);
    let mut class_count = count_classes(&colors);

    // Flat signature buffer reused across rounds: vertex v's signature is
    // `flat[start[v]..start[v+1]]` = [own color, sorted neighbor colors].
    let total: usize = n + g.vertices().map(|v| g.degree(v)).sum::<usize>();
    let mut flat: Vec<u32> = Vec::with_capacity(total);
    let mut start: Vec<usize> = Vec::with_capacity(n + 1);

    loop {
        flat.clear();
        start.clear();
        for v in 0..n {
            start.push(flat.len());
            flat.push(colors[v]);
            let base = flat.len();
            flat.extend(
                g.neighbors(VertexId(v as u32))
                    .iter()
                    .map(|&u| colors[u as usize]),
            );
            flat[base..].sort_unstable();
        }
        start.push(flat.len());

        let sig = |v: usize| &flat[start[v]..start[v + 1]];
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| sig(a as usize).cmp(sig(b as usize)));

        // Assign dense new colors by scanning the sorted signatures.
        let mut new_colors = vec![0u32; n];
        let mut next_color = 0u32;
        for (i, &v) in order.iter().enumerate() {
            if i > 0 && sig(order[i - 1] as usize) != sig(v as usize) {
                next_color += 1;
            }
            new_colors[v as usize] = next_color;
        }
        let new_count = next_color as usize + 1;
        if new_count == class_count {
            // Partition stable (refinement is monotone, so equal class
            // counts means the partition did not change).
            return new_colors;
        }
        class_count = new_count;
        colors = new_colors;
    }
}

/// Number of distinct colors in a dense coloring.
fn count_classes(colors: &[u32]) -> usize {
    let mut seen = vec![false; colors.len()];
    let mut k = 0;
    for &c in colors {
        if !seen[c as usize] {
            seen[c as usize] = true;
            k += 1;
        }
    }
    k
}

/// Map arbitrary color values to dense ranks `0..k` by sorted value.
fn normalize(raw: &[u64]) -> Vec<u32> {
    let mut values: Vec<u64> = raw.to_vec();
    values.sort_unstable();
    values.dedup();
    raw.iter()
        .map(|v| values.binary_search(v).expect("values was built from raw, so every raw entry is found") as u32)
        .collect()
}

/// Group vertices by color; cells are sorted internally and ordered by
/// color id.
pub fn color_cells(colors: &[u32]) -> Vec<Vec<VertexId>> {
    let k = colors.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut cells = vec![Vec::new(); k];
    for (v, &c) in colors.iter().enumerate() {
        cells[c as usize].push(VertexId(v as u32));
    }
    cells.retain(|c| !c.is_empty());
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_endpoints_vs_middle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = refine_colors(&g, None);
        assert_eq!(c[0], c[2]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn regular_graph_stays_monochromatic() {
        // C5 is vertex-transitive: refinement cannot split it.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let c = refine_colors(&g, None);
        assert!(c.iter().all(|&x| x == c[0]));
    }

    #[test]
    fn refinement_splits_beyond_degree() {
        // Path of 5: degrees are [1,2,2,2,1] but the middle vertex differs
        // from the degree-2 vertices adjacent to endpoints.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = refine_colors(&g, None);
        assert_eq!(c[0], c[4]);
        assert_eq!(c[1], c[3]);
        assert_ne!(c[1], c[2]);
        assert_ne!(c[0], c[1]);
    }

    #[test]
    fn initial_coloring_is_respected() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let c = refine_colors(&g, Some(&[5, 9]));
        assert_ne!(c[0], c[1]);
        // Normalization keeps relative order of initial colors.
        assert!(c[0] < c[1]);
    }

    #[test]
    fn colors_are_dense() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let c = refine_colors(&g, None);
        let k = *c.iter().max().unwrap() as usize + 1;
        for color in 0..k as u32 {
            assert!(c.contains(&color), "color {color} missing");
        }
    }

    #[test]
    fn isomorphic_graphs_get_equal_color_multisets() {
        let g1 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g2 = Graph::from_edges(4, &[(3, 2), (2, 0), (0, 1)]); // relabeled path
        let mut c1 = refine_colors(&g1, None);
        let mut c2 = refine_colors(&g2, None);
        c1.sort_unstable();
        c2.sort_unstable();
        assert_eq!(c1, c2);
    }

    #[test]
    fn cells_partition_the_vertices() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cells = color_cells(&refine_colors(&g, None));
        let total: usize = cells.iter().map(|c| c.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_graph() {
        assert!(refine_colors(&Graph::empty(0), None).is_empty());
    }
}
