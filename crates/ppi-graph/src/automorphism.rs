//! Automorphism orbits — the paper's "sets of symmetric vertices".
//!
//! Two motif vertices are *symmetric* when some automorphism of the motif
//! exchanges them (Section 2 of the paper: "vertices that can be
//! interchanged without affecting the topological structure"). Deciding
//! axial symmetry is NP-complete in general [Manning 1990]; the paper
//! resorts to the PIGALE heuristic. Motifs are at most meso-scale
//! (≤ 25 vertices), so we instead compute orbits *exactly*: equitable
//! refinement first separates most vertex pairs, and a pinned VF2 search
//! settles the survivors. This is our documented substitution for PIGALE
//! (see DESIGN.md §5) — strictly more accurate at negligible cost for
//! motif-sized graphs.

use crate::graph::{Graph, VertexId};
use crate::isomorphism::find_isomorphism_pinned;
use crate::refinement::refine_colors;

/// The orbits of the automorphism group of `g`, each sorted, ordered by
/// smallest member. Every vertex appears in exactly one orbit; singleton
/// orbits are included.
pub fn automorphism_orbits(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let colors = refine_colors(g, None);
    let mut uf = UnionFind::new(n);

    // Only same-colored vertices can share an orbit. Test each vertex
    // against the representatives of existing orbits in its color class.
    let mut reps_by_color: std::collections::HashMap<u32, Vec<usize>> =
        std::collections::HashMap::new();
    for (v, &color) in colors.iter().enumerate() {
        let reps = reps_by_color.entry(color).or_default();
        let mut joined = false;
        for &r in reps.iter() {
            if uf.find(r) == uf.find(v) {
                joined = true;
                break;
            }
            if let Some(m) =
                find_isomorphism_pinned(g, g, (VertexId(v as u32), VertexId(r as u32)))
            {
                // Fold the whole automorphism into the orbit structure:
                // every u is in the same orbit as m(u).
                for (u, &mu) in m.iter().enumerate() {
                    uf.union(u, mu.index());
                }
                joined = true;
                break;
            }
        }
        if !joined {
            reps.push(v);
        }
    }

    let mut orbit_of: std::collections::HashMap<usize, Vec<VertexId>> =
        std::collections::HashMap::new();
    for v in 0..n {
        orbit_of
            .entry(uf.find(v))
            .or_default()
            .push(VertexId(v as u32));
    }
    let mut orbits: Vec<Vec<VertexId>> = orbit_of.into_values().collect();
    for o in &mut orbits {
        o.sort_unstable();
    }
    orbits.sort_unstable_by_key(|o| o[0]);
    orbits
}

/// Orbits of size ≥ 2 — the paper's "sets of symmetric vertices"
/// (e.g. `{v1, v3}` and `{v2, v4}` for the motif in Figure 2).
pub fn symmetric_vertex_sets(g: &Graph) -> Vec<Vec<VertexId>> {
    automorphism_orbits(g)
        .into_iter()
        .filter(|o| o.len() > 1)
        .collect()
}

/// Whether an automorphism of `g` maps `u` to `v`.
pub fn are_symmetric(g: &Graph, u: VertexId, v: VertexId) -> bool {
    if u == v {
        return true;
    }
    let colors = refine_colors(g, None);
    if colors[u.index()] != colors[v.index()] {
        return false;
    }
    find_isomorphism_pinned(g, g, (u, v)).is_some()
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_motif_symmetry() {
        // The paper's motif g (Figure 2): square v1-v2-v3-v4 with the
        // diagonal v1-v3. Orbits: {v1, v3} and {v2, v4}.
        // Encode v1..v4 as 0..3; edges: 0-1, 1-2, 2-3, 3-0, 0-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let orbits = automorphism_orbits(&g);
        assert_eq!(
            orbits,
            vec![
                vec![VertexId(0), VertexId(2)],
                vec![VertexId(1), VertexId(3)],
            ]
        );
        let sym = symmetric_vertex_sets(&g);
        assert_eq!(sym.len(), 2);
    }

    #[test]
    fn path_orbits() {
        // Path 0-1-2-3: orbits {0,3}, {1,2}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let orbits = automorphism_orbits(&g);
        assert_eq!(
            orbits,
            vec![
                vec![VertexId(0), VertexId(3)],
                vec![VertexId(1), VertexId(2)],
            ]
        );
    }

    #[test]
    fn asymmetric_graph_has_singleton_orbits() {
        // Spider tree with arms of lengths 1, 2, 3 — the smallest
        // asymmetric tree. Center 0; arms 1 | 2-3 | 4-5-6.
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (2, 3), (0, 4), (4, 5), (5, 6)]);
        let orbits = automorphism_orbits(&g);
        assert_eq!(orbits.len(), 7, "orbits: {orbits:?}");
        assert!(symmetric_vertex_sets(&g).is_empty());
    }

    #[test]
    fn complete_graph_single_orbit() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges);
        let orbits = automorphism_orbits(&g);
        assert_eq!(orbits.len(), 1);
        assert_eq!(orbits[0].len(), 5);
    }

    #[test]
    fn star_center_vs_leaves() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let orbits = automorphism_orbits(&g);
        assert_eq!(orbits.len(), 2);
        assert_eq!(orbits[0], vec![VertexId(0)]);
        assert_eq!(orbits[1].len(), 4);
    }

    #[test]
    fn are_symmetric_agrees_with_orbits() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!(are_symmetric(&g, VertexId(0), VertexId(2)));
        assert!(are_symmetric(&g, VertexId(1), VertexId(3)));
        assert!(!are_symmetric(&g, VertexId(0), VertexId(1)));
        assert!(are_symmetric(&g, VertexId(1), VertexId(1)));
    }

    #[test]
    fn refinement_equal_but_not_symmetric() {
        // Disjoint C3 ∪ C4: every vertex has degree 2, so color refinement
        // leaves the graph monochromatic, yet no automorphism maps a C3
        // vertex to a C4 vertex. The pinned VF2 stage must separate them.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 3)]);
        let orbits = automorphism_orbits(&g);
        assert_eq!(orbits.len(), 2, "orbits: {orbits:?}");
        assert_eq!(orbits[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(orbits[1].len(), 4);
    }
}
