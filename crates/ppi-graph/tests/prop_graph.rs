//! Property-based tests for the graph substrate.

use ppi_graph::{
    algo, automorphism_orbits, canonical_form, canonical_graph, random, Graph, GraphBuilder,
    PpiNetwork, VertexId,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, SeedableRng};

fn graph_strategy(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn builder_and_incremental_insertion_agree(
        n in 2usize..15,
        edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let built = Graph::from_edges(n, &edges);
        let mut incremental = Graph::empty(n);
        for &(a, b) in &edges {
            incremental.add_edge(VertexId(a), VertexId(b));
        }
        prop_assert_eq!(built, incremental);
    }

    #[test]
    fn remove_undoes_add(g in graph_strategy(12, 30)) {
        let mut h = g.clone();
        let edges: Vec<_> = g.edges().collect();
        for e in &edges {
            prop_assert!(h.remove_edge(e.0, e.1));
        }
        prop_assert_eq!(h.edge_count(), 0);
        for e in &edges {
            prop_assert!(h.add_edge(e.0, e.1));
        }
        prop_assert_eq!(h, g);
    }

    #[test]
    fn components_partition_vertices(g in graph_strategy(20, 40)) {
        let comps = algo::connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.vertex_count());
        // No edges between different components.
        for (i, ci) in comps.iter().enumerate() {
            for cj in comps.iter().skip(i + 1) {
                for &u in ci {
                    for &v in cj {
                        prop_assert!(!g.has_edge(u, v));
                    }
                }
            }
        }
        prop_assert_eq!(algo::is_connected(&g), comps.len() <= 1);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_step(g in graph_strategy(15, 35), s in 0u32..15) {
        let s = VertexId(s % g.vertex_count() as u32);
        let dist = algo::bfs_distances(&g, s);
        prop_assert_eq!(dist[s.index()], 0);
        for e in g.edges() {
            let (du, dv) = (dist[e.0.index()], dist[e.1.index()]);
            if du != usize::MAX && dv != usize::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent distances differ by <= 1");
            } else {
                prop_assert_eq!(du, dv, "reachability is shared across an edge");
            }
        }
    }

    #[test]
    fn canonical_graph_is_deterministic_representative(
        g in graph_strategy(7, 12),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..g.vertex_count() as u32).collect();
        perm.shuffle(&mut rng);
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|e| (perm[e.0.index()], perm[e.1.index()]))
            .collect();
        let h = Graph::from_edges(g.vertex_count(), &edges);
        prop_assert_eq!(canonical_graph(&g), canonical_graph(&h));
        prop_assert_eq!(canonical_form(&g), canonical_form(&h));
    }

    #[test]
    fn orbit_members_are_truly_symmetric(g in graph_strategy(7, 12)) {
        for orbit in automorphism_orbits(&g) {
            for &v in &orbit[1..] {
                prop_assert!(
                    ppi_graph::automorphism::are_symmetric(&g, orbit[0], v),
                    "claimed orbit members must be exchangeable"
                );
            }
        }
    }

    #[test]
    fn gnm_generates_exact_sizes(n in 4usize..30, seed in any::<u64>()) {
        let m = n; // sparse
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random::erdos_renyi_gnm(n, m, &mut rng);
        prop_assert_eq!(g.vertex_count(), n);
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn edge_list_roundtrip(g in graph_strategy(15, 30)) {
        let net = PpiNetwork::from_graph(g.clone());
        let text = net.serialize();
        let back = PpiNetwork::parse(&text).unwrap();
        prop_assert_eq!(back.interaction_count(), g.edge_count());
        for e in g.edges() {
            let a = back.vertex(net.name(e.0));
            let b = back.vertex(net.name(e.1));
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!(back.graph().has_edge(a, b)),
                _ => prop_assert!(false, "names must survive the roundtrip"),
            }
        }
    }

    #[test]
    fn builder_growth_is_monotone(pairs in proptest::collection::vec((0u32..50, 0u32..50), 1..30)) {
        let mut b = GraphBuilder::new(0);
        for &(u, v) in &pairs {
            b.add_edge(VertexId(u), VertexId(v));
        }
        // Self-loop pairs are dropped entirely (they grow nothing).
        let max = pairs
            .iter()
            .filter(|&&(u, v)| u != v)
            .flat_map(|&(u, v)| [u, v])
            .max();
        let g = b.build();
        match max {
            Some(m) => prop_assert_eq!(g.vertex_count(), m as usize + 1),
            None => prop_assert_eq!(g.vertex_count(), 0),
        }
    }
}
