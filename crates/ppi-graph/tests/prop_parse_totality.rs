//! Malformed-input totality for the edge-list parser: arbitrary bytes
//! must never panic `PpiNetwork::parse`, and every rejection must name
//! the line and column it blames.

use ppi_graph::{PpiNetwork, VertexId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_is_total_over_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = PpiNetwork::parse(&text) {
            let msg = e.to_string();
            prop_assert!(msg.starts_with("line "), "error names a line: {}", msg);
            prop_assert!(msg.contains("column "), "error names a column: {}", msg);
        }
    }

    #[test]
    fn parse_is_total_over_liney_text(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..5),
            0..12,
        ),
    ) {
        // Token-shaped input exercises both the accept and reject arms
        // far more often than raw bytes do.
        const MENU: [&str; 6] = ["A", "B1", "#c", "x.y-z", "", "_"];
        let text = lines
            .iter()
            .map(|words| {
                words
                    .iter()
                    .map(|&w| MENU[w as usize % MENU.len()])
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n");
        match PpiNetwork::parse(&text) {
            Ok(net) => {
                // Accepted input must re-serialize and re-parse cleanly,
                // for networks the format can represent: names starting
                // with `#` would re-read as comments, and proteins seen
                // only in dropped self-loops vanish from the edge list.
                let representable = (0..net.protein_count())
                    .all(|i| !net.name(VertexId(i as u32)).starts_with('#'));
                if representable {
                    let back = PpiNetwork::parse(&net.serialize()).unwrap();
                    prop_assert!(back.protein_count() <= net.protein_count());
                    prop_assert_eq!(back.interaction_count(), net.interaction_count());
                }
            }
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.starts_with("line "), "error names a line: {}", msg);
            }
        }
    }
}
