//! Interruption determinism for the supervised precision–recall sweep:
//! a sweep cancelled at any work-tick budget and resumed from its
//! `EvalCheckpoint` must produce a bit-identical curve (f64 compared by
//! bits), and an injected panic inside a point computation surfaces as
//! a typed error whose completed prefix resumes just as cleanly.

use function_prediction::{EvalCheckpoint, LeaveOneOut, PrCurve, PredictionContext};
use go_ontology::TermId;
use par_util::{FaultAction, FaultPlan, Interrupted, RunContext};
use ppi_graph::Graph;

const N_PROTEINS: usize = 20;
const N_CATEGORIES: usize = 8;

/// Deterministic synthetic workload: protein `p` holds functions
/// `{p mod 8, (p*3) mod 8}` and its scores ramp away from `p` so the
/// rankings differ per protein and the sweep has real work at every k.
fn workload() -> (Vec<Vec<usize>>, Vec<TermId>, Vec<Vec<f64>>) {
    let functions: Vec<Vec<usize>> = (0..N_PROTEINS)
        .map(|p| {
            let mut f = vec![p % N_CATEGORIES];
            let second = (p * 3) % N_CATEGORIES;
            if second != f[0] {
                f.push(second);
            }
            f.sort_unstable();
            f
        })
        .collect();
    let terms: Vec<TermId> = (0..N_CATEGORIES).map(|c| TermId(c as u32)).collect();
    let scores: Vec<Vec<f64>> = (0..N_PROTEINS)
        .map(|p| {
            (0..N_CATEGORIES)
                .map(|c| 1.0 + ((p * 7 + c * 13) % 29) as f64 / 29.0)
                .collect()
        })
        .collect();
    (functions, terms, scores)
}

fn assert_curves_identical(a: &PrCurve, b: &PrCurve, what: &str) {
    assert_eq!(a.method, b.method, "{what}: method");
    assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.k, pb.k, "{what}: k");
        assert_eq!(
            pa.precision.to_bits(),
            pb.precision.to_bits(),
            "{what}: precision at k={}",
            pa.k
        );
        assert_eq!(
            pa.recall.to_bits(),
            pb.recall.to_bits(),
            "{what}: recall at k={}",
            pa.k
        );
    }
}

#[test]
fn cancel_sweep_and_resume_is_bit_identical() {
    let g = Graph::empty(N_PROTEINS);
    let (functions, terms, scores) = workload();
    let ctx = PredictionContext {
        network: &g,
        functions: &functions,
        n_categories: N_CATEGORIES,
        category_terms: &terms,
    };
    let reference = LeaveOneOut.curve_from_scores(&ctx, "sweep", &scores);
    assert_eq!(reference.points.len(), N_CATEGORIES);

    // Total tick volume of an uninterrupted sweep sizes the budget scan.
    let metered = RunContext::metered();
    LeaveOneOut
        .resume_curve_from_scores(&ctx, "sweep", &scores, EvalCheckpoint::default(), &metered)
        .expect("a metered context never trips, so the sweep completes");
    let total = metered.ticks_spent();
    assert!(total > 0, "the sweep must spend work ticks");

    let mut interrupted_runs = 0;
    for budget in 0..=total + 1 {
        let what = format!("budget={budget}");
        let run = RunContext::with_tick_budget(budget);
        let curve = match LeaveOneOut.resume_curve_from_scores(
            &ctx,
            "sweep",
            &scores,
            EvalCheckpoint::default(),
            &run,
        ) {
            Ok(curve) => curve,
            Err(Interrupted::Cancelled { checkpoint }) => {
                interrupted_runs += 1;
                // The prefix is always clean: point i is k = i + 1.
                for (i, p) in checkpoint.points.iter().enumerate() {
                    assert_eq!(p.k, i + 1, "{what}: checkpoint prefix is dense");
                }
                LeaveOneOut
                    .resume_curve_from_scores(
                        &ctx,
                        "sweep",
                        &scores,
                        checkpoint,
                        &RunContext::unbounded(),
                    )
                    .unwrap_or_else(|_| panic!("{what}: unbounded resume must complete"))
            }
            Err(Interrupted::WorkerPanicked { panic, .. }) => {
                panic!("{what}: no fault was injected, yet a worker panicked: {panic}")
            }
        };
        assert_curves_identical(&reference, &curve, &what);
    }
    assert!(
        interrupted_runs > 0,
        "the budget scan must actually interrupt some sweeps"
    );
}

#[test]
fn injected_panic_in_a_point_is_typed_and_prefix_resumes() {
    let g = Graph::empty(N_PROTEINS);
    let (functions, terms, scores) = workload();
    let ctx = PredictionContext {
        network: &g,
        functions: &functions,
        n_categories: N_CATEGORIES,
        category_terms: &terms,
    };
    let reference = LeaveOneOut.curve_from_scores(&ctx, "sweep", &scores);

    // Hits are 0-based: arm `hit` fires while computing point k = hit+1,
    // so exactly `hit` points survive in the checkpoint.
    for hit in [0u64, 3, (N_CATEGORIES - 1) as u64] {
        let plan = FaultPlan::new().inject("prediction.eval_k", hit, FaultAction::Panic);
        let run = RunContext::unbounded().with_faults(plan);
        let err = LeaveOneOut
            .resume_curve_from_scores(&ctx, "sweep", &scores, EvalCheckpoint::default(), &run)
            .expect_err("the injected panic must interrupt the sweep");
        let checkpoint = match err {
            Interrupted::WorkerPanicked { panic, checkpoint } => {
                assert!(
                    panic.detail.contains("prediction.eval_k"),
                    "panic detail names the site: {panic}"
                );
                assert_eq!(
                    checkpoint.points.len(),
                    hit as usize,
                    "the completed prefix stops just before the armed point"
                );
                checkpoint
            }
            Interrupted::Cancelled { .. } => {
                panic!("hit {hit}: expected a typed worker panic, got plain cancellation")
            }
        };
        let curve = LeaveOneOut
            .resume_curve_from_scores(&ctx, "sweep", &scores, checkpoint, &RunContext::unbounded())
            .expect("resume after a contained panic completes");
        assert_curves_identical(&reference, &curve, &format!("panic at hit {hit}"));
    }
}

#[test]
fn stale_checkpoint_longer_than_the_sweep_is_truncated() {
    let g = Graph::empty(N_PROTEINS);
    let (functions, terms, scores) = workload();
    let ctx = PredictionContext {
        network: &g,
        functions: &functions,
        n_categories: N_CATEGORIES,
        category_terms: &terms,
    };
    let reference = LeaveOneOut.curve_from_scores(&ctx, "sweep", &scores);
    // A checkpoint with more points than the sweep produces (e.g. from a
    // run over a larger category set) is clipped, not propagated.
    let mut bloated = EvalCheckpoint {
        points: reference.points.clone(),
    };
    bloated.points.extend_from_slice(&reference.points);
    let curve = LeaveOneOut
        .resume_curve_from_scores(&ctx, "sweep", &scores, bloated, &RunContext::unbounded())
        .expect("a clipped checkpoint still completes");
    assert_curves_identical(&reference, &curve, "bloated checkpoint");
}
