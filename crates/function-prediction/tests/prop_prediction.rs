//! Property-based tests for the prediction stack: score-matrix
//! invariants shared by all methods, PR-curve laws, and distance metric
//! properties.

use function_prediction::{
    czekanowski_dice, neighbor_joining, Chi2Predictor, FunctionPredictor, LeaveOneOut,
    MrfPredictor, NeighborCountingPredictor, PredictionContext, ProdistinPredictor,
};
use go_ontology::TermId;
use ppi_graph::{Graph, VertexId};
use proptest::prelude::*;

fn world_strategy() -> impl Strategy<Value = (Graph, Vec<Vec<usize>>)> {
    (4usize..16, 2usize..5).prop_flat_map(|(n, cats)| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n),
            proptest::collection::vec(
                proptest::collection::vec(0..cats, 0..3),
                n..=n,
            ),
        )
            .prop_map(move |(edges, mut functions)| {
                for f in &mut functions {
                    f.sort_unstable();
                    f.dedup();
                }
                (Graph::from_edges(n, &edges), functions)
            })
    })
}

fn n_categories(functions: &[Vec<usize>]) -> usize {
    functions
        .iter()
        .flat_map(|f| f.iter().copied())
        .max()
        .map_or(1, |m| m + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_methods_produce_finite_full_matrices((g, functions) in world_strategy()) {
        let cats = n_categories(&functions);
        let terms: Vec<TermId> = (0..cats as u32).map(TermId).collect();
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: cats,
            category_terms: &terms,
        };
        let mrf = MrfPredictor { folds: 3, iterations: 5, beta: 1.0 };
        let prodistin = ProdistinPredictor::default();
        let methods: Vec<&dyn FunctionPredictor> =
            vec![&NeighborCountingPredictor, &Chi2Predictor, &mrf, &prodistin];
        for m in methods {
            let scores = m.predict_all(&ctx);
            prop_assert_eq!(scores.len(), g.vertex_count(), "{}", m.name());
            for row in &scores {
                prop_assert_eq!(row.len(), cats);
                for &s in row {
                    prop_assert!(s.is_finite(), "{} produced {}", m.name(), s);
                }
            }
        }
    }

    #[test]
    fn pr_curve_recall_is_monotone_in_k((g, functions) in world_strategy()) {
        let cats = n_categories(&functions);
        let terms: Vec<TermId> = (0..cats as u32).map(TermId).collect();
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: cats,
            category_terms: &terms,
        };
        let curve = LeaveOneOut.evaluate(&ctx, &NeighborCountingPredictor);
        prop_assert_eq!(curve.points.len(), cats);
        let mut prev = 0.0;
        for p in &curve.points {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
            prop_assert!(p.recall >= prev - 1e-12);
            prev = p.recall;
        }
    }

    #[test]
    fn czekanowski_dice_is_a_bounded_symmetric_distance((g, _) in world_strategy()) {
        let n = g.vertex_count() as u32;
        for i in 0..n.min(6) {
            prop_assert_eq!(czekanowski_dice(&g, VertexId(i), VertexId(i)), 0.0);
            for j in 0..n.min(6) {
                let d = czekanowski_dice(&g, VertexId(i), VertexId(j));
                prop_assert!((0.0..=1.0).contains(&d));
                prop_assert!(
                    (d - czekanowski_dice(&g, VertexId(j), VertexId(i))).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn nj_tree_structure_is_sound(
        n in 3usize..10,
        seed in proptest::collection::vec(0.01f64..1.0, 64),
    ) {
        // Build a random symmetric distance matrix.
        let mut d = vec![vec![0.0; n]; n];
        let mut it = seed.into_iter().cycle();
        for i in 0..n {
            for j in i + 1..n {
                let v = it.next().unwrap();
                d[i][j] = v;
                d[j][i] = v;
            }
        }
        let tree = neighbor_joining(&d);
        prop_assert_eq!(tree.n_leaves, n);
        let root = tree.parent.len() - 1;
        prop_assert_eq!(tree.leaves_under(root).len(), n);
        // Every non-root node's parent lists it as a child.
        for v in 0..tree.parent.len() {
            match tree.parent[v] {
                Some(p) => prop_assert!(tree.children[p].contains(&v)),
                None => prop_assert_eq!(v, root),
            }
        }
        // Leaves have no children; internal nodes have >= 2.
        for v in 0..tree.parent.len() {
            if v < n {
                prop_assert!(tree.children[v].is_empty());
            } else {
                prop_assert!(tree.children[v].len() >= 2);
            }
        }
    }

    #[test]
    fn nc_scores_equal_manual_neighbor_count((g, functions) in world_strategy()) {
        let cats = n_categories(&functions);
        let terms: Vec<TermId> = (0..cats as u32).map(TermId).collect();
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: cats,
            category_terms: &terms,
        };
        let scores = NeighborCountingPredictor.predict_all(&ctx);
        for p in 0..g.vertex_count() {
            for c in 0..cats {
                let manual = g
                    .neighbors(VertexId(p as u32))
                    .iter()
                    .filter(|&&u| functions[u as usize].contains(&c))
                    .count() as f64;
                prop_assert_eq!(scores[p][c], manual);
            }
        }
    }
}
