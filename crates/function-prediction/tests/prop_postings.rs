//! Property-based byte-identity oracle for the posting-list predictor:
//! [`PostingIndex::predict_into`] must reproduce the full-scan
//! [`LabeledMotifPredictor`] (the retained oracle) *bit for bit* on
//! arbitrary worlds — mixed motif sizes, repeated proteins within an
//! occurrence, zero-strength motifs, unannotated proteins, and empty
//! dictionaries. Equal-up-to-epsilon is not enough: the serving layer
//! promises byte-identical artifacts, so the score accumulation order
//! itself is the contract.

use function_prediction::{
    rank_scores, FunctionPredictor, LabeledMotifPredictor, PostingIndex, PredictionContext,
    PredictScratch,
};
use go_ontology::{Namespace, TermId};
use lamofinder::{LabeledMotif, LabelingScheme, VertexLabel};
use motif_finder::Occurrence;
use ppi_graph::{Graph, VertexId};
use proptest::prelude::*;

/// Random prediction world: `n` proteins with sparse annotations, and a
/// motif dictionary of mixed sizes with arbitrary occurrence placements
/// (including a protein occupying several positions of one occurrence).
#[derive(Debug, Clone)]
struct World {
    n: usize,
    cats: usize,
    functions: Vec<Vec<usize>>,
    /// Per motif: (size, flat vertex seed, uniqueness percent or None).
    /// The Option is seeded as (has, percent) — the vendored proptest
    /// subset has no `option::of` combinator.
    motif_seeds: Vec<(usize, Vec<u32>, (bool, u8))>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    (4usize..14, 2usize..5).prop_flat_map(|(n, cats)| {
        (
            proptest::collection::vec(proptest::collection::vec(0..cats, 0..3), n..=n),
            proptest::collection::vec(
                (
                    2usize..5,
                    proptest::collection::vec(any::<u32>(), 0..24),
                    (any::<bool>(), 0u8..=100),
                ),
                0..5,
            ),
        )
            .prop_map(move |(mut functions, motif_seeds)| {
                for f in &mut functions {
                    f.sort_unstable();
                    f.dedup();
                }
                World {
                    n,
                    cats,
                    functions,
                    motif_seeds,
                }
            })
    })
}

fn build_motifs(w: &World) -> Vec<LabeledMotif> {
    w.motif_seeds
        .iter()
        .map(|(k, seed, uniq)| {
            let occurrences: Vec<Occurrence> = seed
                .chunks_exact(*k)
                .map(|chunk| {
                    Occurrence::new(chunk.iter().map(|&v| VertexId(v % w.n as u32)).collect())
                })
                .collect();
            let edges: Vec<(u32, u32)> = (0..*k as u32 - 1).map(|i| (i, i + 1)).collect();
            LabeledMotif {
                pattern: Graph::from_edges(*k, &edges),
                namespace: Namespace::BiologicalProcess,
                scheme: LabelingScheme::new(vec![VertexLabel::unknown(); *k]),
                motif_frequency: occurrences.len(),
                occurrences,
                uniqueness: uniq.0.then(|| f64::from(uniq.1) / 100.0),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole parity law: for every protein, the posting path's
    /// ranked output equals ranking the oracle's score row, and each
    /// score matches the oracle's f64 down to the last bit.
    #[test]
    fn posting_predict_is_bitwise_identical_to_full_scan(w in world_strategy()) {
        let motifs = build_motifs(&w);
        let network = Graph::empty(w.n);
        let terms: Vec<TermId> = (0..w.cats as u32).map(TermId).collect();
        let ctx = PredictionContext {
            network: &network,
            functions: &w.functions,
            n_categories: w.cats,
            category_terms: &terms,
        };
        let oracle = LabeledMotifPredictor::new(motifs.clone()).predict_all(&ctx);

        let index = PostingIndex::build(&motifs, &w.functions, w.cats);
        prop_assert!(index.validate().is_ok());
        let mut scratch = PredictScratch::new();
        let mut want = Vec::new();
        for p in 0..w.n {
            let (got, consumed) = index.predict_into(p, &mut scratch);
            prop_assert_eq!(consumed, index.postings_of(p).len());
            rank_scores(&oracle[p], &mut want);
            prop_assert_eq!(got.len(), want.len());
            for (g, o) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, o.0, "protein {} rank order", p);
                prop_assert_eq!(
                    g.1.to_bits(),
                    o.1.to_bits(),
                    "protein {} category {}: {} vs {}", p, g.0, g.1, o.1
                );
            }
        }
    }

    /// Work bound: predict touches exactly the protein's postings —
    /// their count equals the protein's occupancy over all positive-LMS
    /// motifs, independent of dictionary size.
    #[test]
    fn posting_count_equals_positive_strength_occupancy(w in world_strategy()) {
        let motifs = build_motifs(&w);
        let predictor = LabeledMotifPredictor::new(motifs.clone());
        let index = PostingIndex::build(&motifs, &w.functions, w.cats);
        for p in 0..w.n {
            let manual: usize = motifs
                .iter()
                .enumerate()
                .filter(|(mi, _)| predictor.lms(*mi) > 0.0)
                .map(|(_, m)| {
                    m.occurrences
                        .iter()
                        .flat_map(|o| &o.vertices)
                        .filter(|v| v.index() == p)
                        .count()
                })
                .sum();
            prop_assert_eq!(index.postings_of(p).len(), manual, "protein {}", p);
        }
    }
}
