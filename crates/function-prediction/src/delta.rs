//! Segment-level incremental maintenance of the [`PostingIndex`].
//!
//! The posting index is motif-major in everything it derives — one
//! count plane and one posting run per motif — but stores postings
//! protein-major, so a naive "patch the dirty motif" would still
//! re-walk every occurrence to rebuild the interleave.
//! [`SegmentedIndex`] keeps the per-motif intermediates (the *segments*)
//! alive between deltas: a motif whose stored occurrences did not
//! change reuses its plane slab and posting run bit-for-bit, and only
//! the dirty segments are recomputed. Assembly then replays
//! [`PostingIndex::build`]'s exact visit order over the segments, so
//! the output is byte-identical to a from-scratch build (pinned by
//! `tests/prop_postings.rs`-style equality tests in this module and the
//! delta proptests).
//!
//! LMS (Eq. 4) rows are always recomputed — they are `O(motifs)` and
//! normalized by a per-size maximum, so one dirty motif can move every
//! same-size row. What survives a sign flip is decided per segment: a
//! plane is a function of `(occurrences, functions, sign(lms))`, so a
//! reused segment is only valid while its motif's zero-strength status
//! is unchanged; the updater checks this internally.

use crate::lms::lms_scores;
use crate::postings::{Posting, PostingIndex};
use lamofinder::LabeledMotif;
use std::collections::HashMap;

/// The per-motif intermediates of one [`PostingIndex::build`]: the
/// count plane slab and the posting run in full-scan visit order.
#[derive(Clone, Debug, Default, PartialEq)]
struct MotifSegment {
    /// `size * C` Eq. 5 vote counts, or empty for zero-strength motifs.
    plane: Vec<f64>,
    /// `(protein, occurrence, position, multiplicity)` in visit order
    /// (occurrence-major, then position); empty for zero-strength.
    run: Vec<(u32, u32, u32, u32)>,
}

/// A [`PostingIndex`] factory that remembers per-motif segments so an
/// edge delta only recomputes the dirty ones.
pub struct SegmentedIndex {
    n_categories: usize,
    protein_count: usize,
    lms: Vec<f64>,
    segments: Vec<MotifSegment>,
}

/// What one [`SegmentedIndex::update`] recomputed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexDeltaStats {
    /// Segments (plane slab + posting run) copied from the previous
    /// dictionary unchanged.
    pub segments_reused: usize,
    /// Segments recomputed (dirty motifs, new motifs, or zero-strength
    /// flips).
    pub segments_rebuilt: usize,
}

impl SegmentedIndex {
    /// Build the initial index and remember its segments.
    pub fn build(
        motifs: &[LabeledMotif],
        functions: &[Vec<usize>],
        n_categories: usize,
    ) -> (SegmentedIndex, PostingIndex) {
        let mut state = SegmentedIndex {
            n_categories,
            protein_count: functions.len(),
            lms: Vec::new(),
            segments: Vec::new(),
        };
        let reuse = vec![None; motifs.len()];
        let (index, _) = state.update(motifs, functions, &reuse);
        (state, index)
    }

    /// Rebuild the index for a revised dictionary. `reuse[i] = Some(j)`
    /// asserts that motif `i` has the same size and the same stored
    /// occurrence list as motif `j` of the previous dictionary (the
    /// caller's cleanliness proof — frequency and uniqueness may
    /// differ; they do not reach the segments); `None` forces a
    /// recompute. `functions` must be the same table across deltas
    /// (annotations do not change under an edge delta).
    pub fn update(
        &mut self,
        motifs: &[LabeledMotif],
        functions: &[Vec<usize>],
        reuse: &[Option<usize>],
    ) -> (PostingIndex, IndexDeltaStats) {
        assert_eq!(motifs.len(), reuse.len());
        assert_eq!(functions.len(), self.protein_count, "annotation table is delta-invariant");
        let lms = lms_scores(motifs);
        let mut stats = IndexDeltaStats::default();
        let mut old_segments: Vec<Option<MotifSegment>> =
            std::mem::take(&mut self.segments).into_iter().map(Some).collect();
        let mut segments: Vec<MotifSegment> = Vec::with_capacity(motifs.len());
        for (mi, motif) in motifs.iter().enumerate() {
            let zero = lms[mi] <= 0.0;
            let reused = reuse[mi].and_then(|j| {
                // A segment survives only if its zero-strength status
                // does too — the plane of a flipped motif changes shape.
                let was_zero = self.lms.get(j).map(|&l| l <= 0.0);
                if was_zero == Some(zero) {
                    old_segments.get_mut(j).and_then(Option::take)
                } else {
                    None
                }
            });
            match reused {
                Some(seg) => {
                    stats.segments_reused += 1;
                    segments.push(seg);
                }
                None => {
                    stats.segments_rebuilt += 1;
                    segments.push(compute_segment(
                        motif,
                        functions,
                        self.n_categories,
                        zero,
                    ));
                }
            }
        }
        self.lms = lms.clone();
        self.segments = segments;
        (self.assemble(lms, functions), stats)
    }

    /// Replay [`PostingIndex::build`]'s assembly over the segments.
    fn assemble(&self, lms: Vec<f64>, functions: &[Vec<usize>]) -> PostingIndex {
        let protein_count = self.protein_count;
        let mut count_offsets: Vec<u32> = Vec::with_capacity(self.segments.len() + 1);
        count_offsets.push(0);
        let mut counts: Vec<f64> = Vec::new();
        let mut per_protein = vec![0u32; protein_count];
        for seg in &self.segments {
            counts.extend_from_slice(&seg.plane);
            count_offsets.push(counts.len() as u32);
            for &(p, ..) in &seg.run {
                per_protein[p as usize] += 1;
            }
        }

        let mut posting_offsets: Vec<u32> = Vec::with_capacity(protein_count + 1);
        let mut total = 0u32;
        posting_offsets.push(0);
        for &n in &per_protein {
            total += n;
            posting_offsets.push(total);
        }
        let mut cursor: Vec<u32> = posting_offsets[..protein_count].to_vec();
        let mut postings = vec![
            Posting {
                motif: 0,
                occurrence: 0,
                position: 0,
                multiplicity: 0,
            };
            total as usize
        ];
        for (mi, seg) in self.segments.iter().enumerate() {
            for &(p, occurrence, position, multiplicity) in &seg.run {
                let slot = cursor[p as usize] as usize;
                cursor[p as usize] += 1;
                postings[slot] = Posting {
                    motif: mi as u32,
                    occurrence,
                    position,
                    multiplicity,
                };
            }
        }

        let mut function_offsets: Vec<u32> = Vec::with_capacity(protein_count + 1);
        function_offsets.push(0);
        let mut flat_functions: Vec<u32> = Vec::new();
        for f in functions {
            flat_functions.extend(f.iter().map(|&c| c as u32));
            function_offsets.push(flat_functions.len() as u32);
        }

        PostingIndex {
            n_categories: self.n_categories as u32,
            lms,
            posting_offsets,
            postings,
            count_offsets,
            counts,
            function_offsets,
            functions: flat_functions,
        }
    }
}

/// Compute one motif's segment exactly as [`PostingIndex::build`]'s
/// two passes visit it.
fn compute_segment(
    motif: &LabeledMotif,
    functions: &[Vec<usize>],
    n_categories: usize,
    zero_strength: bool,
) -> MotifSegment {
    if zero_strength {
        return MotifSegment::default();
    }
    let protein_count = functions.len();
    let k = motif.size();
    let mut plane = vec![0.0f64; k * n_categories];
    for occ in &motif.occurrences {
        for (v, &protein) in occ.vertices.iter().enumerate() {
            for &c in &functions[protein.index()] {
                plane[v * n_categories + c] += 1.0;
            }
        }
    }
    let mut occupancy: HashMap<(u32, u32), u32> = HashMap::new();
    for occ in &motif.occurrences {
        for (v, &protein) in occ.vertices.iter().enumerate() {
            *occupancy.entry((protein.0, v as u32)).or_insert(0) += 1;
        }
    }
    let mut run = Vec::new();
    for (oi, occ) in motif.occurrences.iter().enumerate() {
        for (v, &protein) in occ.vertices.iter().enumerate() {
            if protein.index() >= protein_count {
                continue;
            }
            run.push((
                protein.0,
                oi as u32,
                v as u32,
                occupancy
                    .get(&(protein.0, v as u32))
                    .copied()
                    .unwrap_or(0),
            ));
        }
    }
    MotifSegment { plane, run }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::Namespace;
    use lamofinder::{LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    /// Deterministic toy dictionary over `proteins` proteins.
    fn motif(seed: u64, size: usize, n_occ: usize, proteins: u32) -> LabeledMotif {
        let edges: Vec<(u32, u32)> = (0..size as u32 - 1).map(|i| (i, i + 1)).collect();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move |m: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m as u64) as u32
        };
        LabeledMotif {
            pattern: Graph::from_edges(size, &edges),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); size]),
            occurrences: (0..n_occ)
                .map(|_| {
                    Occurrence::new((0..size).map(|_| VertexId(next(proteins))).collect())
                })
                .collect(),
            motif_frequency: n_occ,
            uniqueness: None,
        }
    }

    fn functions(proteins: usize, n_categories: usize) -> Vec<Vec<usize>> {
        (0..proteins)
            .map(|p| {
                let mut f: Vec<usize> = vec![p % n_categories];
                if p % 3 == 0 {
                    f.push((p / 3) % n_categories);
                }
                f.sort_unstable();
                f.dedup();
                f
            })
            .collect()
    }

    #[test]
    fn initial_build_matches_batch_build() {
        let motifs: Vec<LabeledMotif> =
            (0..6).map(|i| motif(i, 3 + (i as usize % 2), 5, 20)).collect();
        let funcs = functions(20, 4);
        let (_, ours) = SegmentedIndex::build(&motifs, &funcs, 4);
        assert_eq!(ours, PostingIndex::build(&motifs, &funcs, 4));
    }

    #[test]
    fn update_with_reuse_matches_batch_build() {
        let funcs = functions(25, 5);
        let mut motifs: Vec<LabeledMotif> =
            (0..8).map(|i| motif(i, 3, 4 + i as usize % 3, 25)).collect();
        let (mut state, _) = SegmentedIndex::build(&motifs, &funcs, 5);

        // Revision: motif 2 gains an occurrence (dirty), motif 5 is
        // dropped, a new motif appears at the end; the rest are clean.
        motifs[2].occurrences.push(Occurrence::new(vec![
            VertexId(1),
            VertexId(2),
            VertexId(3),
        ]));
        motifs[2].motif_frequency += 1;
        motifs.remove(5);
        motifs.push(motif(99, 4, 6, 25));
        let reuse: Vec<Option<usize>> = (0..motifs.len())
            .map(|i| match i {
                2 => None,                   // dirty
                7 => None,                   // new
                i if i < 5 => Some(i),       // clean, same position
                i => Some(i + 1),            // clean, shifted past the drop
            })
            .collect();
        let (ours, stats) = state.update(&motifs, &funcs, &reuse);
        assert_eq!(ours, PostingIndex::build(&motifs, &funcs, 5));
        assert_eq!(stats.segments_reused, 6);
        assert_eq!(stats.segments_rebuilt, 2);
    }

    #[test]
    fn zero_strength_flip_forces_recompute() {
        let funcs = functions(20, 4);
        let mut motifs: Vec<LabeledMotif> = (0..4).map(|i| motif(i, 3, 5, 20)).collect();
        // Motif 1 starts zero-strength (uniqueness 0 ⇒ raw = 0).
        motifs[1].uniqueness = Some(0.0);
        let (mut state, initial) = SegmentedIndex::build(&motifs, &funcs, 4);
        assert_eq!(initial, PostingIndex::build(&motifs, &funcs, 4));
        assert!(initial.lms[1] <= 0.0);

        // Same occurrences, but the motif regains strength: the claimed
        // clean reuse must be refused internally and the plane rebuilt.
        motifs[1].uniqueness = Some(1.0);
        let reuse: Vec<Option<usize>> = (0..4).map(Some).collect();
        let (ours, stats) = state.update(&motifs, &funcs, &reuse);
        assert_eq!(ours, PostingIndex::build(&motifs, &funcs, 4));
        assert!(ours.lms[1] > 0.0);
        assert_eq!(stats.segments_rebuilt, 1);
        assert_eq!(stats.segments_reused, 3);
    }

    #[test]
    fn repeated_updates_stay_identical() {
        let funcs = functions(30, 6);
        let mut motifs: Vec<LabeledMotif> =
            (0..5).map(|i| motif(i * 7 + 1, 3 + i as usize % 3, 6, 30)).collect();
        let (mut state, _) = SegmentedIndex::build(&motifs, &funcs, 6);
        for round in 0..4u64 {
            // Rotate: one motif replaced per round, others clean.
            let victim = (round as usize * 2) % motifs.len();
            motifs[victim] = motif(100 + round, 3, 5 + round as usize, 30);
            let reuse: Vec<Option<usize>> = (0..motifs.len())
                .map(|i| if i == victim { None } else { Some(i) })
                .collect();
            let (ours, _) = state.update(&motifs, &funcs, &reuse);
            assert_eq!(ours, PostingIndex::build(&motifs, &funcs, 6));
        }
    }
}
