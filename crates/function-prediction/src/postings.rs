//! Posting-list form of the Eq. 5 predictor — the serving layer's
//! O(postings) read path (DESIGN.md §16).
//!
//! [`LabeledMotifPredictor`](crate::LabeledMotifPredictor) answers
//! "which functions does protein `p` have?" by re-walking **every**
//! occurrence of **every** labeled motif, even though `p` participates
//! in only a handful. [`PostingIndex`] inverts that scan once at build
//! time: for each protein it records the sorted list of
//! `(motif, occurrence, position)` triples where the protein appears
//! (its *postings*), and for each `(motif, position)` the per-category
//! vote counts `δ` that Eq. 5 reads. A prediction is then a single merge
//! over `postings(p)` — O(|postings(p)| · C) instead of
//! O(Σ_g |g| · |occ(g)| · C) — with zero allocation when the caller
//! reuses a [`PredictScratch`].
//!
//! The two paths are **bitwise identical**: postings are ordered exactly
//! as the full scan visits them (motif-major, then occurrence, then
//! position), the count planes are accumulated in the same order with
//! the same `f64` operations, and the ranked output goes through the
//! shared [`rank_scores`]. The full scan stays in the tree as the
//! property-tested oracle (`tests/prop_postings.rs`).

use crate::lms::lms_scores;
use lamofinder::LabeledMotif;
use std::collections::HashMap;

/// One appearance of a protein in the labeled-motif dictionary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Motif index in the dictionary.
    pub motif: u32,
    /// Occurrence index within the motif.
    pub occurrence: u32,
    /// Pattern position the protein plays in that occurrence.
    pub position: u32,
    /// How many occurrences of this motif place the protein at this
    /// position (the Eq. 5 self-exclusion multiplicity, precomputed so
    /// the read path never rescans occurrences).
    pub multiplicity: u32,
}

/// Caller-owned scratch for [`PostingIndex::predict_into`]: reusing one
/// per worker keeps the read path allocation-free after warm-up.
#[derive(Default)]
pub struct PredictScratch {
    scores: Vec<f64>,
    ranked: Vec<(u32, f64)>,
}

impl PredictScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> PredictScratch {
        PredictScratch::default()
    }

    /// The ranked categories of the most recent prediction.
    pub fn ranked(&self) -> &[(u32, f64)] {
        &self.ranked
    }
}

/// Per-protein posting lists plus the Eq. 5 count planes, built once
/// from a labeled-motif dictionary and an annotation table.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PostingIndex {
    /// Number of functional categories `C`.
    pub n_categories: u32,
    /// LMS (Eq. 4) per motif — kept for all motifs so diagnostics line
    /// up with the dictionary, though zero-strength motifs emit nothing.
    pub lms: Vec<f64>,
    /// Posting offsets per protein (`protein_count + 1` entries).
    pub posting_offsets: Vec<u32>,
    /// Postings, sorted by `(motif, occurrence, position)` within each
    /// protein — the exact order the full-scan oracle visits.
    pub postings: Vec<Posting>,
    /// Count-plane offsets per motif (`motif_count + 1` entries), in
    /// units of `f64`; motif `m` position `v` category `c` lives at
    /// `counts[count_offsets[m] + v * C + c]`. Zero-strength motifs own
    /// an empty plane.
    pub count_offsets: Vec<u32>,
    /// δ count planes: per (motif, position) the number of occurrences
    /// whose protein at that position carries each category.
    pub counts: Vec<f64>,
    /// Category offsets per protein (`protein_count + 1` entries).
    pub function_offsets: Vec<u32>,
    /// Sorted category indices per protein (the generalization of the
    /// annotations the predictor excludes self-votes against).
    pub functions: Vec<u32>,
}

impl PostingIndex {
    /// Build the index. `functions[p]` lists protein `p`'s category
    /// indices (each `< n_categories`), exactly as handed to the
    /// full-scan predictor's `PredictionContext`.
    pub fn build(
        motifs: &[LabeledMotif],
        functions: &[Vec<usize>],
        n_categories: usize,
    ) -> PostingIndex {
        let protein_count = functions.len();
        let lms = lms_scores(motifs);

        // Pass 1: per-protein posting counts (for exact allocation) and
        // the count planes, accumulated in full-scan order.
        let mut per_protein = vec![0u32; protein_count];
        let mut count_offsets: Vec<u32> = Vec::with_capacity(motifs.len() + 1);
        count_offsets.push(0);
        let mut counts: Vec<f64> = Vec::new();
        for (mi, motif) in motifs.iter().enumerate() {
            if lms[mi] <= 0.0 {
                count_offsets.push(counts.len() as u32);
                continue;
            }
            let k = motif.size();
            let plane_start = counts.len();
            counts.resize(plane_start + k * n_categories, 0.0);
            for occ in &motif.occurrences {
                for (v, &protein) in occ.vertices.iter().enumerate() {
                    let p = protein.index();
                    if p < protein_count {
                        per_protein[p] += 1;
                    }
                    for &c in &functions[protein.index()] {
                        counts[plane_start + v * n_categories + c] += 1.0;
                    }
                }
            }
            count_offsets.push(counts.len() as u32);
        }

        // Pass 2: fill posting lists. Iterating motifs/occurrences/
        // positions in order appends each protein's postings already
        // sorted by (motif, occurrence, position).
        let mut posting_offsets: Vec<u32> = Vec::with_capacity(protein_count + 1);
        let mut total = 0u32;
        posting_offsets.push(0);
        for &n in &per_protein {
            total += n;
            posting_offsets.push(total);
        }
        let mut cursor: Vec<u32> = posting_offsets[..protein_count].to_vec();
        let mut postings = vec![
            Posting {
                motif: 0,
                occurrence: 0,
                position: 0,
                multiplicity: 0,
            };
            total as usize
        ];
        // Multiplicity of (protein, position) within one motif; the map
        // is rebuilt per motif and only ever *looked up*, never
        // iterated, so no hash order reaches the output.
        let mut occupancy: HashMap<(u32, u32), u32> = HashMap::new();
        for (mi, motif) in motifs.iter().enumerate() {
            if lms[mi] <= 0.0 {
                continue;
            }
            occupancy.clear();
            for occ in &motif.occurrences {
                for (v, &protein) in occ.vertices.iter().enumerate() {
                    *occupancy.entry((protein.0, v as u32)).or_insert(0) += 1;
                }
            }
            for (oi, occ) in motif.occurrences.iter().enumerate() {
                for (v, &protein) in occ.vertices.iter().enumerate() {
                    let p = protein.index();
                    if p >= protein_count {
                        continue;
                    }
                    let slot = cursor[p] as usize;
                    cursor[p] += 1;
                    postings[slot] = Posting {
                        motif: mi as u32,
                        occurrence: oi as u32,
                        position: v as u32,
                        multiplicity: occupancy
                            .get(&(protein.0, v as u32))
                            .copied()
                            .unwrap_or(0),
                    };
                }
            }
        }

        let mut function_offsets: Vec<u32> = Vec::with_capacity(protein_count + 1);
        function_offsets.push(0);
        let mut flat_functions: Vec<u32> = Vec::new();
        for f in functions {
            flat_functions.extend(f.iter().map(|&c| c as u32));
            function_offsets.push(flat_functions.len() as u32);
        }

        PostingIndex {
            n_categories: n_categories as u32,
            lms,
            posting_offsets,
            postings,
            count_offsets,
            counts,
            function_offsets,
            functions: flat_functions,
        }
    }

    /// Number of proteins the index covers.
    pub fn protein_count(&self) -> usize {
        self.posting_offsets.len().saturating_sub(1)
    }

    /// Number of motifs in the underlying dictionary.
    pub fn motif_count(&self) -> usize {
        self.lms.len()
    }

    /// Protein `p`'s postings.
    pub fn postings_of(&self, p: usize) -> &[Posting] {
        &self.postings[self.posting_offsets[p] as usize..self.posting_offsets[p + 1] as usize]
    }

    /// Protein `p`'s category indices (sorted).
    pub fn functions_of(&self, p: usize) -> &[u32] {
        &self.functions[self.function_offsets[p] as usize..self.function_offsets[p + 1] as usize]
    }

    /// Eq. 5 for one protein: merge `postings(p)` into category scores,
    /// then rank. Returns the ranked `(category, score)` list borrowed
    /// from the scratch, and the number of postings consumed (the
    /// serving layer's work-tick count for this query).
    ///
    /// Bitwise identical to ranking the matching row of the full-scan
    /// predictor's `predict_all`.
    pub fn predict_into<'s>(
        &self,
        p: usize,
        scratch: &'s mut PredictScratch,
    ) -> (&'s [(u32, f64)], usize) {
        let c_n = self.n_categories as usize;
        scratch.scores.clear();
        scratch.scores.resize(c_n, 0.0);
        let own_functions =
            &self.functions[self.function_offsets[p] as usize..self.function_offsets[p + 1] as usize];
        let postings =
            &self.postings[self.posting_offsets[p] as usize..self.posting_offsets[p + 1] as usize];
        for posting in postings {
            let m = posting.motif as usize;
            let strength = self.lms[m];
            let plane = self.count_offsets[m] as usize + posting.position as usize * c_n;
            let counts = &self.counts[plane..plane + c_n];
            let mult = posting.multiplicity as f64;
            for (c, &count) in counts.iter().enumerate() {
                // Same operand construction as the oracle: the protein's
                // own occupancies of this position are removed before
                // the vote is weighed.
                let own = mult * f64::from(own_functions.contains(&(c as u32)));
                let delta = count - own;
                if delta > 0.0 {
                    scratch.scores[c] += delta * strength;
                }
            }
        }
        rank_scores(&scratch.scores, &mut scratch.ranked);
        (&scratch.ranked, postings.len())
    }

    /// Structural consistency check mirroring the build invariants, run
    /// by the artifact deserializer so a corrupted file can never drive
    /// `predict_into` into a panic.
    pub fn validate(&self) -> Result<(), &'static str> {
        let c_n = self.n_categories as usize;
        let motif_count = self.motif_count();
        if !offsets_ok(&self.posting_offsets, self.postings.len()) {
            return Err("posting offsets malformed");
        }
        if !offsets_ok(&self.count_offsets, self.counts.len()) {
            return Err("count offsets malformed");
        }
        if self.count_offsets.len() != motif_count + 1 {
            return Err("count table does not cover the dictionary");
        }
        if !offsets_ok(&self.function_offsets, self.functions.len()) {
            return Err("function offsets malformed");
        }
        if self.function_offsets.len() != self.posting_offsets.len() {
            return Err("function and posting tables cover different proteins");
        }
        if self.functions.iter().any(|&c| c as usize >= c_n) {
            return Err("category index out of range");
        }
        for posting in &self.postings {
            let m = posting.motif as usize;
            if m >= motif_count {
                return Err("posting names a motif outside the dictionary");
            }
            let plane = self.count_offsets[m] as usize;
            let plane_end = self.count_offsets[m + 1] as usize;
            let need = posting.position as usize * c_n + c_n;
            if plane + need > plane_end {
                return Err("posting position outside the motif's count plane");
            }
        }
        Ok(())
    }
}

/// Offset-table shape: non-empty, 0-anchored, non-decreasing,
/// terminated at `slab_len`.
fn offsets_ok(offsets: &[u32], slab_len: usize) -> bool {
    offsets.first() == Some(&0)
        && offsets.windows(2).all(|w| w[0] <= w[1])
        && offsets.last().copied().unwrap_or(u32::MAX) as usize == slab_len
}

/// Deterministic ranking shared by the posting and full-scan paths:
/// descending score, ascending category index on ties (`total_cmp`, so
/// the order is total even for pathological inputs).
pub fn rank_scores(scores: &[f64], out: &mut Vec<(u32, f64)>) {
    out.clear();
    out.extend(scores.iter().enumerate().map(|(c, &s)| (c as u32, s)));
    out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{FunctionPredictor, PredictionContext};
    use crate::motif_predictor::LabeledMotifPredictor;
    use go_ontology::{Namespace, TermId};
    use lamofinder::{LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    fn edge_motif(pairs: &[(u32, u32)]) -> LabeledMotif {
        LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: pairs
                .iter()
                .map(|&(a, b)| Occurrence::new(vec![VertexId(a), VertexId(b)]))
                .collect(),
            motif_frequency: pairs.len(),
            uniqueness: Some(1.0),
        }
    }

    fn parity_case(motifs: Vec<LabeledMotif>, functions: Vec<Vec<usize>>, c_n: usize) {
        let network = Graph::empty(functions.len());
        let ctx = PredictionContext {
            network: &network,
            functions: &functions,
            n_categories: c_n,
            category_terms: &(0..c_n).map(|i| TermId(i as u32)).collect::<Vec<_>>(),
        };
        let oracle = LabeledMotifPredictor::new(motifs.clone()).predict_all(&ctx);
        let index = PostingIndex::build(&motifs, &functions, c_n);
        index.validate().unwrap();
        let mut scratch = PredictScratch::new();
        let mut want = Vec::new();
        for p in 0..functions.len() {
            let (got, consumed) = index.predict_into(p, &mut scratch);
            rank_scores(&oracle[p], &mut want);
            assert_eq!(got, &want[..], "protein {p}");
            assert_eq!(consumed, index.postings_of(p).len());
            for (c, score) in got {
                assert!(
                    oracle[p][*c as usize].to_bits() == score.to_bits(),
                    "protein {p} category {c}"
                );
            }
        }
    }

    #[test]
    fn matches_full_scan_on_shared_positions() {
        let motifs = vec![edge_motif(&[(0, 1), (2, 3), (0, 3), (4, 1)])];
        let functions = vec![vec![0], vec![1], vec![0, 1], vec![1], vec![0]];
        parity_case(motifs, functions, 2);
    }

    #[test]
    fn matches_full_scan_with_multiple_motifs_and_zero_strength() {
        let mut weak = edge_motif(&[(5, 6)]);
        weak.uniqueness = Some(0.0); // raw 0 within its size class ⇒ but
                                     // max is positive, so LMS = 0 ⇒ skipped
        let motifs = vec![
            edge_motif(&[(0, 1), (2, 1), (3, 1)]),
            weak,
            edge_motif(&[(4, 5), (6, 5)]),
        ];
        let functions = vec![vec![0], vec![1], vec![2], vec![0, 2], vec![1], vec![2], vec![]];
        parity_case(motifs, functions, 3);
    }

    #[test]
    fn empty_dictionary_and_unannotated_proteins() {
        parity_case(Vec::new(), vec![vec![], vec![0]], 2);
    }

    #[test]
    fn postings_are_sorted_and_counted() {
        let motifs = vec![edge_motif(&[(0, 1), (0, 2), (1, 0)])];
        let functions = vec![vec![0], vec![1], vec![0]];
        let index = PostingIndex::build(&motifs, &functions, 2);
        let p0 = index.postings_of(0);
        // Protein 0 appears at (occ 0, pos 0), (occ 1, pos 0), (occ 2, pos 1).
        assert_eq!(
            p0.iter().map(|p| (p.occurrence, p.position)).collect::<Vec<_>>(),
            vec![(0, 0), (1, 0), (2, 1)]
        );
        // Multiplicity: protein 0 sits at position 0 twice, position 1 once.
        assert_eq!(
            p0.iter().map(|p| p.multiplicity).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        assert_eq!(index.protein_count(), 3);
        assert_eq!(index.motif_count(), 1);
        assert_eq!(index.functions_of(1), &[1]);
    }

    #[test]
    fn rank_orders_desc_with_index_tiebreak() {
        let mut out = Vec::new();
        rank_scores(&[1.0, 3.0, 1.0, 0.0], &mut out);
        assert_eq!(out, vec![(1, 3.0), (0, 1.0), (2, 1.0), (3, 0.0)]);
    }

    #[test]
    fn validate_rejects_corruption() {
        let motifs = vec![edge_motif(&[(0, 1)])];
        let functions = vec![vec![0], vec![1]];
        let good = PostingIndex::build(&motifs, &functions, 2);

        let mut bad = good.clone();
        bad.postings[0].motif = 7;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.postings[0].position = 9;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.functions[0] = 99;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.posting_offsets[1] = 77;
        assert!(bad.validate().is_err());

        let mut bad = good;
        bad.count_offsets.pop();
        assert!(bad.validate().is_err());
    }
}
