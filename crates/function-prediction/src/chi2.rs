//! Chi-square neighborhood scoring (Hishigaki et al. 2001) — baseline 2.
//!
//! "A statistical approach that makes use of Chi-Square statistics to
//! take into account the frequency of each function in the dataset."
//! For protein `p` and function `c`: with `n_c` neighbors of `p` having
//! function `c` and `e_c = π_c · |N(p)|` the count expected from the
//! background frequency `π_c`, the score is `(n_c − e_c)² / e_c`,
//! signed by over-representation (under-represented functions should
//! not be predicted just because they deviate).

use crate::context::{FunctionPredictor, PredictionContext};
use ppi_graph::VertexId;

/// The chi-square predictor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Chi2Predictor;

impl FunctionPredictor for Chi2Predictor {
    fn name(&self) -> &str {
        "Chi2"
    }

    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
        let priors = ctx.category_priors();
        (0..ctx.protein_count())
            .map(|p| {
                let neighbors = ctx.network.neighbors(VertexId(p as u32));
                let mut counts = vec![0.0f64; ctx.n_categories];
                for &nb in neighbors {
                    for &c in &ctx.functions[nb as usize] {
                        counts[c] += 1.0;
                    }
                }
                let n = neighbors.len() as f64;
                counts
                    .iter()
                    .enumerate()
                    .map(|(c, &observed)| {
                        let expected = priors[c] * n;
                        if expected <= 0.0 {
                            return 0.0;
                        }
                        let chi = (observed - expected).powi(2) / expected;
                        if observed >= expected {
                            chi
                        } else {
                            -chi
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermId;
    use ppi_graph::Graph;

    fn ctx_fixture(functions: &[Vec<usize>], g: &Graph) -> Vec<Vec<f64>> {
        let ctx = PredictionContext {
            network: g,
            functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        Chi2Predictor.predict_all(&ctx)
    }

    #[test]
    fn over_representation_scores_positive() {
        // 0 is connected to 1, 2 (function 0); 3, 4, 5 carry function 1
        // elsewhere, making function 1 globally common.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (4, 5)]);
        let functions = vec![
            vec![],
            vec![0],
            vec![0],
            vec![1],
            vec![1],
            vec![1],
        ];
        let scores = ctx_fixture(&functions, &g);
        assert!(scores[0][0] > 0.0, "function 0 over-represented: {scores:?}");
        assert!(scores[0][1] < 0.0, "function 1 absent among neighbors");
        assert!(scores[0][0] > scores[0][1]);
    }

    #[test]
    fn rare_function_concentration_beats_common_background() {
        // p's 2 neighbors both carry the globally rare function 0; NC
        // would tie it with a common function seen twice; chi-square
        // separates them.
        let g = Graph::from_edges(8, &[(0, 1), (0, 2), (3, 4), (5, 6), (6, 7)]);
        let mut functions = vec![vec![]; 8];
        functions[1] = vec![0, 1];
        functions[2] = vec![0, 1];
        functions[3] = vec![1];
        functions[4] = vec![1];
        functions[5] = vec![1];
        functions[6] = vec![1];
        functions[7] = vec![1];
        let scores = ctx_fixture(&functions, &g);
        // Function 0: observed 2, expected 2 * (2/7); function 1:
        // observed 2, expected 2 * (7/7) = 2 → chi 0.
        assert!(scores[0][0] > scores[0][1]);
    }

    #[test]
    fn empty_neighborhood_is_neutral() {
        let g = Graph::empty(3);
        let functions = vec![vec![0], vec![1], vec![]];
        let scores = ctx_fixture(&functions, &g);
        assert_eq!(scores[2], vec![0.0, 0.0]);
    }
}
