//! Mapping annotations to top functional categories.
//!
//! The paper evaluates against "the top 13 functional categories of
//! yeast proteins", generalizing every annotation up the hierarchy
//! (footnote 1 of Section 5). [`CategoryView`] performs the same
//! generalization: a protein has category `c` iff `c` is an
//! ancestor-or-self of one of its annotations.

use go_ontology::{Annotations, Ontology, ProteinId, TermId};

/// Precomputed protein → category-index mapping.
pub struct CategoryView {
    /// The category terms, in index order.
    pub categories: Vec<TermId>,
    /// Per-protein sorted category indices.
    pub functions: Vec<Vec<usize>>,
}

impl CategoryView {
    /// Generalize `annotations` to `categories`.
    pub fn new(ontology: &Ontology, annotations: &Annotations, categories: &[TermId]) -> Self {
        let functions = (0..annotations.protein_count())
            .map(|p| {
                let mut cats: Vec<usize> = annotations
                    .terms_of(ProteinId(p as u32))
                    .iter()
                    .flat_map(|&t| {
                        categories
                            .iter()
                            .enumerate()
                            .filter(move |&(_, &c)| ontology.is_same_or_ancestor(c, t))
                            .map(|(i, _)| i)
                            .collect::<Vec<_>>()
                    })
                    .collect();
                cats.sort_unstable();
                cats.dedup();
                cats
            })
            .collect();
        CategoryView {
            categories: categories.to_vec(),
            functions,
        }
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.categories.len()
    }

    /// Fraction of proteins with at least one category.
    pub fn coverage(&self) -> f64 {
        if self.functions.is_empty() {
            return 0.0;
        }
        self.functions.iter().filter(|f| !f.is_empty()).count() as f64
            / self.functions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{Namespace, OntologyBuilder, Relation};

    #[test]
    fn generalizes_to_ancestor_categories() {
        let mut ob = OntologyBuilder::new();
        let root = ob.add_term("GO:0", "root", Namespace::BiologicalProcess);
        let c0 = ob.add_term("GO:1", "cat0", Namespace::BiologicalProcess);
        let c1 = ob.add_term("GO:2", "cat1", Namespace::BiologicalProcess);
        let leaf = ob.add_term("GO:3", "leaf", Namespace::BiologicalProcess);
        ob.add_edge(c0, root, Relation::IsA);
        ob.add_edge(c1, root, Relation::IsA);
        ob.add_edge(leaf, c0, Relation::IsA);
        let o = ob.build().unwrap();
        let mut ann = Annotations::new(3, o.term_count());
        ann.annotate(ProteinId(0), leaf); // under cat0
        ann.annotate(ProteinId(1), c1); // directly cat1
        let view = CategoryView::new(&o, &ann, &[c0, c1]);
        assert_eq!(view.functions[0], vec![0]);
        assert_eq!(view.functions[1], vec![1]);
        assert!(view.functions[2].is_empty());
        assert_eq!(view.n_categories(), 2);
        assert!((view.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }
}
