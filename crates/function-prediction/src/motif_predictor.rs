//! The paper's labeled-network-motif predictor (Section 5.1, Eq. 5).
//!
//! A protein occurring at position `v` of a labeled motif is
//! topologically similar to the proteins at `v` in the motif's *other*
//! occurrences; their functions, weighted by the motif's strength
//! (Eq. 4), vote for the protein's functions:
//!
//! ```text
//! f_x(p) = (1/z) Σ_{g ∋ p} δ_g(v, x) · LMS(g)                  (Eq. 5)
//! ```
//!
//! `δ_g(v, x)` is the frequency of function `x` at vertex `v` of `g`.
//! We compute it over occurrences, always excluding those where `p`
//! itself sits at `v`, so leave-one-out evaluation is leakage-free.

use crate::context::{FunctionPredictor, PredictionContext};
use crate::lms::lms_scores;
use lamofinder::LabeledMotif;

/// The labeled-motif predictor. Owns the labeled motif dictionary.
pub struct LabeledMotifPredictor {
    motifs: Vec<LabeledMotif>,
    lms: Vec<f64>,
}

impl LabeledMotifPredictor {
    /// Build the predictor from a labeled motif dictionary.
    pub fn new(motifs: Vec<LabeledMotif>) -> Self {
        let lms = lms_scores(&motifs);
        LabeledMotifPredictor { motifs, lms }
    }

    /// Number of motifs in the dictionary.
    pub fn motif_count(&self) -> usize {
        self.motifs.len()
    }

    /// The LMS of motif `i` (diagnostics and the Eq. 4 report).
    pub fn lms(&self, i: usize) -> f64 {
        self.lms[i]
    }
}

impl FunctionPredictor for LabeledMotifPredictor {
    fn name(&self) -> &str {
        "LabeledMotif"
    }

    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
        let n = ctx.protein_count();
        let mut scores = vec![vec![0.0f64; ctx.n_categories]; n];

        for (mi, motif) in self.motifs.iter().enumerate() {
            let strength = self.lms[mi];
            if strength <= 0.0 {
                continue;
            }
            let k = motif.size();
            // Per-position category counts over all occurrences, plus the
            // per-(position, protein) occupancy needed for exclusion.
            let mut counts = vec![vec![0.0f64; ctx.n_categories]; k];
            for occ in &motif.occurrences {
                for (v, &protein) in occ.vertices.iter().enumerate() {
                    for &c in &ctx.functions[protein.index()] {
                        counts[v][c] += 1.0;
                    }
                }
            }
            // Contribution to each protein found at each position.
            for occ in &motif.occurrences {
                for (v, &protein) in occ.vertices.iter().enumerate() {
                    let p = protein.index();
                    for c in 0..ctx.n_categories {
                        // δ excluding p's own occupancies of v: remove
                        // p's own label contributions at this position.
                        let own = occurrences_of_at(motif, p, v) as f64
                            * f64::from(ctx.functions[p].contains(&c));
                        let delta = counts[v][c] - own;
                        if delta > 0.0 {
                            scores[p][c] += delta * strength;
                        }
                    }
                }
            }
        }
        scores
    }
}

/// How many occurrences of `motif` place protein `p` at position `v`.
fn occurrences_of_at(motif: &LabeledMotif, p: usize, v: usize) -> usize {
    motif
        .occurrences
        .iter()
        .filter(|o| o.vertices[v].index() == p)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::{Namespace, TermId};
    use lamofinder::{LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    /// An edge motif with occurrences (2i, 2i+1); position 0 proteins
    /// have category 0, position 1 proteins category 1.
    fn edge_motif(n_occ: usize) -> LabeledMotif {
        LabeledMotif {
            pattern: Graph::from_edges(2, &[(0, 1)]),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); 2]),
            occurrences: (0..n_occ as u32)
                .map(|i| Occurrence::new(vec![VertexId(2 * i), VertexId(2 * i + 1)]))
                .collect(),
            motif_frequency: n_occ,
            uniqueness: Some(1.0),
        }
    }

    fn ctx_functions(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|p| vec![p % 2]).collect()
    }

    #[test]
    fn position_determines_prediction() {
        let motif = edge_motif(5);
        let functions = ctx_functions(10);
        let g = Graph::from_edges(10, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]);
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let predictor = LabeledMotifPredictor::new(vec![motif]);
        let scores = predictor.predict_all(&ctx);
        // Protein 0 sits at position 0 → other position-0 proteins all
        // carry category 0.
        assert!(scores[0][0] > scores[0][1], "{:?}", scores[0]);
        assert!(scores[1][1] > scores[1][0], "{:?}", scores[1]);
    }

    #[test]
    fn own_labels_are_excluded() {
        // One occurrence only: protein 0 at position 0. With no other
        // occurrences, the prediction must be all zero (no leakage of
        // protein 0's own label).
        let motif = edge_motif(1);
        let functions = ctx_functions(2);
        let g = Graph::from_edges(2, &[(0, 1)]);
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let predictor = LabeledMotifPredictor::new(vec![motif]);
        let scores = predictor.predict_all(&ctx);
        assert_eq!(scores[0], vec![0.0, 0.0]);
        assert_eq!(scores[1], vec![0.0, 0.0]);
    }

    #[test]
    fn stronger_motifs_dominate() {
        // Two motifs of the same size: one with support 10, one with 2.
        // Their LMS differ (1.0 vs 0.2); contributions scale accordingly.
        let big = edge_motif(10);
        let mut small = edge_motif(2);
        // Move the small motif's occurrences to other proteins with the
        // REVERSED category layout to create conflict on protein 20.
        small.occurrences = vec![
            Occurrence::new(vec![VertexId(20), VertexId(21)]),
            Occurrence::new(vec![VertexId(22), VertexId(23)]),
        ];
        let mut big2 = edge_motif(10);
        big2.occurrences.push(Occurrence::new(vec![
            VertexId(20),
            VertexId(24),
        ]));
        let mut functions = ctx_functions(25);
        functions[22] = vec![1]; // small motif votes 1 at position 0
        let g = Graph::empty(25);
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let predictor = LabeledMotifPredictor::new(vec![big, big2, small]);
        let scores = predictor.predict_all(&ctx);
        // Protein 20 appears at position 0 of big2 (10 votes for cat 0,
        // LMS-weighted ~1.0) and of small (1 vote for cat 1, LMS ~2/11).
        assert!(scores[20][0] > scores[20][1], "{:?}", scores[20]);
        let _ = predictor.lms(0);
        assert_eq!(predictor.motif_count(), 3);
    }
}
