//! Neighbor Counting (Schwikowski, Uetz & Fields) — baseline 1.
//!
//! "Labels a protein with the function that occurs frequently in its
//! neighbors. The k most frequent functions are assigned as the k most
//! likely functions."

use crate::context::{FunctionPredictor, PredictionContext};
use ppi_graph::VertexId;

/// The neighbor-counting predictor.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeighborCountingPredictor;

impl FunctionPredictor for NeighborCountingPredictor {
    fn name(&self) -> &str {
        "NC"
    }

    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
        (0..ctx.protein_count())
            .map(|p| {
                let mut counts = vec![0.0f64; ctx.n_categories];
                for &nb in ctx.network.neighbors(VertexId(p as u32)) {
                    for &c in &ctx.functions[nb as usize] {
                        counts[c] += 1.0;
                    }
                }
                counts
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermId;
    use ppi_graph::Graph;

    #[test]
    fn counts_neighbor_functions() {
        // Star: center 0 with neighbors 1, 2, 3 having functions
        // {0}, {0, 1}, {1}.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let functions = vec![vec![1], vec![0], vec![0, 1], vec![1]];
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let scores = NeighborCountingPredictor.predict_all(&ctx);
        assert_eq!(scores[0], vec![2.0, 2.0]);
        // Leaves see only the center's own function set {1}.
        assert_eq!(scores[1], vec![0.0, 1.0]);
        // The row for p must ignore p's own labels (row 0 counted 1's
        // function only through neighbors — but 0 IS a neighbor of 1).
        assert_eq!(scores[3], vec![0.0, 1.0]);
    }

    #[test]
    fn isolated_protein_scores_zero() {
        let g = Graph::empty(2);
        let functions = vec![vec![0], vec![0]];
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 1,
            category_terms: &[TermId(0)],
        };
        let scores = NeighborCountingPredictor.predict_all(&ctx);
        assert_eq!(scores[0], vec![0.0]);
    }
}
