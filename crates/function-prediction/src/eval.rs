//! Leave-one-out evaluation and precision–recall curves (Section 5.2 /
//! Figure 9).
//!
//! Following the protocol of the compared methods: for every annotated
//! protein, hide its functions, rank all categories, and take the top
//! `k` as predictions. Sweeping `k` from 1 to the number of categories
//! traces the precision–recall curve ("the k most frequent functions are
//! assigned as the k most likely functions").

use crate::context::{FunctionPredictor, PredictionContext};
use par_util::{faultpoint, run_supervised, Interrupted, RunContext};
use ppi_graph::VertexId;

/// One point of a precision–recall curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrPoint {
    /// Number of predicted functions per protein.
    pub k: usize,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
}

/// A named precision–recall curve.
#[derive(Clone, Debug)]
pub struct PrCurve {
    /// Method name.
    pub method: String,
    /// Points for k = 1..=n_categories.
    pub points: Vec<PrPoint>,
}

impl PrCurve {
    /// Maximum F1 over the curve (a convenient scalar summary).
    pub fn max_f1(&self) -> f64 {
        self.points
            .iter()
            .map(|p| {
                if p.precision + p.recall == 0.0 {
                    0.0
                } else {
                    2.0 * p.precision * p.recall / (p.precision + p.recall)
                }
            })
            .fold(0.0, f64::max)
    }

    /// Precision at the point whose recall first reaches `r` (linear
    /// scan; `None` if never reached).
    pub fn precision_at_recall(&self, r: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.recall >= r)
            .map(|p| p.precision)
    }
}

/// A resumable evaluation checkpoint: the curve points completed so
/// far (point `i` is always `k = i + 1`, so the prefix length alone
/// determines where to resume).
#[derive(Clone, Debug, Default)]
pub struct EvalCheckpoint {
    /// Completed prefix of the precision–recall curve.
    pub points: Vec<PrPoint>,
}

/// Leave-one-out evaluation harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaveOneOut;

impl LeaveOneOut {
    /// Run `predictor` over every annotated protein of `ctx` and return
    /// its precision–recall curve.
    ///
    /// Legacy uninterruptible entry point: runs the supervised engine
    /// under a passive [`RunContext`].
    pub fn evaluate(
        &self,
        ctx: &PredictionContext<'_>,
        predictor: &dyn FunctionPredictor,
    ) -> PrCurve {
        let scores = predictor.predict_all(ctx);
        self.curve_from_scores(ctx, predictor.name(), &scores)
    }

    /// [`LeaveOneOut::evaluate`] under a supervising [`RunContext`].
    pub fn evaluate_supervised(
        &self,
        ctx: &PredictionContext<'_>,
        predictor: &dyn FunctionPredictor,
        run: &RunContext,
    ) -> Result<PrCurve, Interrupted<EvalCheckpoint>> {
        let scores = predictor.predict_all(ctx);
        self.resume_curve_from_scores(
            ctx,
            predictor.name(),
            &scores,
            EvalCheckpoint::default(),
            run,
        )
    }

    /// Build the curve from a precomputed score matrix.
    pub fn curve_from_scores(
        &self,
        ctx: &PredictionContext<'_>,
        name: &str,
        scores: &[Vec<f64>],
    ) -> PrCurve {
        self.resume_curve_from_scores(
            ctx,
            name,
            scores,
            EvalCheckpoint::default(),
            &RunContext::unbounded(),
        )
        .expect("a passive context without injected faults never interrupts evaluation")
    }

    /// Resume the curve sweep from `checkpoint` (completed `k` prefix)
    /// under `run`. One `k` is the checkpointable unit: scoring it
    /// costs `|eligible|` work ticks (charged up front), and every
    /// point is a pure function of `(ctx, scores, k)`, so resumption is
    /// bit-identical to an uninterrupted sweep.
    pub fn resume_curve_from_scores(
        &self,
        ctx: &PredictionContext<'_>,
        name: &str,
        scores: &[Vec<f64>],
        checkpoint: EvalCheckpoint,
        run: &RunContext,
    ) -> Result<PrCurve, Interrupted<EvalCheckpoint>> {
        let eligible: Vec<usize> = (0..ctx.protein_count())
            .filter(|&p| ctx.has_functions(VertexId(p as u32)))
            .collect();
        let total_truth: usize = eligible.iter().map(|&p| ctx.functions[p].len()).sum();

        // Per-protein category ranking (descending score, ties by id).
        let rankings: Vec<Vec<usize>> = eligible
            .iter()
            .map(|&p| {
                let mut order: Vec<usize> = (0..ctx.n_categories).collect();
                order.sort_by(|&a, &b| {
                    scores[p][b]
                        .partial_cmp(&scores[p][a])
                        .expect("prediction scores are finite by construction, so partial_cmp succeeds")
                        .then(a.cmp(&b))
                });
                order
            })
            .collect();

        let mut points = checkpoint.points;
        points.truncate(ctx.n_categories);
        for k in points.len() + 1..=ctx.n_categories {
            // Charge the whole point up front: the sweep stops *between*
            // points, never inside one, so the completed prefix is
            // always a clean checkpoint.
            if !run.tick(eligible.len() as u64) {
                return Err(Interrupted::Cancelled {
                    checkpoint: EvalCheckpoint { points },
                });
            }
            // The point is computed inside an inline supervised worker
            // so an injected (or real) panic surfaces as a typed error
            // carrying the completed prefix instead of unwinding.
            let outcome = run_supervised(1, "prediction.eval", run, || {
                faultpoint!(run, "prediction.eval_k");
                let mut correct = 0usize;
                let mut predicted = 0usize;
                for (idx, &p) in eligible.iter().enumerate() {
                    // Only predict categories with positive evidence;
                    // this keeps precision meaningful at large k.
                    let picks = rankings[idx]
                        .iter()
                        .take(k)
                        .filter(|&&c| scores[p][c] > 0.0);
                    for &c in picks {
                        predicted += 1;
                        if ctx.functions[p].contains(&c) {
                            correct += 1;
                        }
                    }
                }
                let precision = if predicted == 0 {
                    0.0
                } else {
                    correct as f64 / predicted as f64
                };
                let recall = if total_truth == 0 {
                    0.0
                } else {
                    correct as f64 / total_truth as f64
                };
                PrPoint {
                    k,
                    precision,
                    recall,
                }
            });
            if let Some(panic) = outcome.panic {
                return Err(Interrupted::WorkerPanicked {
                    panic,
                    checkpoint: EvalCheckpoint { points },
                });
            }
            if run.should_stop() {
                return Err(Interrupted::Cancelled {
                    checkpoint: EvalCheckpoint { points },
                });
            }
            let point = outcome
                .results
                .into_iter()
                .next()
                .expect("the single inline eval worker always returns one point");
            points.push(point);
        }
        Ok(PrCurve {
            method: name.to_string(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermId;
    use ppi_graph::Graph;

    struct Oracle;
    impl FunctionPredictor for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
            // Cheats by reading the truth — allowed only inside this test.
            ctx.functions
                .iter()
                .map(|f| {
                    (0..ctx.n_categories)
                        .map(|c| if f.contains(&c) { 1.0 } else { 0.0 })
                        .collect()
                })
                .collect()
        }
    }

    struct Uniform;
    impl FunctionPredictor for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }
        fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
            vec![vec![1.0; ctx.n_categories]; ctx.protein_count()]
        }
    }

    fn ctx_fixture<'a>(
        g: &'a Graph,
        functions: &'a [Vec<usize>],
        terms: &'a [TermId],
    ) -> PredictionContext<'a> {
        PredictionContext {
            network: g,
            functions,
            n_categories: terms.len(),
            category_terms: terms,
        }
    }

    #[test]
    fn oracle_reaches_perfect_precision_and_full_recall() {
        let g = Graph::empty(4);
        let functions = vec![vec![0], vec![1], vec![0, 2], vec![]];
        let terms = [TermId(0), TermId(1), TermId(2)];
        let ctx = ctx_fixture(&g, &functions, &terms);
        let curve = LeaveOneOut.evaluate(&ctx, &Oracle);
        assert_eq!(curve.method, "oracle");
        // Positive-evidence filtering keeps precision at 1 for all k.
        for p in &curve.points {
            assert!((p.precision - 1.0).abs() < 1e-12, "{p:?}");
        }
        assert!((curve.points.last().unwrap().recall - 1.0).abs() < 1e-12);
        assert!((curve.max_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_predictor_has_low_precision() {
        let g = Graph::empty(4);
        let functions = vec![vec![0], vec![1], vec![2], vec![0]];
        let terms = [TermId(0), TermId(1), TermId(2)];
        let ctx = ctx_fixture(&g, &functions, &terms);
        let curve = LeaveOneOut.evaluate(&ctx, &Uniform);
        let last = curve.points.last().unwrap();
        assert!((last.recall - 1.0).abs() < 1e-12, "uniform@k=3 hits all");
        assert!(last.precision < 0.5);
    }

    #[test]
    fn precision_at_recall_scans_correctly() {
        let curve = PrCurve {
            method: "m".into(),
            points: vec![
                PrPoint { k: 1, precision: 0.9, recall: 0.3 },
                PrPoint { k: 2, precision: 0.7, recall: 0.6 },
                PrPoint { k: 3, precision: 0.5, recall: 0.9 },
            ],
        };
        assert_eq!(curve.precision_at_recall(0.5), Some(0.7));
        assert_eq!(curve.precision_at_recall(0.95), None);
    }

    #[test]
    fn unannotated_proteins_are_skipped() {
        let g = Graph::empty(2);
        let functions = vec![vec![], vec![]];
        let terms = [TermId(0)];
        let ctx = ctx_fixture(&g, &functions, &terms);
        let curve = LeaveOneOut.evaluate(&ctx, &Uniform);
        for p in &curve.points {
            assert_eq!(p.precision, 0.0);
            assert_eq!(p.recall, 0.0);
        }
    }
}
