#![forbid(unsafe_code)]
//! Protein function prediction (Section 5 of the paper).
//!
//! The labeled-network-motif predictor (Eqs. 4–5) and the four
//! comparison methods of Section 5.2, all behind one
//! [`FunctionPredictor`] interface, plus the leave-one-out
//! precision–recall harness that regenerates Figure 9:
//!
//! * [`LabeledMotifPredictor`] — this paper's method;
//! * [`NeighborCountingPredictor`] — Schwikowski et al.;
//! * [`Chi2Predictor`] — Hishigaki et al.;
//! * [`ProdistinPredictor`] — Brun et al. (Czekanowski-Dice + NJ tree);
//! * [`MrfPredictor`] — Deng et al. (mean-field MRF).

pub mod categories;
pub mod chi2;
pub mod context;
pub mod delta;
pub mod eval;
pub mod lms;
pub mod motif_predictor;
pub mod mrf;
pub mod nc;
pub mod nj;
pub mod postings;
pub mod prodistin;

pub use categories::CategoryView;
pub use chi2::Chi2Predictor;
pub use context::{FunctionPredictor, PredictionContext};
pub use delta::{IndexDeltaStats, SegmentedIndex};
pub use eval::{EvalCheckpoint, LeaveOneOut, PrCurve, PrPoint};
pub use lms::lms_scores;
pub use motif_predictor::LabeledMotifPredictor;
pub use mrf::MrfPredictor;
pub use nc::NeighborCountingPredictor;
pub use nj::{neighbor_joining, NjTree};
pub use postings::{rank_scores, Posting, PostingIndex, PredictScratch};
pub use prodistin::{czekanowski_dice, ProdistinPredictor};
