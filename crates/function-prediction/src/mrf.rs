//! Markov Random Field prediction (Deng et al. 2003) — baseline 4.
//!
//! "A global optimization method based on Markov Random Fields and
//! belief propagation to compute a probability that a protein has a
//! function given the functions of all other proteins."
//!
//! Per category, protein states form a binary MRF over the PPI network
//! whose Gibbs potential rewards same-state neighbors. We run mean-field
//! iterations (the deterministic limit of Deng's Gibbs sampler): hidden
//! proteins hold beliefs initialized at the category prior and updated
//! from neighbor beliefs through a logistic coupling. Leave-one-out is
//! batched into folds — each fold's proteins are hidden together, so a
//! protein's own label never feeds back into its prediction.

use crate::context::{FunctionPredictor, PredictionContext};
use ppi_graph::VertexId;

/// The mean-field MRF predictor.
#[derive(Clone, Copy, Debug)]
pub struct MrfPredictor {
    /// Number of leave-out folds (labels of a fold are hidden together).
    pub folds: usize,
    /// Mean-field sweeps per fold.
    pub iterations: usize,
    /// Neighbor coupling strength (β in the Gibbs potential).
    pub beta: f64,
}

impl Default for MrfPredictor {
    fn default() -> Self {
        MrfPredictor {
            folds: 10,
            iterations: 30,
            beta: 1.2,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

impl FunctionPredictor for MrfPredictor {
    fn name(&self) -> &str {
        "MRF"
    }

    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
        let n = ctx.protein_count();
        let priors = ctx.category_priors();
        let mut scores = vec![vec![0.0f64; ctx.n_categories]; n];

        for fold in 0..self.folds.max(1) {
            // Hidden set: this fold's proteins plus the never-annotated.
            let hidden: Vec<bool> = (0..n)
                .map(|p| p % self.folds.max(1) == fold || ctx.functions[p].is_empty())
                .collect();

            for c in 0..ctx.n_categories {
                let prior = priors[c].clamp(1e-6, 1.0 - 1e-6);
                let base = logit(prior);
                // Beliefs: observed proteins are clamped to their label.
                let mut belief: Vec<f64> = (0..n)
                    .map(|p| {
                        if hidden[p] {
                            prior
                        } else if ctx.functions[p].contains(&c) {
                            1.0
                        } else {
                            0.0
                        }
                    })
                    .collect();
                for _ in 0..self.iterations {
                    let mut next = belief.clone();
                    for (p, np) in next.iter_mut().enumerate() {
                        if !hidden[p] {
                            continue;
                        }
                        let field: f64 = ctx
                            .network
                            .neighbors(VertexId(p as u32))
                            .iter()
                            .map(|&nb| belief[nb as usize] - prior)
                            .sum();
                        *np = sigmoid(base + self.beta * field);
                    }
                    belief = next;
                }
                for p in 0..n {
                    if p % self.folds.max(1) == fold {
                        scores[p][c] = belief[p];
                    }
                }
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermId;
    use ppi_graph::Graph;

    fn run(g: &Graph, functions: &[Vec<usize>], n_categories: usize) -> Vec<Vec<f64>> {
        let ctx = PredictionContext {
            network: g,
            functions,
            n_categories,
            category_terms: &vec![TermId(0); n_categories],
        };
        MrfPredictor::default().predict_all(&ctx)
    }

    #[test]
    fn labels_propagate_through_unannotated_chains() {
        // 0(fn 0) - 1(unannotated) - 2(query): belief must flow through 1.
        // Padding proteins (3..9, function 1) set a non-trivial prior.
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (3, 4), (5, 6), (7, 8)]);
        let mut functions = vec![vec![]; 10];
        functions[0] = vec![0];
        for p in 3..10 {
            functions[p] = vec![1];
        }
        functions[2] = vec![0]; // truth for the query (hidden by folds)
        let scores = run(&g, &functions, 2);
        assert!(
            scores[2][0] > scores[2][1] * 0.0 && scores[2][0] > 0.0,
            "scores[2] = {:?}",
            scores[2]
        );
        // The chain neighbor signal should lift category 0 above its
        // prior for protein 2.
        let prior0 = 2.0 / 9.0;
        assert!(scores[2][0] > prior0, "{} <= {}", scores[2][0], prior0);
    }

    #[test]
    fn surrounded_protein_adopts_neighborhood_function() {
        // Star center 0 with 5 neighbors all function 1; distant pair
        // carries function 0.
        let g = Graph::from_edges(9, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (6, 7)]);
        let mut functions = vec![vec![]; 9];
        for p in 1..6 {
            functions[p] = vec![1];
        }
        functions[6] = vec![0];
        functions[7] = vec![0];
        functions[0] = vec![1]; // truth
        let scores = run(&g, &functions, 2);
        assert!(
            scores[0][1] > scores[0][0],
            "center should score function 1: {:?}",
            scores[0]
        );
    }

    #[test]
    fn scores_are_probabilities() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let functions = vec![vec![0], vec![], vec![0], vec![]];
        let scores = run(&g, &functions, 1);
        for row in &scores {
            for &s in row {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn isolated_unannotated_protein_sits_at_prior() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2)]);
        let mut functions = vec![vec![]; 5];
        functions[0] = vec![0];
        functions[1] = vec![0];
        functions[2] = vec![0];
        // Protein 4 is isolated; its belief should stay near the prior.
        let scores = run(&g, &functions, 1);
        let prior = 1.0;
        // All annotated proteins have function 0 → prior ~1 (clamped).
        assert!(scores[4][0] > 0.9, "{:?}", scores[4]);
        let _ = prior;
    }
}
