//! Shared prediction context and the predictor interface.
//!
//! Every method in Section 5.2 predicts, for a protein with hidden
//! annotations, a ranking over the top functional categories (13 in the
//! paper's yeast evaluation). Predictors implement [`FunctionPredictor`]
//! by producing a full score matrix at once — batch form lets the MRF
//! run its field updates per fold and PRODISTIN build its tree once —
//! with the contract that row `p` must not read `functions[p]`.

use go_ontology::TermId;
use ppi_graph::{Graph, VertexId};

/// Input to all predictors.
pub struct PredictionContext<'a> {
    /// The PPI network.
    pub network: &'a Graph,
    /// True category indices per protein (`0..n_categories`), empty for
    /// unannotated proteins.
    pub functions: &'a [Vec<usize>],
    /// Number of categories (the paper's top 13).
    pub n_categories: usize,
    /// The category terms (for reporting only).
    pub category_terms: &'a [TermId],
}

impl PredictionContext<'_> {
    /// Number of proteins.
    pub fn protein_count(&self) -> usize {
        self.network.vertex_count()
    }

    /// Whether protein `p` has at least one category function.
    pub fn has_functions(&self, p: VertexId) -> bool {
        !self.functions[p.index()].is_empty()
    }

    /// Global frequency of each category among annotated proteins.
    pub fn category_priors(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_categories];
        let mut annotated = 0usize;
        for f in self.functions {
            if f.is_empty() {
                continue;
            }
            annotated += 1;
            for &c in f {
                counts[c] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| {
                if annotated == 0 {
                    0.0
                } else {
                    c as f64 / annotated as f64
                }
            })
            .collect()
    }
}

/// A protein-function prediction method.
pub trait FunctionPredictor {
    /// Display name (used in the Fig. 9 report).
    fn name(&self) -> &str;

    /// Score matrix: `scores[p][c]` ranks category `c` for protein `p`.
    /// Row `p` must be computed as if `functions[p]` were unknown.
    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_count_annotated_only() {
        let g = Graph::empty(4);
        let functions = vec![vec![0], vec![0, 1], vec![], vec![1]];
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let priors = ctx.category_priors();
        assert!((priors[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((priors[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!(ctx.has_functions(VertexId(0)));
        assert!(!ctx.has_functions(VertexId(2)));
    }
}
