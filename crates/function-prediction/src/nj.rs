//! Neighbor-joining tree construction (Saitou & Nei; BIONJ's ancestor),
//! the clustering engine behind the PRODISTIN baseline.
//!
//! Builds an unrooted-then-rooted binary join tree from a distance
//! matrix in `O(n³)`. PRODISTIN clusters proteins with BIONJ over
//! Czekanowski-Dice distances; plain NJ preserves the join topology on
//! our synthetic distances (DESIGN.md §5 records the substitution).

/// A join tree over `n_leaves` leaves. Leaves are nodes `0..n_leaves`;
/// internal nodes are appended in join order; the last node is the root.
#[derive(Clone, Debug)]
pub struct NjTree {
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children of each node (empty for leaves; 2–3 for internals).
    pub children: Vec<Vec<usize>>,
    /// Number of leaves.
    pub n_leaves: usize,
}

impl NjTree {
    /// Leaf ids in the subtree rooted at `node`.
    pub fn leaves_under(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if x < self.n_leaves {
                out.push(x);
            }
            stack.extend(self.children[x].iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Undirected tree neighbors of `node` (its parent and children) —
    /// the view that treats the NJ result as the unrooted tree it
    /// conceptually is.
    pub fn tree_neighbors(&self, node: usize) -> Vec<usize> {
        let mut out = self.children[node].clone();
        if let Some(p) = self.parent[node] {
            out.push(p);
        }
        out
    }

    /// The chain of ancestors of `node` (nearest first, root last).
    pub fn ancestors(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[node];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }
}

/// Build a neighbor-joining tree from a symmetric distance matrix.
///
/// # Panics
///
/// Panics if the matrix is not square or has fewer than 2 rows.
pub fn neighbor_joining(dist: &[Vec<f64>]) -> NjTree {
    let n = dist.len();
    assert!(n >= 2, "need at least two taxa");
    for row in dist {
        assert_eq!(row.len(), n, "distance matrix must be square");
    }

    // Working copy with room for internal nodes.
    let capacity = 2 * n - 1;
    let mut d = vec![vec![0.0f64; capacity]; capacity];
    for i in 0..n {
        for j in 0..n {
            d[i][j] = dist[i][j];
        }
    }
    let mut parent: Vec<Option<usize>> = vec![None; capacity];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); capacity];
    let mut active: Vec<usize> = (0..n).collect();
    let mut next_node = n;

    while active.len() > 2 {
        let r = active.len() as f64;
        // Row sums over active nodes.
        let sums: Vec<f64> = active
            .iter()
            .map(|&i| active.iter().map(|&k| d[i][k]).sum())
            .collect();
        // Minimize Q(i,j) = (r-2) d(i,j) - R_i - R_j.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for a in 0..active.len() {
            for b in a + 1..active.len() {
                let q = (r - 2.0) * d[active[a]][active[b]] - sums[a] - sums[b];
                if q < best.2 {
                    best = (a, b, q);
                }
            }
        }
        let (ai, bi, _) = best;
        let (i, j) = (active[ai], active[bi]);
        let u = next_node;
        next_node += 1;
        parent[i] = Some(u);
        parent[j] = Some(u);
        children[u] = vec![i, j];
        // Distances from the new node.
        for &k in &active {
            if k == i || k == j {
                continue;
            }
            let duk = 0.5 * (d[i][k] + d[j][k] - d[i][j]);
            d[u][k] = duk.max(0.0);
            d[k][u] = d[u][k];
        }
        // Replace i, j by u in the active list.
        active.retain(|&x| x != i && x != j);
        active.push(u);
    }

    // Join the final pair under the root.
    let root = next_node;
    for &x in &active {
        parent[x] = Some(root);
    }
    children[root] = active.clone();
    parent.truncate(root + 1);
    children.truncate(root + 1);
    parent[root] = None;

    NjTree {
        parent,
        children,
        n_leaves: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight pairs far apart: {0,1} and {2,3}.
    fn two_cluster_matrix() -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let same = (i < 2) == (j < 2);
                d[i][j] = if same { 0.1 } else { 1.0 };
            }
        }
        d
    }

    #[test]
    fn sibling_structure_reflects_clusters() {
        let tree = neighbor_joining(&two_cluster_matrix());
        // 0 and 1 must share their immediate parent; same for 2 and 3.
        assert_eq!(tree.parent[0], tree.parent[1]);
        assert_eq!(tree.parent[2], tree.parent[3]);
        assert_ne!(tree.parent[0], tree.parent[2]);
    }

    #[test]
    fn leaves_under_root_cover_everything() {
        let tree = neighbor_joining(&two_cluster_matrix());
        let root = tree.parent.len() - 1;
        assert_eq!(tree.leaves_under(root), vec![0, 1, 2, 3]);
        assert_eq!(tree.n_leaves, 4);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let tree = neighbor_joining(&two_cluster_matrix());
        let anc = tree.ancestors(0);
        assert!(!anc.is_empty());
        assert_eq!(*anc.last().unwrap(), tree.parent.len() - 1);
        assert_eq!(tree.ancestors(tree.parent.len() - 1), Vec::<usize>::new());
    }

    #[test]
    fn two_taxa_edge_case() {
        let d = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let tree = neighbor_joining(&d);
        assert_eq!(tree.parent[0], Some(2));
        assert_eq!(tree.parent[1], Some(2));
        assert_eq!(tree.children[2], vec![0, 1]);
    }

    #[test]
    fn every_nonroot_has_parent_and_tree_is_consistent() {
        // Random-ish additive distances over 9 taxa.
        let n = 9;
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    d[i][j] = ((i as f64 - j as f64).abs() + 1.0).ln() + 0.3;
                }
            }
        }
        let tree = neighbor_joining(&d);
        let root = tree.parent.len() - 1;
        for v in 0..tree.parent.len() {
            if v == root {
                assert!(tree.parent[v].is_none());
            } else {
                let p = tree.parent[v].expect("non-root has parent");
                assert!(tree.children[p].contains(&v));
            }
        }
        assert_eq!(tree.leaves_under(root).len(), n);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_panics() {
        neighbor_joining(&[vec![0.0, 1.0], vec![0.0]]);
    }
}
