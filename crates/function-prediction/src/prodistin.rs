//! PRODISTIN (Brun et al. 2003) — baseline 3.
//!
//! "Uses the Czekanowski-Dice distance between each pair of proteins as
//! a distance metric and clusters the proteins using the BIONJ
//! algorithm." We compute the same distance, build a neighbor-joining
//! tree once (the distances are label-free, so one tree serves every
//! leave-one-out query), and score a protein's categories by their
//! frequency inside its smallest sufficiently large clade.

use crate::context::{FunctionPredictor, PredictionContext};
use crate::nj::neighbor_joining;
use ppi_graph::VertexId;

/// The PRODISTIN-style predictor.
#[derive(Clone, Copy, Debug)]
pub struct ProdistinPredictor {
    /// Minimum number of annotated clade members (excluding the query)
    /// required before a clade is read.
    pub min_clade: usize,
}

impl Default for ProdistinPredictor {
    fn default() -> Self {
        ProdistinPredictor { min_clade: 3 }
    }
}

/// Czekanowski-Dice distance between proteins `i` and `j`:
/// `|N(i) Δ N(j)| / (|N(i) ∪ N(j)| + |N(i) ∩ N(j)|)` with
/// `N(x) = neighbors(x) ∪ {x}` — interacting proteins with shared
/// partners come out close.
pub fn czekanowski_dice(g: &ppi_graph::Graph, i: VertexId, j: VertexId) -> f64 {
    if i == j {
        return 0.0;
    }
    // Sorted merged neighbor lists including self.
    let with_self = |v: VertexId| -> Vec<u32> {
        let mut n: Vec<u32> = g.neighbors(v).to_vec();
        let pos = n.binary_search(&v.0).unwrap_err();
        n.insert(pos, v.0);
        n
    };
    let a = with_self(i);
    let b = with_self(j);
    let mut inter = 0usize;
    let (mut x, mut y) = (0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                x += 1;
                y += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    let sym_diff = union - inter;
    sym_diff as f64 / (union + inter) as f64
}

impl FunctionPredictor for ProdistinPredictor {
    fn name(&self) -> &str {
        "Prodistin"
    }

    fn predict_all(&self, ctx: &PredictionContext<'_>) -> Vec<Vec<f64>> {
        let n = ctx.protein_count();
        if n < 2 {
            return vec![vec![0.0; ctx.n_categories]; n];
        }
        // Full distance matrix (label-free).
        let mut dist = vec![vec![0.0f64; n]; n];
        // Symmetric fill writes both (i, j) and (j, i), so indices stay.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in i + 1..n {
                let d = czekanowski_dice(ctx.network, VertexId(i as u32), VertexId(j as u32));
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        let tree = neighbor_joining(&dist);

        // NJ trees are inherently unrooted (our root is an arbitrary
        // final join), so "clades" are not meaningful; instead vote with
        // the annotated leaves nearest to `p` in tree-topology distance,
        // expanding ring by ring until at least `min_clade` voters are
        // found (the whole final ring is included for determinism).
        (0..n)
            .map(|p| {
                let mut scores = vec![0.0f64; ctx.n_categories];
                let mut seen = vec![false; tree.parent.len()];
                let mut frontier = vec![p];
                seen[p] = true;
                let mut voters = 0usize;
                while !frontier.is_empty() && voters < self.min_clade {
                    let mut next = Vec::new();
                    for &node in &frontier {
                        for nb in tree.tree_neighbors(node) {
                            if !seen[nb] {
                                seen[nb] = true;
                                next.push(nb);
                            }
                        }
                    }
                    for &node in &next {
                        if node < tree.n_leaves && node != p && !ctx.functions[node].is_empty() {
                            voters += 1;
                            for &c in &ctx.functions[node] {
                                scores[c] += 1.0;
                            }
                        }
                    }
                    frontier = next;
                }
                scores
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::TermId;
    use ppi_graph::Graph;

    #[test]
    fn distance_properties() {
        // Two proteins sharing all partners are close; strangers are far.
        let g = Graph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)]);
        let close = czekanowski_dice(&g, VertexId(0), VertexId(1));
        let far = czekanowski_dice(&g, VertexId(0), VertexId(4));
        assert!(close < far, "close {close} far {far}");
        assert_eq!(czekanowski_dice(&g, VertexId(2), VertexId(2)), 0.0);
        assert!(far <= 1.0);
    }

    #[test]
    fn interacting_pairs_are_closer_than_strangers() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let linked = czekanowski_dice(&g, VertexId(0), VertexId(1));
        let strangers = czekanowski_dice(&g, VertexId(0), VertexId(2));
        assert!(linked < strangers);
    }

    #[test]
    fn clade_majority_predicts_cluster_function() {
        // Two 4-cliques joined by one bridge edge; clique A = function 0,
        // clique B = function 1. Protein 0's clade should vote 0.
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        for i in 4..8u32 {
            for j in i + 1..8 {
                edges.push((i, j));
            }
        }
        edges.push((3, 4));
        let g = Graph::from_edges(8, &edges);
        let functions: Vec<Vec<usize>> = (0..8).map(|i| vec![usize::from(i >= 4)]).collect();
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 2,
            category_terms: &[TermId(0), TermId(1)],
        };
        let scores = ProdistinPredictor::default().predict_all(&ctx);
        assert!(scores[0][0] > scores[0][1], "scores[0] = {:?}", scores[0]);
        assert!(scores[7][1] > scores[7][0], "scores[7] = {:?}", scores[7]);
    }

    #[test]
    fn tiny_network_edge_case() {
        let g = Graph::empty(1);
        let functions = vec![vec![0]];
        let ctx = PredictionContext {
            network: &g,
            functions: &functions,
            n_categories: 1,
            category_terms: &[TermId(0)],
        };
        let scores = ProdistinPredictor::default().predict_all(&ctx);
        assert_eq!(scores, vec![vec![0.0]]);
    }
}
