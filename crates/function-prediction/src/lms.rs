//! Labeled network motif strength — Equation 4 of the paper.
//!
//! ```text
//! LMS(g_labeled) = s(g_labeled) · |g_labeled| / max_k
//! ```
//!
//! where `|g_labeled|` is the labeled motif's frequency (its support:
//! the number of occurrences conforming to the scheme), `s` is the
//! parent motif's uniqueness, and `max_k` normalizes within each motif
//! size `k` (so meso-scale motifs are comparable to small ones).

use lamofinder::LabeledMotif;

/// Compute `LMS` for every labeled motif. Motifs without a measured
/// uniqueness contribute `s = 1` (the finder only emits unique motifs).
pub fn lms_scores(motifs: &[LabeledMotif]) -> Vec<f64> {
    let raw: Vec<f64> = motifs
        .iter()
        .map(|m| m.uniqueness.unwrap_or(1.0) * m.support() as f64)
        .collect();
    // Per-size maxima.
    let mut max_by_size: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    for (m, &r) in motifs.iter().zip(&raw) {
        let e = max_by_size.entry(m.size()).or_insert(0.0);
        if r > *e {
            *e = r;
        }
    }
    motifs
        .iter()
        .zip(&raw)
        .map(|(m, &r)| {
            let mk = max_by_size[&m.size()];
            if mk > 0.0 {
                r / mk
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use go_ontology::Namespace;
    use lamofinder::{LabelingScheme, VertexLabel};
    use motif_finder::Occurrence;
    use ppi_graph::{Graph, VertexId};

    fn motif(size: usize, support: usize, uniqueness: Option<f64>) -> LabeledMotif {
        let edges: Vec<(u32, u32)> = (0..size as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledMotif {
            pattern: Graph::from_edges(size, &edges),
            namespace: Namespace::BiologicalProcess,
            scheme: LabelingScheme::new(vec![VertexLabel::unknown(); size]),
            occurrences: (0..support)
                .map(|i| {
                    Occurrence::new((0..size).map(|v| VertexId((i * size + v) as u32)).collect())
                })
                .collect(),
            motif_frequency: support,
            uniqueness,
        }
    }

    #[test]
    fn normalized_within_each_size() {
        let motifs = vec![
            motif(3, 100, Some(1.0)),
            motif(3, 50, Some(1.0)),
            motif(5, 10, Some(1.0)),
        ];
        let lms = lms_scores(&motifs);
        assert!((lms[0] - 1.0).abs() < 1e-12);
        assert!((lms[1] - 0.5).abs() < 1e-12);
        assert!((lms[2] - 1.0).abs() < 1e-12, "own-size max");
    }

    #[test]
    fn uniqueness_scales_strength() {
        let motifs = vec![motif(3, 100, Some(0.5)), motif(3, 100, Some(1.0))];
        let lms = lms_scores(&motifs);
        assert!((lms[0] - 0.5).abs() < 1e-12);
        assert!((lms[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_uniqueness_defaults_to_one() {
        let motifs = vec![motif(4, 20, None)];
        let lms = lms_scores(&motifs);
        assert!((lms[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(lms_scores(&[]).is_empty());
    }
}
