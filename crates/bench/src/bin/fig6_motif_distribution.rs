//! Experiment F6 + S4 — reproduce **Figure 6** (labeled network motif
//! distribution by size) and the Section 4 headline statistics
//! (unlabeled motifs found, total labeled motifs extracted, meso-scale
//! share).
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin fig6_motif_distribution [small|full]
//! ```

use lamofinder_bench::report::{bar_chart, print_table};
use lamofinder_bench::{find_motifs, label_all_namespaces, yeast, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    println!("Figure 6 — labeled motif distribution ({scale:?} scale)\n");

    let t0 = Instant::now();
    let data = yeast(scale);
    println!(
        "interactome: {} proteins, {} interactions ({} annotated; paper: 4141 / 7095 / 3554)",
        data.network.vertex_count(),
        data.network.edge_count(),
        data.annotations.annotated_protein_count()
    );

    let t1 = Instant::now();
    let (motifs, report) = find_motifs(&data.network, scale);
    println!(
        "\nunlabeled motifs: {} (from {} frequent classes; paper: 1367) in {:.1?}",
        motifs.len(),
        report.frequent_classes,
        t1.elapsed()
    );
    if !report.truncated_levels.is_empty() || !report.truncated_levels.is_empty() {
        println!(
            "  growth caps hit: candidates at sizes {:?}",
            report.truncated_levels
        );
    }

    let t2 = Instant::now();
    let labeled = label_all_namespaces(&data.ontology, &data.annotations, &motifs, scale);
    println!(
        "labeled motifs: {} (paper: 3842) in {:.1?}",
        labeled.len(),
        t2.elapsed()
    );

    // Size distribution.
    let max_size = labeled.iter().map(|m| m.size()).max().unwrap_or(0);
    let mut by_size = vec![0usize; max_size + 1];
    for lm in &labeled {
        by_size[lm.size()] += 1;
    }
    let total = labeled.len().max(1);
    println!();
    let chart: Vec<(String, f64)> = (3..=max_size)
        .map(|k| (format!("size {k:>2}"), by_size[k] as f64))
        .collect();
    bar_chart("labeled network motifs per size:", &chart, 50);

    let mut rows = Vec::new();
    for k in 3..=max_size {
        if by_size[k] > 0 {
            rows.push(vec![
                k.to_string(),
                by_size[k].to_string(),
                format!("{:.1}%", 100.0 * by_size[k] as f64 / total as f64),
            ]);
        }
    }
    println!();
    print_table(&["size", "labeled motifs", "share"], &rows);

    let meso: usize = (5..=max_size.min(25)).map(|k| by_size[k]).sum();
    println!(
        "\nmeso-scale (5-25 vertices) share: {:.1}% (paper: majority; peak at sizes 16-17)",
        100.0 * meso as f64 / total as f64
    );
    println!("total wall time {:.1?}", t0.elapsed());
}
