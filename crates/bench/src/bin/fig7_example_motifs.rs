//! Experiment F7 — reproduce **Figure 7**: example labeled network
//! motifs of the three kinds the paper showcases:
//!
//! * `g1` — a *uni-labeled* motif (all vertices share one function —
//!   "notable functional homogeneity in large motifs");
//! * `g2` — a *non-uni-labeled* motif (distinct but biologically related
//!   functions);
//! * `g3` — a *parallel-labeled* motif (functional + cellular-location
//!   labels on the same topology).
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin fig7_example_motifs [small|full]
//! ```

use go_ontology::Namespace;
use lamofinder::LabeledMotif;
use lamofinder_bench::{find_motifs, label_namespace, yeast, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 7 — example labeled network motifs ({scale:?} scale)\n");

    let data = yeast(scale);
    let (motifs, _) = find_motifs(&data.network, scale);
    println!("unlabeled motifs: {}", motifs.len());

    let process = label_namespace(
        &data.ontology,
        &data.annotations,
        &motifs,
        Namespace::BiologicalProcess,
        scale,
    );
    let location = label_namespace(
        &data.ontology,
        &data.annotations,
        &motifs,
        Namespace::CellularComponent,
        scale,
    );
    println!(
        "labeled motifs: {} (process branch), {} (location branch)\n",
        process.len(),
        location.len()
    );

    // g1: uni-labeled — every labeled vertex carries the same label set.
    let uni = process.iter().filter(|m| is_uni_labeled(m)).max_by_key(|m| {
        (m.size(), m.support())
    });
    match uni {
        Some(m) => {
            println!("g1 — uni-labeled motif (functional homogeneity, cf. protein complexes):");
            print!("{}", m.render(&data.ontology));
        }
        None => println!("g1 — no uni-labeled motif found at this scale"),
    }

    // g2: non-uni-labeled — at least two distinct labeled vertex roles.
    let multi = process
        .iter()
        .filter(|m| distinct_roles(m) >= 2)
        .max_by_key(|m| (distinct_roles(m), m.support()));
    match multi {
        Some(m) => {
            println!("\ng2 — non-uni-labeled motif (distinct related roles, cf. regulation):");
            print!("{}", m.render(&data.ontology));
        }
        None => println!("\ng2 — no multi-role motif found at this scale"),
    }

    // g3: parallel labels — the same topology labeled in both branches.
    let parallel = process.iter().find_map(|pm| {
        location
            .iter()
            .find(|lm| ppi_graph::are_isomorphic(&lm.pattern, &pm.pattern))
            .map(|lm| (pm, lm))
    });
    match parallel {
        Some((pm, lm)) => {
            println!("\ng3 — parallel-labeled motif (function x cellular location):");
            println!("function labels:");
            print!("{}", pm.render(&data.ontology));
            println!("location labels (same topology):");
            print!("{}", lm.render(&data.ontology));
        }
        None => println!("\ng3 — no topology labeled in both branches at this scale"),
    }
}

fn is_uni_labeled(m: &LabeledMotif) -> bool {
    let labeled: Vec<_> = m
        .scheme
        .labels
        .iter()
        .filter(|l| !l.is_unknown())
        .collect();
    labeled.len() >= 2 && labeled.windows(2).all(|w| w[0] == w[1])
}

fn distinct_roles(m: &LabeledMotif) -> usize {
    let mut roles: Vec<_> = m
        .scheme
        .labels
        .iter()
        .filter(|l| !l.is_unknown())
        .map(|l| l.terms.clone())
        .collect();
    roles.sort();
    roles.dedup();
    roles.len()
}
