//! Experiment S1 (ours) — the `O(|D|²)` labeling-cost claim of
//! Section 3.2: wall time of the occurrence clustering as the occurrence
//! set doubles. Also reports the symmetry-handling cost (the per-orbit
//! assignment replacing the paper's `O(t!)` pairing enumeration).
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin scalability [small|full]
//! ```

use go_ontology::{Namespace, ProteinId, TermId, TermSimilarity, TermWeights};
use lamofinder::{cluster_occurrences, compute_frontier, ClusteringConfig, LabelContext};
use lamofinder_bench::report::print_table;
use lamofinder_bench::{find_motifs, yeast, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    println!("Scalability — labeling cost vs occurrence count ({scale:?})\n");

    let data = yeast(scale);
    let (motifs, _) = find_motifs(&data.network, scale);
    let Some(motif) = motifs.iter().max_by_key(|m| m.occurrences.len()) else {
        println!("no motifs found");
        return;
    };
    println!(
        "test motif: size {}, {} stored occurrences, {} symmetric sets",
        motif.size(),
        motif.occurrences.len(),
        ppi_graph::symmetric_vertex_sets(&motif.pattern).len()
    );

    let weights = TermWeights::compute(&data.ontology, &data.annotations);
    let sim = TermSimilarity::new(&data.ontology, &weights);
    let min_direct = if scale == Scale::Full { 30 } else { 5 };
    let informative = go_ontology::InformativeClasses::compute(
        &data.ontology,
        &data.annotations,
        go_ontology::InformativeConfig {
            min_direct,
            ..Default::default()
        },
    );
    let frontier = compute_frontier(&data.ontology, &informative);
    let ns = Namespace::BiologicalProcess;
    let terms_by_protein: Vec<Vec<TermId>> = (0..data.annotations.protein_count())
        .map(|p| {
            data.annotations
                .terms_of(ProteinId(p as u32))
                .iter()
                .copied()
                .filter(|&t| data.ontology.namespace(t) == ns)
                .collect()
        })
        .collect();
    let ctx = LabelContext {
        ontology: &data.ontology,
        sim: &sim,
        informative: &informative,
        terms_by_protein: &terms_by_protein,
        frontier: &frontier,
        dense: None,
    };
    let config = ClusteringConfig {
        sigma: 5,
        ..Default::default()
    };

    let mut rows = Vec::new();
    let mut last: Option<f64> = None;
    for &d in &[25usize, 50, 100, 200] {
        if d > motif.occurrences.len() {
            break;
        }
        let occs: Vec<_> = motif.occurrences.iter().take(d).cloned().collect();
        let t = Instant::now();
        let clusters = cluster_occurrences(&motif.pattern, &occs, &ctx, &config);
        let secs = t.elapsed().as_secs_f64();
        let ratio = last.map_or("-".to_string(), |l| format!("{:.1}x", secs / l.max(1e-9)));
        last = Some(secs);
        rows.push(vec![
            d.to_string(),
            format!("{secs:.3}s"),
            ratio,
            clusters.len().to_string(),
        ]);
    }
    print_table(&["|D|", "time", "vs previous", "schemes"], &rows);
    println!(
        "\n(doubling |D| should roughly quadruple the time — the O(|D|^2)\n\
         pairwise-similarity bound of Section 3.2)"
    );
}
