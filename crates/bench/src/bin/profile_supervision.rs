//! Profile the supervision layer's work-tick accounting and the serving
//! layer's degraded modes, writing `BENCH_robustness.json`.
//!
//! Supervision: the discovery and labeling pipelines run under a
//! passive context (no metering) and a metered one (every tick
//! counted), repeated with the minimum taken, and the relative overhead
//! reported; the budget is < 3% overhead (DESIGN.md §13).
//!
//! Serving (DESIGN.md §16 "Serving fault model"): a deliberately
//! starved server (1 worker, tiny queue) is driven to saturation to
//! measure shed rate and the qps/p99 of what still gets through, with a
//! tick-accounting tripwire proving sheds are O(1) (a shed request
//! consumes zero postings); then `swap_artifact` latency is measured
//! under continuous query load. A `ServerStats` dump lands in
//! `target/server-stats.json` for the CI artifact.

use function_prediction::{CategoryView, PredictionContext};
use lamo_serve::{AdmissionPolicy, ModelArtifact, PendingQuery, ServeConfig, ServeError, Server};
use lamofinder_bench::report::{check, json_array, JsonObject};
use lamofinder_bench::{finder_config, label_all_namespaces, top_categories, yeast, Scale};
use lamofinder::{LaMoFinder, LaMoFinderConfig};
use motif_finder::{resume_growth, GrowthCheckpoint, Motif};
use par_util::RunContext;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const REPEATS: usize = 5;
const OVERHEAD_BUDGET_PCT: f64 = 3.0;
/// Categories in the serving fixture (the paper's evaluation space).
const N_CATEGORIES: usize = 13;
/// Open-loop burst size for the saturation measurement.
const BURST: usize = 4000;
/// Queue depth of the deliberately starved server.
const STARVED_DEPTH: usize = 4;
/// Artifact swaps timed under load.
const SWAPS: usize = 200;

/// Minimum wall time of `run` over [`REPEATS`] repetitions.
fn min_secs(mut run: impl FnMut()) -> f64 {
    (0..REPEATS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Time one workload under a passive and a metered context and render
/// its row. `work` must run the pipeline to completion under the given
/// context; the metered pass also reports the tick volume.
fn profile(name: &str, work: impl Fn(&RunContext)) -> (f64, String) {
    // Warm-up pass so neither timed variant pays first-touch costs.
    work(&RunContext::unbounded());
    let passive = min_secs(|| work(&RunContext::unbounded()));
    let metered_ctx = RunContext::metered();
    work(&metered_ctx);
    let ticks = metered_ctx.ticks_spent();
    let metered = min_secs(|| work(&RunContext::metered()));
    let overhead_pct = if passive > 0.0 {
        (metered - passive) / passive * 100.0
    } else {
        0.0
    };
    println!(
        "{name}: passive {passive:.3}s, metered {metered:.3}s ({ticks} ticks) \
         -> overhead {overhead_pct:+.2}% [{}]",
        check(overhead_pct < OVERHEAD_BUDGET_PCT)
    );
    let row = JsonObject::new()
        .str("workload", name)
        .num("passive_secs", passive)
        .num("metered_secs", metered)
        .int("ticks", ticks as usize)
        .num("overhead_pct", overhead_pct)
        .render();
    (overhead_pct, row)
}

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

fn stats_json(stats: &lamo_serve::StatsSnapshot) -> String {
    JsonObject::new()
        .int("accepted", stats.accepted as usize)
        .int("shed", stats.shed as usize)
        .int("answered", stats.answered as usize)
        .int("panicked", stats.panicked as usize)
        .int("deadline_expired", stats.deadline_expired as usize)
        .int("swaps", stats.swaps as usize)
        .render()
}

/// Open-loop burst against a starved server (1 worker, queue depth
/// [`STARVED_DEPTH`], shed policy): measures shed rate and the qps/p99
/// of the requests that were admitted, and asserts the O(1)-shed
/// tripwire — every tick the server charged is accounted to an answered
/// prediction's postings, so the shed requests consumed none.
fn profile_saturation(artifact: &Arc<ModelArtifact>) -> (String, String) {
    let ctx = Arc::new(RunContext::metered());
    let server = Server::start(
        Arc::clone(artifact),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            queue_depth: STARVED_DEPTH,
            admission: AdmissionPolicy::Shed,
        },
        Arc::clone(&ctx),
    );
    let protein_count = artifact.protein_count();
    let mut pending: Vec<(Instant, PendingQuery)> = Vec::new();
    let mut shed = 0usize;
    let t_burst = Instant::now();
    for i in 0..BURST {
        match server.submit(i % protein_count) {
            Ok(handle) => pending.push((Instant::now(), handle)),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected submit failure under saturation: {e}"),
        }
    }
    // FIFO + one worker: handle i completes before handle i+1, so the
    // elapsed time when each wait returns approximates its completion
    // latency even though the waits run sequentially.
    let accepted = pending.len();
    let mut latencies: Vec<f64> = Vec::with_capacity(accepted);
    let mut postings_total = 0u64;
    for (t, handle) in pending {
        let prediction = handle.wait().expect("accepted request must be served");
        latencies.push(t.elapsed().as_secs_f64());
        postings_total += prediction.postings as u64;
    }
    let wall = t_burst.elapsed().as_secs_f64();
    latencies.sort_unstable_by(f64::total_cmp);
    let stats = server.stats();
    server.shutdown();

    // The tripwire. A shed that walked postings (or charged ticks any
    // other way) breaks this equality.
    assert_eq!(
        ctx.ticks_spent(),
        postings_total,
        "shed requests must consume zero postings (O(1) shed)"
    );
    assert_eq!(stats.shed as usize, shed);
    assert_eq!(stats.accepted as usize, accepted);
    assert_eq!(stats.answered as usize, accepted);

    let shed_rate = shed as f64 / BURST as f64;
    let qps = accepted as f64 / wall.max(1e-12);
    let p99 = percentile_us(&latencies, 0.99);
    println!(
        "serving saturation: burst {BURST} -> accepted {accepted}, shed {shed} \
         ({:.1}% shed), {qps:.0} qps, p99 {p99:.1}µs, tripwire {} \
         ({postings_total} postings == {} ticks)",
        shed_rate * 100.0,
        check(true),
        ctx.ticks_spent()
    );
    let row = JsonObject::new()
        .str("mode", "queue_saturation")
        .int("burst", BURST)
        .int("queue_depth", STARVED_DEPTH)
        .int("workers", 1)
        .int("accepted", accepted)
        .int("shed", shed)
        .num("shed_rate", shed_rate)
        .num("admitted_qps", qps)
        .num("admitted_p99_us", p99)
        .int("ticks_spent", ctx.ticks_spent() as usize)
        .int("answered_postings", postings_total as usize)
        .bool("shed_is_o1", true)
        .render();
    (row, stats_json(&stats))
}

/// Time [`Server::swap_artifact`] while client threads keep querying:
/// swap latency is what an operator pays to push a new model, and the
/// load thread proves readers never block (every query under swap load
/// succeeds).
fn profile_swap(artifact: &Arc<ModelArtifact>) -> (String, String) {
    let server = Server::start(
        Arc::clone(artifact),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Arc::new(RunContext::unbounded()),
    );
    let protein_count = artifact.protein_count();
    let stop = AtomicBool::new(false);
    let (mut swap_lat, served_under_load) = crossbeam::scope(|scope| {
        let server = &server;
        let stop = &stop;
        let load = scope.spawn(move |_| {
            let mut served = 0usize;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                server
                    .query(i % protein_count)
                    .expect("query under swap load must succeed");
                served += 1;
                i += 1;
            }
            served
        });
        let mut lat = Vec::with_capacity(SWAPS);
        for _ in 0..SWAPS {
            let t = Instant::now();
            server
                .swap_artifact(Arc::clone(artifact))
                .expect("a valid artifact always swaps");
            lat.push(t.elapsed().as_secs_f64());
        }
        stop.store(true, Ordering::Relaxed);
        let served = load.join().expect("load thread must not panic");
        (lat, served)
    })
    .expect("swap-load scope must not panic");
    assert_eq!(server.epoch(), SWAPS as u64, "each swap bumps the epoch once");
    let stats = server.stats();
    server.shutdown();
    swap_lat.sort_unstable_by(f64::total_cmp);
    let p50 = percentile_us(&swap_lat, 0.50);
    let p99 = percentile_us(&swap_lat, 0.99);
    println!(
        "serving swap-under-load: {SWAPS} swaps over {served_under_load} live queries, \
         swap p50 {p50:.1}µs, p99 {p99:.1}µs"
    );
    let row = JsonObject::new()
        .str("mode", "swap_under_load")
        .int("swaps", SWAPS)
        .int("workers", 2)
        .int("queries_served_during", served_under_load)
        .num("swap_p50_us", p50)
        .num("swap_p99_us", p99)
        .render();
    (row, stats_json(&stats))
}

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);

    let mut rows: Vec<String> = Vec::new();
    let mut worst = f64::NEG_INFINITY;

    // Discovery: the growth loop ticks per candidate scored.
    let growth_config = config.growth.clone();
    let (overhead, row) = profile("discovery", |ctx| {
        resume_growth(&data.network, &growth_config, GrowthCheckpoint::default(), ctx)
            .expect("a complete context never interrupts discovery");
    });
    rows.push(row);
    worst = worst.max(overhead);

    // Labeling: ticks per similarity row and per motif. The motifs come
    // from one discovery pass over the same network.
    let report = resume_growth(
        &data.network,
        &config.growth,
        GrowthCheckpoint::default(),
        &RunContext::unbounded(),
    )
    .expect("a passive context never interrupts discovery");
    let motifs: Vec<Motif> = report
        .classes
        .into_iter()
        .map(|c| Motif {
            pattern: c.pattern,
            occurrences: c.occurrences,
            frequency: c.frequency,
            uniqueness: None,
        })
        .collect();
    let labeler = LaMoFinder::new(
        &data.ontology,
        &data.annotations,
        LaMoFinderConfig::default(),
    );
    let (overhead, row) = profile("labeling", |ctx| {
        labeler
            .label_motifs_supervised(&motifs, ctx)
            .expect("a complete context never interrupts labeling");
    });
    rows.push(row);
    worst = worst.max(overhead);

    // ── Serving degraded modes. The artifact is compiled from the same
    // discovery pass; whatever the scale, the starved-queue and
    // swap-under-load shapes are the measurement, not the data size.
    let labeled = label_all_namespaces(&data.ontology, &data.annotations, &motifs, scale);
    let categories = top_categories(&data.annotations, N_CATEGORIES);
    let view = CategoryView::new(&data.ontology, &data.annotations, &categories);
    let artifact = Arc::new(ModelArtifact::build(
        &labeled,
        &PredictionContext {
            network: &data.network,
            functions: &view.functions,
            n_categories: view.n_categories(),
            category_terms: &view.categories,
        },
    ));
    let (saturation_row, saturation_stats) = profile_saturation(&artifact);
    let (swap_row, swap_stats) = profile_swap(&artifact);

    // ServerStats dump for the CI artifact: the raw counters behind the
    // degraded-mode rows.
    let stats_doc = JsonObject::new()
        .raw("saturation", saturation_stats)
        .raw("swap_under_load", swap_stats)
        .render();
    std::fs::write("target/server-stats.json", format!("{stats_doc}\n"))
        .expect("write target/server-stats.json");

    let doc = JsonObject::new()
        .str("benchmark", "robustness")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("motifs_labeled", motifs.len())
        .int("repeats", REPEATS)
        .num("overhead_budget_pct", OVERHEAD_BUDGET_PCT)
        .num("worst_overhead_pct", worst)
        .raw("workloads", json_array(&rows))
        .raw("serving_degraded", json_array(&[saturation_row, swap_row]))
        .render();
    std::fs::write("BENCH_robustness.json", format!("{doc}\n"))
        .expect("write BENCH_robustness.json");
    println!(
        "wrote BENCH_robustness.json (worst overhead {worst:+.2}%, budget {OVERHEAD_BUDGET_PCT}%) \
         and target/server-stats.json"
    );
}
