//! Profile the supervision layer's work-tick accounting: the discovery
//! and labeling pipelines run under a passive context (no metering) and
//! a metered one (every tick counted), repeated with the minimum taken,
//! and the relative overhead reported. Writes `BENCH_robustness.json`;
//! the budget is < 3% overhead (DESIGN.md §13).

use lamofinder_bench::report::{check, json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use lamofinder::{LaMoFinder, LaMoFinderConfig};
use motif_finder::{resume_growth, GrowthCheckpoint, Motif};
use par_util::RunContext;
use std::time::Instant;

const REPEATS: usize = 5;
const OVERHEAD_BUDGET_PCT: f64 = 3.0;

/// Minimum wall time of `run` over [`REPEATS`] repetitions.
fn min_secs(mut run: impl FnMut()) -> f64 {
    (0..REPEATS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Time one workload under a passive and a metered context and render
/// its row. `work` must run the pipeline to completion under the given
/// context; the metered pass also reports the tick volume.
fn profile(name: &str, work: impl Fn(&RunContext)) -> (f64, String) {
    // Warm-up pass so neither timed variant pays first-touch costs.
    work(&RunContext::unbounded());
    let passive = min_secs(|| work(&RunContext::unbounded()));
    let metered_ctx = RunContext::metered();
    work(&metered_ctx);
    let ticks = metered_ctx.ticks_spent();
    let metered = min_secs(|| work(&RunContext::metered()));
    let overhead_pct = if passive > 0.0 {
        (metered - passive) / passive * 100.0
    } else {
        0.0
    };
    println!(
        "{name}: passive {passive:.3}s, metered {metered:.3}s ({ticks} ticks) \
         -> overhead {overhead_pct:+.2}% [{}]",
        check(overhead_pct < OVERHEAD_BUDGET_PCT)
    );
    let row = JsonObject::new()
        .str("workload", name)
        .num("passive_secs", passive)
        .num("metered_secs", metered)
        .int("ticks", ticks as usize)
        .num("overhead_pct", overhead_pct)
        .render();
    (overhead_pct, row)
}

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);

    let mut rows: Vec<String> = Vec::new();
    let mut worst = f64::NEG_INFINITY;

    // Discovery: the growth loop ticks per candidate scored.
    let growth_config = config.growth.clone();
    let (overhead, row) = profile("discovery", |ctx| {
        resume_growth(&data.network, &growth_config, GrowthCheckpoint::default(), ctx)
            .expect("a complete context never interrupts discovery");
    });
    rows.push(row);
    worst = worst.max(overhead);

    // Labeling: ticks per similarity row and per motif. The motifs come
    // from one discovery pass over the same network.
    let report = resume_growth(
        &data.network,
        &config.growth,
        GrowthCheckpoint::default(),
        &RunContext::unbounded(),
    )
    .expect("a passive context never interrupts discovery");
    let motifs: Vec<Motif> = report
        .classes
        .into_iter()
        .map(|c| Motif {
            pattern: c.pattern,
            occurrences: c.occurrences,
            frequency: c.frequency,
            uniqueness: None,
        })
        .collect();
    let labeler = LaMoFinder::new(
        &data.ontology,
        &data.annotations,
        LaMoFinderConfig::default(),
    );
    let (overhead, row) = profile("labeling", |ctx| {
        labeler
            .label_motifs_supervised(&motifs, ctx)
            .expect("a complete context never interrupts labeling");
    });
    rows.push(row);
    worst = worst.max(overhead);

    let doc = JsonObject::new()
        .str("benchmark", "supervision_overhead")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("motifs_labeled", motifs.len())
        .int("repeats", REPEATS)
        .num("overhead_budget_pct", OVERHEAD_BUDGET_PCT)
        .num("worst_overhead_pct", worst)
        .raw("workloads", json_array(&rows))
        .render();
    std::fs::write("BENCH_robustness.json", format!("{doc}\n"))
        .expect("write BENCH_robustness.json");
    println!(
        "wrote BENCH_robustness.json (worst overhead {worst:+.2}%, budget {OVERHEAD_BUDGET_PCT}%)"
    );
}
