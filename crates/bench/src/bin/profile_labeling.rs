//! Profile the labeling hot path: memoized [`TermSimilarity`] oracle vs
//! the precomputed dense ST/SV kernels (DESIGN.md §14), at 1/2/4 worker
//! threads, over the motifs of one discovery pass. Also times the dense
//! plane build alone so its amortization against the end-to-end win is
//! visible. Writes `BENCH_labeling.json`; the acceptance bar is a ≥ 2×
//! single-thread speedup at small scale.

use go_ontology::DenseSimPlanes;
use lamofinder_bench::report::{check, json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use lamofinder::{
    ClusteringConfig, LaMoFinder, LaMoFinderConfig, SimilarityKernel,
};
use motif_finder::{resume_growth, GrowthCheckpoint, Motif};
use par_util::RunContext;
use std::time::Instant;

const REPEATS: usize = 2;
const SPEEDUP_BAR: f64 = 2.0;
const THREADS: [usize; 3] = [1, 2, 4];

/// Minimum wall time of `run` over [`REPEATS`] repetitions, after one
/// untimed warm-up pass.
fn min_secs(mut run: impl FnMut()) -> f64 {
    run();
    (0..REPEATS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);

    let report = resume_growth(
        &data.network,
        &config.growth,
        GrowthCheckpoint::default(),
        &RunContext::unbounded(),
    )
    .expect("a passive context never interrupts discovery");
    let motifs: Vec<Motif> = report
        .classes
        .into_iter()
        .map(|c| Motif {
            pattern: c.pattern,
            occurrences: c.occurrences,
            frequency: c.frequency,
            uniqueness: None,
        })
        .collect();
    println!(
        "profiling labeling over {} motifs ({} vertices, {} edges)",
        motifs.len(),
        data.network.vertex_count(),
        data.network.edge_count()
    );

    let (sigma, min_direct) = match scale {
        Scale::Full => (10, 30),
        Scale::Small => (5, 5),
    };
    let labeler_with = |kernel: SimilarityKernel, threads: usize| {
        LaMoFinder::new(
            &data.ontology,
            &data.annotations,
            LaMoFinderConfig {
                clustering: ClusteringConfig {
                    sigma,
                    ..Default::default()
                },
                informative: go_ontology::InformativeConfig {
                    min_direct,
                    ..Default::default()
                },
                threads,
                kernel,
                ..Default::default()
            },
        )
    };

    // Dense plane build alone, for amortization: built once per
    // namespace, it is paid once per labeling run regardless of how many
    // motifs follow.
    let probe = labeler_with(SimilarityKernel::Dense, 1);
    let plane_build_secs = min_secs(|| {
        DenseSimPlanes::build(
            &data.ontology,
            probe.weights(),
            probe.terms_by_protein(),
            1,
            &RunContext::unbounded(),
        )
        .expect("no faults injected")
        .expect("passive context never cancels");
    });
    println!("dense plane build: {plane_build_secs:.4}s (1 thread)");

    let mut rows: Vec<String> = Vec::new();
    let mut secs_1t = [0.0f64; 2];
    let mut stats_row = String::new();
    for (ki, kernel) in [SimilarityKernel::Memoized, SimilarityKernel::Dense]
        .into_iter()
        .enumerate()
    {
        for threads in THREADS {
            let labeler = labeler_with(kernel, threads);
            let mut labeled = 0usize;
            let secs = min_secs(|| {
                labeled = labeler.label_motifs(&motifs).len();
            });
            if threads == 1 {
                secs_1t[ki] = secs;
            }
            let kernel_name = match kernel {
                SimilarityKernel::Memoized => "memoized",
                SimilarityKernel::Dense => "dense",
            };
            println!("{kernel_name} @ {threads} threads: {secs:.3}s ({labeled} labeled motifs)");
            rows.push(
                JsonObject::new()
                    .str("kernel", kernel_name)
                    .int("threads", threads)
                    .num("secs", secs)
                    .int("labeled_motifs", labeled)
                    .render(),
            );
            if kernel == SimilarityKernel::Dense && threads == 1 {
                let stats = labeler.kernel_stats();
                stats_row = JsonObject::new()
                    .int("st_plane_terms", stats.st_plane_terms)
                    .int("st_plane_bytes", stats.st_plane_bytes)
                    .int("st_plane_build_ticks", stats.st_plane_build_ticks as usize)
                    .int("sv_planes", stats.sv_planes)
                    .int("sv_plane_pairs", stats.sv_plane_pairs)
                    .int("sv_plane_bytes", stats.sv_plane_bytes)
                    .int("sv_oracle_calls", stats.sv_oracle_calls as usize)
                    .render();
            }
        }
    }

    let speedup_1t = secs_1t[0] / secs_1t[1];
    let amortization_pct = plane_build_secs / secs_1t[1] * 100.0;
    println!(
        "1-thread speedup: {speedup_1t:.2}x (bar {SPEEDUP_BAR}x) [{}]; \
         plane build is {amortization_pct:.1}% of the dense run",
        check(speedup_1t >= SPEEDUP_BAR)
    );

    let doc = JsonObject::new()
        .str("benchmark", "labeling_kernels")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("motifs", motifs.len())
        .int("repeats", REPEATS)
        .num("plane_build_secs", plane_build_secs)
        .num("plane_build_pct_of_dense_run", amortization_pct)
        .num("speedup_1t", speedup_1t)
        .num("speedup_bar", SPEEDUP_BAR)
        .raw("kernel_stats", stats_row)
        .raw("runs", json_array(&rows))
        .render();
    std::fs::write("BENCH_labeling.json", format!("{doc}\n")).expect("write BENCH_labeling.json");
    println!("wrote BENCH_labeling.json");
}
