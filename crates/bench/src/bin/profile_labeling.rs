//! Profile the labeling hot path: memoized [`TermSimilarity`] oracle vs
//! the precomputed dense ST/SV kernels (DESIGN.md §14), swept over
//! requested worker threads 1/2/4 on the active fixture AND the
//! paper-scale 4141v/7095e yeast network. Writes `BENCH_labeling.json`;
//! the acceptance bar is a ≥ 2× single-thread speedup at small scale.
//!
//! Requested worker counts are clamped to the host's available
//! parallelism before measuring, and requests that collapse to the same
//! effective count share one measurement (the same dedup as
//! `profile_find`'s growth sweep). Every row carries
//! `{kernel, threads, effective_threads, secs, labeled_motifs}`, with
//! `"clamped": true` added where `effective_threads < threads` so
//! speedup tripwires can skip rows that measured the clamp rather than
//! the engine. Both sections emit the same row schema so dashboards can
//! diff scales without special-casing.
//!
//! The dense plane build is also timed alone so its amortization
//! against the end-to-end win is visible: the labeler caches the built
//! planes after the untimed warm-up pass, so `secs` on dense rows
//! measures steady-state labeling with the build already paid.

use go_ontology::DenseSimPlanes;
use lamofinder_bench::report::{check, json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use lamofinder::{ClusteringConfig, LaMoFinder, LaMoFinderConfig, SimilarityKernel};
use motif_finder::{resume_growth, GrowthCheckpoint, GrowthConfig, Motif};
use par_util::RunContext;
use std::time::Instant;
use synthetic_data::YeastDataset;

/// Timing repetitions (the minimum is reported) on the small fixture.
/// The yeast section runs each measurement once — labeling the paper
/// network takes long enough that repeats would stretch CI for noise
/// reduction it does not need.
const REPEATS: usize = 2;
const SPEEDUP_BAR: f64 = 2.0;
const THREADS: [usize; 3] = [1, 2, 4];

/// Minimum wall time of `run` over `reps` repetitions, after one
/// untimed warm-up pass (which also populates the labeler's dense-plane
/// cache, keeping the timed passes steady-state).
fn min_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    run();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// One kernel × threads labeling sweep over a fixture, rendered as the
/// JSON object `{vertices, edges, motifs, reps, plane_build_secs,
/// plane_build_pct_of_dense_run, speedup_1t, speedup_bar, kernel_stats,
/// runs}`. The speedup bar is only *asserted* by the caller at small
/// scale; the section always records it.
fn profile_section(
    label: &str,
    data: &YeastDataset,
    growth: &GrowthConfig,
    sigma: usize,
    min_direct: usize,
    cores: usize,
    reps: usize,
) -> String {
    let report = resume_growth(
        &data.network,
        growth,
        GrowthCheckpoint::default(),
        &RunContext::unbounded(),
    )
    .expect("a passive context never interrupts discovery");
    let motifs: Vec<Motif> = report
        .classes
        .into_iter()
        .map(|c| Motif {
            pattern: c.pattern,
            occurrences: c.occurrences,
            frequency: c.frequency,
            uniqueness: None,
        })
        .collect();
    println!(
        "{label}: profiling labeling over {} motifs ({} vertices, {} edges)",
        motifs.len(),
        data.network.vertex_count(),
        data.network.edge_count()
    );

    let labeler_with = |kernel: SimilarityKernel, threads: usize| {
        LaMoFinder::new(
            &data.ontology,
            &data.annotations,
            LaMoFinderConfig {
                clustering: ClusteringConfig {
                    sigma,
                    ..Default::default()
                },
                informative: go_ontology::InformativeConfig {
                    min_direct,
                    ..Default::default()
                },
                threads,
                kernel,
                ..Default::default()
            },
        )
    };

    // Dense plane build alone, for amortization: built once per
    // namespace, it is paid once per labeler lifetime regardless of how
    // many labeling runs follow.
    let probe = labeler_with(SimilarityKernel::Dense, 1);
    let plane_build_secs = min_secs(reps, || {
        DenseSimPlanes::build(
            &data.ontology,
            probe.weights(),
            probe.terms_by_protein(),
            1,
            &RunContext::unbounded(),
        )
        .expect("no faults injected")
        .expect("passive context never cancels");
    });
    println!("{label}: dense plane build {plane_build_secs:.4}s (1 thread)");

    let mut rows: Vec<String> = Vec::new();
    let mut secs_1t = [0.0f64; 2];
    let mut stats_row = String::new();
    for (ki, kernel) in [SimilarityKernel::Memoized, SimilarityKernel::Dense]
        .into_iter()
        .enumerate()
    {
        let kernel_name = match kernel {
            SimilarityKernel::Memoized => "memoized",
            SimilarityKernel::Dense => "dense",
        };
        // Requests that clamp to the same effective count share one
        // measurement: running more workers than cores measures the
        // scheduler, not the kernel (the output is identical either
        // way).
        let mut measured: Vec<(usize, f64, usize)> = Vec::new();
        for requested in THREADS {
            let effective = requested.min(cores);
            let (secs, labeled) = match measured.iter().find(|&&(e, _, _)| e == effective) {
                Some(&(_, secs, labeled)) => (secs, labeled),
                None => {
                    let labeler = labeler_with(kernel, effective);
                    let mut labeled = 0usize;
                    let secs = min_secs(reps, || {
                        labeled = labeler.label_motifs(&motifs).len();
                    });
                    if kernel == SimilarityKernel::Dense && effective == 1 {
                        let stats = labeler.kernel_stats();
                        stats_row = JsonObject::new()
                            .int("st_plane_terms", stats.st_plane_terms)
                            .int("st_plane_bytes", stats.st_plane_bytes)
                            .int("st_plane_build_ticks", stats.st_plane_build_ticks as usize)
                            .int("sv_planes", stats.sv_planes)
                            .int("sv_plane_pairs", stats.sv_plane_pairs)
                            .int("sv_plane_bytes", stats.sv_plane_bytes)
                            .int("sv_oracle_calls", stats.sv_oracle_calls as usize)
                            .render();
                    }
                    measured.push((effective, secs, labeled));
                    (secs, labeled)
                }
            };
            if requested == 1 {
                secs_1t[ki] = secs;
            }
            println!(
                "{label}: {kernel_name} @ threads={requested} effective={effective}: \
                 {secs:.3}s ({labeled} labeled motifs)"
            );
            let mut row = JsonObject::new()
                .str("kernel", kernel_name)
                .int("threads", requested)
                .int("effective_threads", effective);
            if effective < requested {
                row = row.bool("clamped", true);
            }
            rows.push(row.num("secs", secs).int("labeled_motifs", labeled).render());
        }
    }

    let speedup_1t = secs_1t[0] / secs_1t[1];
    let amortization_pct = plane_build_secs / secs_1t[1] * 100.0;
    println!(
        "{label}: 1-thread speedup {speedup_1t:.2}x (bar {SPEEDUP_BAR}x) [{}]; \
         plane build is {amortization_pct:.1}% of the dense run",
        check(speedup_1t >= SPEEDUP_BAR)
    );

    JsonObject::new()
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("motifs", motifs.len())
        .int("reps", reps)
        .num("plane_build_secs", plane_build_secs)
        .num("plane_build_pct_of_dense_run", amortization_pct)
        .num("speedup_1t", speedup_1t)
        .num("speedup_bar", SPEEDUP_BAR)
        .raw("kernel_stats", stats_row)
        .raw("runs", json_array(&rows))
        .render()
}

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (sigma, min_direct) = match scale {
        Scale::Full => (10, 30),
        Scale::Small => (5, 5),
    };
    let reps = if scale == Scale::Small { REPEATS } else { 1 };

    let section = profile_section(
        "labeling",
        &data,
        &finder_config(scale).growth,
        sigma,
        min_direct,
        cores,
        reps,
    );

    // Yeast-scale section (the paper's 4141v/7095e network), always run
    // once per distinct effective count. Clustering parameters follow
    // `profile_delta`'s yeast settings (σ = 5, min_direct = 5) rather
    // than the paper's (10, 30): the synthetic yeast annotations are
    // sparser than real SGD curation, so the paper regime labels
    // nothing and the sweep would time work with an empty output.
    let yeast_full = yeast(Scale::Full);
    let yeast_section = profile_section(
        "yeast labeling",
        &yeast_full,
        &finder_config(Scale::Full).growth,
        5,
        5,
        cores,
        1,
    );

    let doc = JsonObject::new()
        .str("benchmark", "labeling_kernels")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("available_parallelism", cores)
        .raw("fixture", section)
        .raw("yeast", yeast_section)
        .render();
    std::fs::write("BENCH_labeling.json", format!("{doc}\n")).expect("write BENCH_labeling.json");
    println!("wrote BENCH_labeling.json");
}
