//! Experiment A1 — ablation: agglomerative hierarchical clustering (the
//! paper's choice) vs k-medoids partitioning (the Figure 5 argument:
//! "non-overlapping clusters may miss some valid and significant
//! labeling schemes").
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin ablation_clustering [small|full]
//! ```

use go_ontology::{Namespace, ProteinId, TermId, TermSimilarity, TermWeights};
use lamofinder::{
    cluster_occurrences, compute_frontier, kmedoids_label, ClusteringConfig, LabelContext,
};
use lamofinder_bench::report::print_table;
use lamofinder_bench::{find_motifs, yeast, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Ablation A1 — hierarchical vs k-medoids occurrence clustering ({scale:?})\n");

    let data = yeast(scale);
    let (motifs, _) = find_motifs(&data.network, scale);

    let weights = TermWeights::compute(&data.ontology, &data.annotations);
    let sim = TermSimilarity::new(&data.ontology, &weights);
    let min_direct = if scale == Scale::Full { 30 } else { 5 };
    let informative = go_ontology::InformativeClasses::compute(
        &data.ontology,
        &data.annotations,
        go_ontology::InformativeConfig {
            min_direct,
            ..Default::default()
        },
    );
    let frontier = compute_frontier(&data.ontology, &informative);
    let ns = Namespace::BiologicalProcess;
    let terms_by_protein: Vec<Vec<TermId>> = (0..data.annotations.protein_count())
        .map(|p| {
            data.annotations
                .terms_of(ProteinId(p as u32))
                .iter()
                .copied()
                .filter(|&t| data.ontology.namespace(t) == ns)
                .collect()
        })
        .collect();
    let ctx = LabelContext {
        ontology: &data.ontology,
        sim: &sim,
        informative: &informative,
        terms_by_protein: &terms_by_protein,
        frontier: &frontier,
        dense: None,
    };
    let sigma = if scale == Scale::Full { 10 } else { 5 };
    let config = ClusteringConfig {
        sigma,
        ..Default::default()
    };

    let mut rows = Vec::new();
    let (mut h_total, mut k_total, mut h_only) = (0usize, 0usize, 0usize);
    let sample: Vec<_> = motifs.iter().take(20).collect();
    for (i, motif) in sample.iter().enumerate() {
        let occs: Vec<_> = motif.occurrences.iter().take(150).cloned().collect();
        let hier = cluster_occurrences(&motif.pattern, &occs, &ctx, &config);
        // k chosen as the number of schemes hierarchy found (fair) or 2.
        let k = hier.len().max(2);
        let kmed = kmedoids_label(&motif.pattern, &occs, &ctx, &config, k, 50);

        let kmed_schemes: Vec<_> = kmed.iter().map(|c| &c.scheme).collect();
        let missed = hier
            .iter()
            .filter(|h| !kmed_schemes.contains(&&h.scheme))
            .count();
        h_total += hier.len();
        k_total += kmed.len();
        h_only += missed;
        rows.push(vec![
            format!("motif {i} (size {})", motif.size()),
            motif.frequency.to_string(),
            hier.len().to_string(),
            kmed.len().to_string(),
            missed.to_string(),
        ]);
    }
    print_table(
        &["motif", "frequency", "hier schemes", "k-medoid schemes", "hier-only"],
        &rows,
    );
    println!(
        "\ntotals: hierarchical {h_total} schemes, k-medoids {k_total}; \
         {h_only} schemes found only by the hierarchical clusterer"
    );
    println!("(the Figure 5 claim: partitioning misses overlapping labeling schemes)");
}
