//! Experiment F9 — reproduce **Figure 9**: precision vs recall of the
//! labeled-motif function predictor against the NC, Chi², PRODISTIN and
//! MRF baselines, leave-one-out over the top-13 functional categories on
//! the MIPS-scale dataset.
//!
//! Shape target (not absolute numbers): LabeledMotif dominates in
//! precision, MRF second, with NC/Chi²/Prodistin below.
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin fig9_precision_recall [small|full]
//! ```

use function_prediction::{
    Chi2Predictor, FunctionPredictor, LabeledMotifPredictor, LeaveOneOut, MrfPredictor,
    NeighborCountingPredictor, PredictionContext, ProdistinPredictor,
};
use go_ontology::Namespace;
use lamofinder_bench::report::{print_table, scatter_chart};
use lamofinder_bench::{find_motifs, label_namespace, mips, mips_functions, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    println!("Figure 9 — precision vs recall ({scale:?} scale)\n");

    let t0 = Instant::now();
    let data = mips(scale);
    let view = mips_functions(&data);
    println!(
        "MIPS dataset: {} proteins, {} interactions, {} categories, {:.0}% covered (paper: 1877 / 2448 / 13)",
        data.network.vertex_count(),
        data.network.edge_count(),
        view.n_categories(),
        100.0 * view.coverage()
    );

    let (motifs, _) = find_motifs(&data.network, scale);
    let labeled = label_namespace(
        &data.ontology,
        &data.annotations,
        &motifs,
        Namespace::BiologicalProcess,
        scale,
    );
    println!(
        "motifs: {} unlabeled -> {} labeled ({:.1?})",
        motifs.len(),
        labeled.len(),
        t0.elapsed()
    );

    let ctx = PredictionContext {
        network: &data.network,
        functions: &view.functions,
        n_categories: view.n_categories(),
        category_terms: &data.categories,
    };

    let motif_pred = LabeledMotifPredictor::new(labeled);
    let mrf = MrfPredictor::default();
    let prodistin = ProdistinPredictor::default();
    let methods: Vec<&dyn FunctionPredictor> = vec![
        &motif_pred,
        &mrf,
        &Chi2Predictor,
        &NeighborCountingPredictor,
        &prodistin,
    ];

    let mut curves = Vec::new();
    for method in methods {
        let t = Instant::now();
        let curve = LeaveOneOut.evaluate(&ctx, method);
        println!("evaluated {:<12} in {:.1?}", curve.method, t.elapsed());
        curves.push(curve);
    }

    // Table: P/R at selected k plus max F1.
    println!();
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.method.clone(),
                format!("{:.3}", c.points[0].precision),
                format!("{:.3}", c.points[0].recall),
                format!("{:.3}", c.points[2].precision),
                format!("{:.3}", c.points[2].recall),
                format!("{:.3}", c.points.last().unwrap().recall),
                format!("{:.3}", c.max_f1()),
            ]
        })
        .collect();
    print_table(
        &["method", "P@1", "R@1", "P@3", "R@3", "R@13", "maxF1"],
        &rows,
    );

    // ASCII PR scatter.
    println!();
    let series: Vec<(&str, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| {
            (
                c.method.as_str(),
                c.points.iter().map(|p| (p.recall, p.precision)).collect(),
            )
        })
        .collect();
    scatter_chart("precision vs recall (k = 1..13):", &series, 60, 20);

    // Shape verdict.
    let p_at = |name: &str| {
        curves
            .iter()
            .find(|c| c.method == name)
            .map(|c| c.points[0].precision)
            .unwrap_or(0.0)
    };
    let lm = p_at("LabeledMotif");
    let mrf_p = p_at("MRF");
    let others = ["Chi2", "NC", "Prodistin"].map(p_at);
    println!(
        "\nshape check: LabeledMotif P@1 = {:.3} vs best baseline {:.3} -> {}",
        lm,
        mrf_p.max(others[0]).max(others[1]).max(others[2]),
        if lm > mrf_p.max(others[0]).max(others[1]).max(others[2]) {
            "labeled motifs win (matches Fig. 9)"
        } else {
            "ordering differs from Fig. 9"
        }
    );
    println!("total wall time {:.1?}", t0.elapsed());
}
