use lamofinder_bench::{finder_config, yeast, Scale};
use motif_finder::{grow_frequent_subgraphs, uniqueness_scores, MotifFinder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);
    let t = Instant::now();
    let growth = grow_frequent_subgraphs(&data.network, &config.growth);
    println!("growth: {} classes in {:.1?} (truncated {:?}, capped {:?})",
        growth.classes.len(), t.elapsed(), growth.truncated_levels, growth.capped_levels);
    let t = Instant::now();
    let patterns: Vec<(&ppi_graph::Graph, usize)> =
        growth.classes.iter().map(|c| (&c.pattern, c.frequency)).collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let scores = uniqueness_scores(&data.network, &patterns, &config.uniqueness, &mut rng);
    let unique = scores.iter().filter(|&&s| s >= config.uniqueness_threshold).count();
    println!("uniqueness: {} unique of {} in {:.1?}", unique, patterns.len(), t.elapsed());
    let _ = MotifFinder::default();
}
