//! Profile the motif-finding front-end: discovery (frequent-subgraph
//! growth) swept over requested worker counts 1/2/4 on the active
//! fixture AND the yeast-scale network, plus uniqueness testing. Writes
//! the discovery timings to `BENCH_discovery.json`.
//!
//! Requested worker counts are clamped to the host's available
//! parallelism before measuring: running more workers than cores
//! measures the scheduler, not the engine (the output is byte-identical
//! either way), so collapsed requests share one measurement and report
//! speedup 1.00 instead of timer noise. Rows that repeat a shared
//! measurement carry `"clamped": true` so consumers know the number is
//! a copy, not an observation — and the speedup tripwire skips them,
//! since a clamped row measured the clamp, not the engine. Both the
//! fixture sweep and the yeast sweep emit the same row schema
//! `{threads, effective_threads, secs, speedup, classes}` so dashboards
//! can diff scales without special-casing.

use lamofinder_bench::report::{json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use motif_finder::{
    grow_frequent_subgraphs, uniqueness_scores, GrowthConfig, GrowthReport, MotifFinder,
};
use ppi_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Timing repetitions per distinct effective worker count on the small
/// fixture (the minimum is reported): discovery runs for seconds, so a
/// few reps absorb scheduler noise without stretching CI. Yeast-scale
/// entries run once — that network takes minutes per sweep entry.
const SMALL_REPS: usize = 3;

/// One clamped discovery sweep over requested worker counts 1/2/4.
struct Sweep {
    /// JSON rows `{threads, effective_threads, secs, speedup, classes}`
    /// (plus `"clamped": true` where the request collapsed).
    rows: Vec<String>,
    /// The (identical-at-every-count) discovery output.
    growth: GrowthReport,
}

/// Run the growth sweep on `network`: clamp each requested count to
/// `cores`, measure each *effective* count once (best of `reps`), and
/// assert the PR 6 regression tripwire — adding workers must never make
/// discovery slower. The tripwire only fires on unclamped rows
/// (`effective == requested`): a clamped row repeats another row's
/// measurement, so asserting on it would re-check a number this row
/// never produced. On a single-core host that leaves the tripwire
/// vacuous — honest, since no parallel path ran — while on a multicore
/// host it guards every genuinely measured worker count.
fn sweep_growth(label: &str, network: &Graph, base: &GrowthConfig, cores: usize, reps: usize) -> Sweep {
    let mut rows: Vec<String> = Vec::new();
    let mut measured: Vec<(usize, f64)> = Vec::new();
    let mut growth: Option<GrowthReport> = None;
    let mut base_secs = 0.0f64;
    for requested in [1usize, 2, 4] {
        let effective = requested.min(cores);
        let secs = match measured.iter().find(|&&(e, _)| e == effective) {
            Some(&(_, secs)) => secs,
            None => {
                let mut growth_config = base.clone();
                growth_config.threads = effective;
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let t = Instant::now();
                    let report = grow_frequent_subgraphs(network, &growth_config);
                    best = best.min(t.elapsed().as_secs_f64());
                    match &growth {
                        None => growth = Some(report),
                        Some(reference) => assert_eq!(
                            reference.classes.len(),
                            report.classes.len(),
                            "discovery output must be identical at every worker count"
                        ),
                    }
                }
                measured.push((effective, best));
                best
            }
        };
        if requested == 1 {
            base_secs = secs;
        }
        let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
        if requested > 1 && effective == requested {
            assert!(
                speedup >= 1.0,
                "parallel discovery regression ({label}): threads={requested} \
                 (effective {effective}) took {secs:.2}s vs {base_secs:.2}s at threads=1"
            );
        }
        let report = growth.as_ref().expect("first sweep entry measured");
        println!(
            "{label}[threads={requested} effective={effective}]: {} classes in {secs:.2}s \
             (speedup {speedup:.2}x, truncated {:?}, capped {:?})",
            report.classes.len(),
            report.truncated_levels,
            report.capped_levels
        );
        let mut row = JsonObject::new()
            .int("threads", requested)
            .int("effective_threads", effective);
        if effective < requested {
            row = row.bool("clamped", true);
        }
        rows.push(
            row.num("secs", secs)
                .num("speedup", speedup)
                .int("classes", report.classes.len())
                .render(),
        );
    }
    Sweep {
        rows,
        growth: growth.expect("sweep ran"),
    }
}

/// The yeast JSON object: fixture dimensions plus the same-schema sweep
/// rows the fixture section uses.
fn yeast_object(network: &Graph, cores: usize, sweep: &Sweep) -> String {
    JsonObject::new()
        .int("vertices", network.vertex_count())
        .int("edges", network.edge_count())
        .int("available_parallelism", cores)
        .int("classes", sweep.growth.classes.len())
        .int("truncated_levels", sweep.growth.truncated_levels.len())
        .raw("rows", json_array(&sweep.rows))
        .render()
}

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let reps = if scale == Scale::Small { SMALL_REPS } else { 1 };

    // Discovery sweep on the active fixture: identical output for every
    // worker count (the front-end is deterministic by construction), so
    // only time varies.
    let sweep = sweep_growth("growth", &data.network, &config.growth, cores, reps);

    // Yeast-scale sweep (the paper's 4141v/7095e network): meso-scale
    // growth is budget-bound at nearly every level, so this tracks the
    // serial-prefix and classification cost the small fixture cannot.
    // At full scale the main sweep already measured it; at small scale
    // run the same clamped sweep once per distinct effective count.
    let yeast_row = if scale == Scale::Small {
        let full = yeast(Scale::Full);
        let full_config = finder_config(Scale::Full).growth;
        let full_sweep = sweep_growth("yeast growth", &full.network, &full_config, cores, 1);
        yeast_object(&full.network, cores, &full_sweep)
    } else {
        yeast_object(&data.network, cores, &sweep)
    };

    let doc = JsonObject::new()
        .str("benchmark", "motif_discovery")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("available_parallelism", cores)
        .int("reps", reps)
        .raw("discovery", json_array(&sweep.rows))
        .raw("yeast", yeast_row)
        .render();
    std::fs::write("BENCH_discovery.json", format!("{doc}\n")).expect("write BENCH_discovery.json");
    println!("wrote BENCH_discovery.json");

    let growth = &sweep.growth;
    let t = Instant::now();
    let patterns: Vec<(&ppi_graph::Graph, usize)> = growth
        .classes
        .iter()
        .map(|c| (&c.pattern, c.frequency))
        .collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let scores = uniqueness_scores(&data.network, &patterns, &config.uniqueness, &mut rng);
    let unique = scores
        .iter()
        .filter(|&&s| s >= config.uniqueness_threshold)
        .count();
    println!(
        "uniqueness: {} unique of {} in {:.1?}",
        unique,
        patterns.len(),
        t.elapsed()
    );
    let _ = MotifFinder::default();
}
