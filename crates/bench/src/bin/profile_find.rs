//! Profile the motif-finding front-end: discovery (frequent-subgraph
//! growth) swept over 1/2/4 worker threads, then uniqueness testing.
//! Writes the discovery timings to `BENCH_discovery.json`.

use lamofinder_bench::report::{json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use motif_finder::{grow_frequent_subgraphs, uniqueness_scores, GrowthReport, MotifFinder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);

    // Discovery sweep: identical output for every thread count (the
    // front-end is deterministic by construction), so only time varies.
    let mut rows: Vec<String> = Vec::new();
    let mut growth: Option<GrowthReport> = None;
    let mut base_secs = 0.0f64;
    for threads in [1usize, 2, 4] {
        let mut growth_config = config.growth.clone();
        growth_config.threads = threads;
        let t = Instant::now();
        let report = grow_frequent_subgraphs(&data.network, &growth_config);
        let secs = t.elapsed().as_secs_f64();
        if threads == 1 {
            base_secs = secs;
        }
        let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
        println!(
            "growth[threads={threads}]: {} classes in {secs:.2}s (speedup {speedup:.2}x, \
             truncated {:?}, capped {:?})",
            report.classes.len(),
            report.truncated_levels,
            report.capped_levels
        );
        rows.push(
            JsonObject::new()
                .int("threads", threads)
                .num("secs", secs)
                .num("speedup", speedup)
                .int("classes", report.classes.len())
                .render(),
        );
        growth = Some(report);
    }
    let growth = growth.expect("sweep ran");

    let doc = JsonObject::new()
        .str("benchmark", "motif_discovery")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int(
            "available_parallelism",
            std::thread::available_parallelism().map_or(1, |p| p.get()),
        )
        .raw("discovery", json_array(&rows))
        .render();
    std::fs::write("BENCH_discovery.json", format!("{doc}\n")).expect("write BENCH_discovery.json");
    println!("wrote BENCH_discovery.json");

    let t = Instant::now();
    let patterns: Vec<(&ppi_graph::Graph, usize)> = growth
        .classes
        .iter()
        .map(|c| (&c.pattern, c.frequency))
        .collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let scores = uniqueness_scores(&data.network, &patterns, &config.uniqueness, &mut rng);
    let unique = scores
        .iter()
        .filter(|&&s| s >= config.uniqueness_threshold)
        .count();
    println!(
        "uniqueness: {} unique of {} in {:.1?}",
        unique,
        patterns.len(),
        t.elapsed()
    );
    let _ = MotifFinder::default();
}
