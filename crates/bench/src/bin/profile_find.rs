//! Profile the motif-finding front-end: discovery (frequent-subgraph
//! growth) swept over requested worker counts 1/2/4, plus a yeast-scale
//! discovery row and uniqueness testing. Writes the discovery timings
//! to `BENCH_discovery.json`.
//!
//! Requested worker counts are clamped to the host's available
//! parallelism before measuring: running more workers than cores
//! measures the scheduler, not the engine (the output is byte-identical
//! either way), so collapsed requests share one measurement and report
//! speedup 1.00 instead of timer noise.

use lamofinder_bench::report::{json_array, JsonObject};
use lamofinder_bench::{finder_config, yeast, Scale};
use motif_finder::{grow_frequent_subgraphs, uniqueness_scores, GrowthReport, MotifFinder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// Timing repetitions per distinct effective worker count on the small
/// fixture (the minimum is reported): discovery runs for seconds, so a
/// few reps absorb scheduler noise without stretching CI. Full scale
/// runs once — the yeast network takes minutes per sweep entry.
const SMALL_REPS: usize = 3;

fn main() {
    let scale = Scale::from_args();
    let data = yeast(scale);
    let config = finder_config(scale);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let reps = if scale == Scale::Small { SMALL_REPS } else { 1 };

    // Discovery sweep: identical output for every worker count (the
    // front-end is deterministic by construction), so only time varies.
    let mut rows: Vec<String> = Vec::new();
    let mut measured: Vec<(usize, f64)> = Vec::new();
    let mut growth: Option<GrowthReport> = None;
    let mut base_secs = 0.0f64;
    let mut two_thread_secs = 0.0f64;
    for requested in [1usize, 2, 4] {
        let effective = requested.min(cores);
        let secs = match measured.iter().find(|&&(e, _)| e == effective) {
            Some(&(_, secs)) => secs,
            None => {
                let mut growth_config = config.growth.clone();
                growth_config.threads = effective;
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    let t = Instant::now();
                    let report = grow_frequent_subgraphs(&data.network, &growth_config);
                    best = best.min(t.elapsed().as_secs_f64());
                    match &growth {
                        None => growth = Some(report),
                        Some(reference) => assert_eq!(
                            reference.classes.len(),
                            report.classes.len(),
                            "discovery output must be identical at every worker count"
                        ),
                    }
                }
                measured.push((effective, best));
                best
            }
        };
        if requested == 1 {
            base_secs = secs;
        }
        if requested == 2 {
            two_thread_secs = secs;
        }
        let speedup = if secs > 0.0 { base_secs / secs } else { 0.0 };
        // Regression tripwire (the PR 6 bug class): adding workers must
        // never make discovery slower. Collapsed requests share the
        // single-worker measurement, so on a single-core host this
        // asserts exact equality; on a multicore host it guards the
        // genuinely parallel path.
        if requested > 1 {
            assert!(
                speedup >= 1.0,
                "parallel discovery regression: threads={requested} (effective {effective}) \
                 took {secs:.2}s vs {base_secs:.2}s at threads=1"
            );
        }
        let report = growth.as_ref().expect("first sweep entry measured");
        println!(
            "growth[threads={requested} effective={effective}]: {} classes in {secs:.2}s \
             (speedup {speedup:.2}x, truncated {:?}, capped {:?})",
            report.classes.len(),
            report.truncated_levels,
            report.capped_levels
        );
        rows.push(
            JsonObject::new()
                .int("threads", requested)
                .int("effective_threads", effective)
                .num("secs", secs)
                .num("speedup", speedup)
                .int("classes", report.classes.len())
                .render(),
        );
    }
    let growth = growth.expect("sweep ran");

    // Yeast-scale row (the paper's 4141v/7095e network): meso-scale
    // growth is budget-bound at nearly every level, so this tracks the
    // serial-prefix and classification cost the fixture sweep cannot.
    let yeast_row = if scale == Scale::Small {
        let full = yeast(Scale::Full);
        let mut growth_config = finder_config(Scale::Full).growth;
        growth_config.threads = 2usize.min(cores);
        let t = Instant::now();
        let report = grow_frequent_subgraphs(&full.network, &growth_config);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "yeast growth[threads={}]: {} classes in {secs:.2}s (truncated at {} levels)",
            growth_config.threads,
            report.classes.len(),
            report.truncated_levels.len()
        );
        JsonObject::new()
            .int("vertices", full.network.vertex_count())
            .int("edges", full.network.edge_count())
            .int("threads", growth_config.threads)
            .num("secs", secs)
            .int("classes", report.classes.len())
            .int("truncated_levels", report.truncated_levels.len())
            .render()
    } else {
        // The sweep already measured the yeast network; reuse its
        // threads=2 measurement.
        JsonObject::new()
            .int("vertices", data.network.vertex_count())
            .int("edges", data.network.edge_count())
            .int("threads", 2usize.min(cores))
            .num("secs", two_thread_secs)
            .int("classes", growth.classes.len())
            .int("truncated_levels", growth.truncated_levels.len())
            .render()
    };

    let doc = JsonObject::new()
        .str("benchmark", "motif_discovery")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("available_parallelism", cores)
        .int("reps", reps)
        .raw("discovery", json_array(&rows))
        .raw("yeast", yeast_row)
        .render();
    std::fs::write("BENCH_discovery.json", format!("{doc}\n")).expect("write BENCH_discovery.json");
    println!("wrote BENCH_discovery.json");

    let t = Instant::now();
    let patterns: Vec<(&ppi_graph::Graph, usize)> = growth
        .classes
        .iter()
        .map(|c| (&c.pattern, c.frequency))
        .collect();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let scores = uniqueness_scores(&data.network, &patterns, &config.uniqueness, &mut rng);
    let unique = scores
        .iter()
        .filter(|&&s| s >= config.uniqueness_threshold)
        .count();
    println!(
        "uniqueness: {} unique of {} in {:.1?}",
        unique,
        patterns.len(),
        t.elapsed()
    );
    let _ = MotifFinder::default();
}
