//! Experiment T1 — reproduce **Table 1**: genome-specific GO term
//! weights for the Figure 1 example.
//!
//! ```bash
//! cargo run --release -p lamofinder-bench --bin table1_weights
//! ```

use go_ontology::TermWeights;
use lamofinder_bench::report::{check, print_table};
use synthetic_data::PaperExample;

/// Paper values: (term, direct count, subtree count, weight).
const PAPER: [(u32, usize, usize, f64); 11] = [
    (1, 0, 585, 1.00),
    (2, 0, 415, 0.71),
    (3, 20, 475, 0.81),
    (4, 100, 245, 0.42),
    (5, 70, 280, 0.48),
    (6, 150, 250, 0.43),
    (7, 10, 100, 0.17),
    (8, 25, 135, 0.23),
    (9, 100, 100, 0.17),
    (10, 90, 90, 0.15),
    (11, 20, 20, 0.03),
];

fn main() {
    let ex = PaperExample::new();
    let weights = TermWeights::compute(&ex.ontology, &ex.genome);

    println!("Table 1 — GO term weights in the Figure 1 example\n");
    let mut rows = Vec::new();
    let mut all_pass = true;
    for (g, direct, subtree, w_paper) in PAPER {
        let t = ex.g(g);
        let direct_got = ex.genome.direct_count(t);
        let subtree_got = weights.subtree_occurrences(t);
        let w_got = weights.weight(t);
        let ok = direct_got == direct
            && subtree_got == subtree
            && ((w_got * 100.0).round() / 100.0 - w_paper).abs() < 1e-9;
        all_pass &= ok;
        rows.push(vec![
            format!("G{g:02}"),
            direct.to_string(),
            direct_got.to_string(),
            subtree.to_string(),
            subtree_got.to_string(),
            format!("{w_paper:.2}"),
            format!("{w_got:.4}"),
            check(ok).to_string(),
        ]);
    }
    print_table(
        &[
            "term", "direct(paper)", "direct(ours)", "subtree(paper)", "subtree(ours)",
            "w(paper)", "w(ours)", "match",
        ],
        &rows,
    );
    println!(
        "\ntotal annotation occurrences: {} (paper: 585)",
        ex.genome.total_occurrences()
    );
    println!("overall: {}", if all_pass { "ALL ROWS MATCH" } else { "DIFFERENCES FOUND" });
}
