//! Profile the serving layer end to end and write `BENCH_serving.json`.
//!
//! For each fixture (the 420v/720e small network, and with the default
//! `full` argument also the paper-scale 4141v/7095e yeast network):
//! run the batch pipeline once (discovery → labeling → categories),
//! compile the [`ModelArtifact`], serialize it, time a cold load, then
//! measure the query path — single-predict latency, throughput and
//! p50/p99 across client threads 1/2/4 (clamped to the host), and
//! batch-vs-single amplification. The small fixture also asserts the
//! ISSUE 7 acceptance bar: a served prediction must be ≥ 100× faster
//! than answering the same question with a fresh pipeline run.
//!
//! This binary lives in the bench crate — the one place the `wall-clock`
//! lint allows timing code: the server itself batches by arrival order
//! and meters work in ticks, and latency is measured here, at the
//! boundary, the same way `par_util::realtime` confines deadlines.

use function_prediction::{CategoryView, PredictScratch, PredictionContext};
use lamo_serve::{read_artifact, write_artifact, ModelArtifact, ServeConfig, Server};
use lamofinder_bench::report::{json_array, JsonObject};
use lamofinder_bench::{find_motifs, label_all_namespaces, top_categories, yeast, Scale};
use par_util::RunContext;
use std::sync::Arc;
use std::time::Instant;

/// The paper evaluates against the top 13 functional categories.
const N_CATEGORIES: usize = 13;
/// Queries per client thread in the throughput sweep.
const QUERIES_PER_CLIENT: usize = 2000;
/// Batch size for the amplification measurement.
const BATCH: usize = 64;

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

struct FixtureReport {
    row: String,
    predict_p50_secs: f64,
    pipeline_secs: f64,
}

fn profile_fixture(name: &str, scale: Scale, cores: usize) -> FixtureReport {
    // ── Batch pipeline: what a user pays *without* the serving layer.
    let t_pipeline = Instant::now();
    let data = yeast(scale);
    let (motifs, _report) = find_motifs(&data.network, scale);
    let labeled = label_all_namespaces(&data.ontology, &data.annotations, &motifs, scale);
    let categories = top_categories(&data.annotations, N_CATEGORIES);
    let view = CategoryView::new(&data.ontology, &data.annotations, &categories);
    let ctx = PredictionContext {
        network: &data.network,
        functions: &view.functions,
        n_categories: view.n_categories(),
        category_terms: &view.categories,
    };
    let t_build = Instant::now();
    let artifact = ModelArtifact::build(&labeled, &ctx);
    let build_secs = t_build.elapsed().as_secs_f64();
    let pipeline_secs = t_pipeline.elapsed().as_secs_f64();
    artifact
        .validate()
        .expect("pipeline-built artifact must satisfy every structural invariant");

    // ── Binary roundtrip + cold load (file under target/, never /tmp).
    let bytes = write_artifact(&artifact);
    let path = format!("target/lamo-serve-artifact-{name}.bin");
    std::fs::write(&path, &bytes).expect("write artifact file under target/");
    let t_load = Instant::now();
    let loaded_bytes = std::fs::read(&path).expect("read back the artifact file");
    let loaded = read_artifact(&loaded_bytes).expect("persisted artifact must decode");
    let cold_load_secs = t_load.elapsed().as_secs_f64();
    assert_eq!(loaded, artifact, "load must reproduce the built artifact");
    let artifact = Arc::new(loaded);

    // ── Raw predict latency (no server hop): the 100×-vs-pipeline bar.
    let protein_count = artifact.protein_count();
    let mut scratch = PredictScratch::new();
    let mut latencies: Vec<f64> = Vec::with_capacity(protein_count);
    for p in 0..protein_count {
        let t = Instant::now();
        let (ranked, _postings) = artifact.predict_into(p, &mut scratch);
        let elapsed = t.elapsed().as_secs_f64();
        assert_eq!(ranked.len(), view.n_categories());
        latencies.push(elapsed);
    }
    latencies.sort_unstable_by(f64::total_cmp);
    let predict_p50_secs = latencies[latencies.len() / 2];
    let predict_p50_us = percentile_us(&latencies, 0.50);
    let predict_p99_us = percentile_us(&latencies, 0.99);

    // ── Served throughput × client threads {1,2,4} (clamped): each
    // client thread times its own queries; qps is aggregate. Requested
    // counts that clamp to the same effective count share one
    // measurement (same dedup as profile_find's growth sweep), but
    // every emitted row carries its own `threads` value — the rows are
    // per-request, the *numbers* are per-effective-count.
    struct ClientRun {
        queries: usize,
        qps: f64,
        p50: f64,
        p99: f64,
    }
    let mut client_rows: Vec<String> = Vec::new();
    let mut measured: Vec<(usize, ClientRun)> = Vec::new();
    for requested in [1usize, 2, 4] {
        let effective = requested.min(cores);
        if !measured.iter().any(|(e, _)| *e == effective) {
            let server = Server::start(
                Arc::clone(&artifact),
                ServeConfig {
                    workers: 0,
                    max_batch: 32,
                    ..ServeConfig::default()
                },
                Arc::new(RunContext::unbounded()),
            );
            let t_all = Instant::now();
            let mut all: Vec<f64> = crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..effective)
                    .map(|c| {
                        let server = &server;
                        scope.spawn(move |_| {
                            let mut lat = Vec::with_capacity(QUERIES_PER_CLIENT);
                            for i in 0..QUERIES_PER_CLIENT {
                                let p = (c + i * effective) % protein_count;
                                let t = Instant::now();
                                let answer = server.query(p);
                                lat.push(t.elapsed().as_secs_f64());
                                assert!(answer.is_ok(), "served query must succeed");
                            }
                            lat
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("client thread must not panic"))
                    .collect()
            })
            .expect("client scope must not panic");
            let wall = t_all.elapsed().as_secs_f64();
            server.shutdown();
            all.sort_unstable_by(f64::total_cmp);
            let queries = effective * QUERIES_PER_CLIENT;
            measured.push((
                effective,
                ClientRun {
                    queries,
                    qps: queries as f64 / wall,
                    p50: percentile_us(&all, 0.50),
                    p99: percentile_us(&all, 0.99),
                },
            ));
        }
        let (_, run) = measured
            .iter()
            .find(|(e, _)| *e == effective)
            .expect("just measured this effective count");
        println!(
            "{name} serve[clients={requested} effective={effective}]: \
             {:.0} qps, p50 {:.1}µs, p99 {:.1}µs",
            run.qps, run.p50, run.p99
        );
        client_rows.push(
            JsonObject::new()
                .int("threads", requested)
                .int("effective_threads", effective)
                .int("queries", run.queries)
                .num("qps", run.qps)
                .num("p50_us", run.p50)
                .num("p99_us", run.p99)
                .render(),
        );
    }

    // ── Batch-vs-single amplification on one server: the batched path
    // pays one submit per query but drains in runs, so its per-query
    // overhead should be lower.
    let server = Server::start(
        Arc::clone(&artifact),
        ServeConfig {
            workers: 0,
            max_batch: BATCH,
            ..ServeConfig::default()
        },
        Arc::new(RunContext::unbounded()),
    );
    let proteins: Vec<usize> = (0..BATCH).map(|i| i % protein_count).collect();
    let t_single = Instant::now();
    for &p in &proteins {
        server
            .query(p)
            .expect("single query must succeed on a live server");
    }
    let single_secs = t_single.elapsed().as_secs_f64();
    let t_batched = Instant::now();
    let answers = server.query_batch(&proteins);
    let batched_secs = t_batched.elapsed().as_secs_f64();
    assert!(answers.iter().all(Result::is_ok));
    server.shutdown();
    let amplification = if batched_secs > 0.0 {
        single_secs / batched_secs
    } else {
        0.0
    };
    println!(
        "{name} batch[{BATCH}]: singles {single_secs:.4}s, batched {batched_secs:.4}s \
         ({amplification:.2}x)"
    );

    let row = JsonObject::new()
        .str("fixture", name)
        .int("vertices", data.network.vertex_count())
        .int("edges", data.network.edge_count())
        .int("categories", view.n_categories())
        .int("labeled_motifs", artifact.motifs.motif_count())
        .int("postings", artifact.index.postings.len())
        .int("artifact_bytes", bytes.len())
        .num("pipeline_secs", pipeline_secs)
        .num("artifact_build_secs", build_secs)
        .num("cold_load_secs", cold_load_secs)
        .num("predict_p50_us", predict_p50_us)
        .num("predict_p99_us", predict_p99_us)
        .num(
            "pipeline_over_predict",
            if predict_p50_secs > 0.0 {
                pipeline_secs / predict_p50_secs
            } else {
                f64::INFINITY
            },
        )
        .raw("clients", json_array(&client_rows))
        .raw(
            "batch",
            JsonObject::new()
                .int("batch_size", BATCH)
                .num("single_secs", single_secs)
                .num("batched_secs", batched_secs)
                .num("amplification", amplification)
                .render(),
        )
        .render();
    FixtureReport {
        row,
        predict_p50_secs,
        pipeline_secs,
    }
}

fn main() {
    let scale = Scale::from_args();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut fixtures: Vec<String> = Vec::new();
    let small = profile_fixture("small", Scale::Small, cores);

    // ISSUE 7 acceptance bar: serving must beat a fresh pipeline run by
    // ≥ 100× on the small fixture. In practice the gap is ~10⁶.
    let speedup = small.pipeline_secs / small.predict_p50_secs.max(1e-12);
    assert!(
        speedup >= 100.0,
        "serving bar missed: pipeline {:.2}s vs predict p50 {:.2e}s = {speedup:.0}x",
        small.pipeline_secs,
        small.predict_p50_secs
    );
    println!("small: served predict is {speedup:.0}x faster than a fresh pipeline run");
    fixtures.push(small.row);

    // The yeast fixture mines at paper scale and takes minutes; CI runs
    // `profile_serve -- small` and relies on the committed full run.
    if scale == Scale::Full {
        fixtures.push(profile_fixture("yeast", Scale::Full, cores).row);
    }

    let doc = JsonObject::new()
        .str("benchmark", "serving")
        .str(
            "scale",
            if scale == Scale::Full { "full" } else { "small" },
        )
        .int("available_parallelism", cores)
        .int("queries_per_client", QUERIES_PER_CLIENT)
        .raw("fixtures", json_array(&fixtures))
        .render();
    std::fs::write("BENCH_serving.json", format!("{doc}\n")).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");
}
